#!/usr/bin/env python
"""Observability smoke: scrape a live ``repro serve`` under ``REPRO_OBS=1``.

What it proves, in one run:

1. the CLI boots with the observability plane enabled and serves rounds
   exactly as it does with the plane off (the lockstep suite proves
   byte-identity; this proves the live wiring);
2. ``GET /metrics`` with ``Accept: text/plain`` returns Prometheus
   exposition text that passes :func:`repro.obs.validate_prometheus_text`
   and carries both the serve core families and the shared registry's
   ``repro_obs_*`` families, while the default JSON content type is
   untouched for existing clients;
3. ``GET /spans`` returns JSONL span records forming parent-linked traces
   of the rounds just served (``serve.batch`` wrapping the fleet round).

Run from the repository root (CI obs-smoke does)::

    python tools/obs_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs import validate_prometheus_text  # noqa: E402
from repro.serve import HttpConnection  # noqa: E402

SERVE_ARGS = [
    "--cells", "2", "--nodes-per-cell", "12", "--apps", "2",
    "--port", "0", "--seed", "0",
]


def _failure(cell: str, node: str) -> dict:
    return {
        "cell": cell,
        "event": {"record": "event", "kind": "node_failure", "nodes": [node]},
    }


async def drive(host: str, port: int) -> dict:
    async with HttpConnection(host, port) as connection:
        config = await connection.get_json("/config")
        cells = config["cells"]
        nodes = {}
        for cell in cells:
            listing = await connection.get_json(f"/cells/{cell}/nodes")
            nodes[cell] = [entry["node"] for entry in listing["nodes"]]

        for index, cell in enumerate(cells):
            status, _headers, body = await connection.request(
                "POST", "/mutations", body=json.dumps(_failure(cell, nodes[cell][index]))
            )
            assert status == 200, (status, body)

        # Default scrape stays JSON — the dashboard and loadgen depend on it.
        status, headers, body = await connection.request("GET", "/metrics")
        assert status == 200, (status, body)
        assert headers["content-type"].startswith("application/json"), headers
        metrics_json = json.loads(body.decode())

        status, headers, body = await connection.request(
            "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200, (status, body)
        assert headers["content-type"].startswith("text/plain"), headers
        prom_text = body.decode()

        status, headers, body = await connection.request("GET", "/spans")
        assert status == 200, (status, body)
        assert headers["content-type"] == "application/x-ndjson", headers
        spans_jsonl = body.decode()
    return {"json": metrics_json, "prometheus": prom_text, "spans": spans_jsonl}


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_OBS"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *SERVE_ARGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=str(ROOT),
    )
    try:
        line = proc.stdout.readline()
        info = json.loads(line)
        assert info.get("event") == "Serving", f"unexpected boot line: {line!r}"
        scrape = asyncio.run(drive(info["host"], info["port"]))
    except BaseException:
        proc.kill()
        proc.wait()
        stderr = proc.stderr.read()
        if stderr:
            print(stderr, file=sys.stderr)
        raise
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    assert code == 0, f"server exited {code}: {proc.stderr.read()}"

    assert scrape["json"]["rounds"] >= 2, scrape["json"]

    errors = validate_prometheus_text(scrape["prometheus"])
    assert not errors, "invalid Prometheus exposition:\n" + "\n".join(errors)
    families = {
        line.split("{")[0].split(" ")[0]
        for line in scrape["prometheus"].splitlines()
        if line and not line.startswith("#")
    }
    for family in (
        "repro_serve_rounds_total",
        "repro_serve_pending",
        "repro_obs_serve_rounds_total",
        "repro_obs_engine_rounds_total",
    ):
        assert family in families, f"missing family {family}"

    spans = [json.loads(line) for line in scrape["spans"].splitlines()]
    assert spans, "no spans recorded"
    by_id = {span["span"]: span for span in spans}
    names = {span["name"] for span in spans}
    assert {"serve.batch", "reconcile.round"} <= names, names
    for span in spans:  # every non-root span links to a recorded parent
        assert not span["parent"] or span["parent"] in by_id, span

    print(
        "obs smoke: OK — "
        f"{scrape['json']['rounds']} rounds, "
        f"{len(families)} Prometheus families validated, "
        f"{len(spans)} parent-linked spans"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
