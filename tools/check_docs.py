#!/usr/bin/env python3
"""Markdown link check: every relative link in the repo's docs must resolve.

Scans the given markdown files (default: every tracked ``*.md`` outside
hidden directories) for inline links/images ``[text](target)`` and verifies
that relative targets exist on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped — CI must not
depend on the network.

Exit codes: 0 when every link resolves, 1 otherwise (one line per broken
link).  Used by the ``docs`` CI job; run locally with::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images. Good enough for this repo's docs: no
#: reference-style links, no angle-bracket destinations.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part.startswith(".") or part == "node_modules" for part in path.parts)
    )


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    in_code_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                rel = path.relative_to(root) if path.is_relative_to(root) else path
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(__file__).resolve().parent.parent
    files = [Path(a).resolve() for a in argv] if argv else iter_markdown_files(root)
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
