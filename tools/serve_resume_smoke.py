#!/usr/bin/env python
"""Kill -9 / --resume round-trip smoke for the serve control plane.

What it proves, in one run:

1. ``python -m repro serve --wal`` journals every admitted batch durably;
2. ``kill -9`` mid-session (no drain, no flush beyond the WAL's own
   fsyncs) loses nothing that was admitted;
3. ``python -m repro serve --resume`` rebuilds the session from the
   journal (fast-forwarded through a ``--checkpoint`` file when present),
   keeps serving, and the finished session's trace, digest and step
   records are **byte-identical** to an uncrashed reference run of the
   same workload;
4. SIGTERM then drains the resumed server gracefully (exit code 0).

Run from the repository root (CI infra-chaos-smoke does)::

    python tools/serve_resume_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.serve import HttpConnection  # noqa: E402

SERVE_ARGS = [
    "--cells", "2", "--nodes-per-cell", "12", "--apps", "2",
    "--port", "0", "--seed", "0",
]
#: The scripted workload, split at the kill point: the first half is
#: served, then the process dies with ``kill -9``; the second half is
#: served by the resumed process.
PRE_KILL = [
    {"cell": "cell-0", "event": {"record": "event", "kind": "node_failure", "nodes": ["node-0", "node-3"]}},
    {"cell": "cell-1", "event": {"record": "event", "kind": "node_failure", "nodes": ["node-5"]}},
    {"cell": "cell-0", "event": {"record": "event", "kind": "load_change", "multiplier": 1.4, "app": None}},
]
POST_KILL = [
    {"cell": "cell-0", "event": {"record": "event", "kind": "node_recovery", "nodes": ["node-0"]}},
    {"cell": "cell-1", "event": {"record": "event", "kind": "node_recovery", "nodes": ["node-5"]}},
    {"cell": "cell-0", "event": {"record": "event", "kind": "node_recovery", "nodes": ["node-3"]}},
]


def boot(extra_args: list[str]) -> tuple[subprocess.Popen, dict]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *SERVE_ARGS, *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=str(ROOT),
    )
    try:
        line = proc.stdout.readline()
        info = json.loads(line)
        assert info.get("event") == "Serving", f"unexpected boot line: {line!r}"
    except BaseException:
        proc.kill()
        proc.wait()
        stderr = proc.stderr.read()
        if stderr:
            print(stderr, file=sys.stderr)
        raise
    return proc, info


async def post_all(host: str, port: int, mutations: list[dict]) -> None:
    async with HttpConnection(host, port) as connection:
        for mutation in mutations:
            status, _headers, body = await connection.request(
                "POST", "/mutations", body=json.dumps(mutation)
            )
            assert status == 200, (status, body)


async def snapshot(host: str, port: int) -> dict:
    async with HttpConnection(host, port) as connection:
        return {
            "digest": (await connection.get_json("/digest"))["digest"],
            "traces": (await connection.get_json("/trace"))["cells"],
            "steps": (await connection.get_json("/steps"))["steps"],
            "rounds": (await connection.get_json("/healthz"))["rounds"],
        }


def run_crash_resume(wal: Path, checkpoint: Path | None) -> dict:
    """Serve PRE_KILL, kill -9, resume, serve POST_KILL, snapshot, drain."""
    args = ["--wal", str(wal)]
    if checkpoint is not None:
        args += ["--checkpoint", str(checkpoint), "--checkpoint-every", "2"]
    proc, info = boot(args)
    try:
        asyncio.run(post_all(info["host"], info["port"], PRE_KILL))
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    proc.kill()  # SIGKILL: no drain, no goodbye — the crash under test
    proc.wait(timeout=30)

    proc, info = boot(args + ["--resume"])
    assert info["resumed"] is True, info
    assert info["rounds"] == len(PRE_KILL), (
        f"resume rebuilt {info['rounds']} rounds, journal held {len(PRE_KILL)}"
    )
    try:
        asyncio.run(post_all(info["host"], info["port"], POST_KILL))
        session = asyncio.run(snapshot(info["host"], info["port"]))
    except BaseException:
        proc.kill()
        proc.wait()
        stderr = proc.stderr.read()
        if stderr:
            print(stderr, file=sys.stderr)
        raise
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
    assert code == 0, f"resumed server exited {code}: {proc.stderr.read()}"
    return session


def run_reference(wal: Path) -> dict:
    """The uncrashed twin: the full workload in one uninterrupted session."""
    proc, info = boot(["--wal", str(wal)])
    try:
        asyncio.run(post_all(info["host"], info["port"], PRE_KILL + POST_KILL))
        session = asyncio.run(snapshot(info["host"], info["port"]))
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
    assert code == 0, f"reference server exited {code}"
    return session


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-resume-smoke-") as scratch:
        scratch_path = Path(scratch)
        reference = run_reference(scratch_path / "reference.wal")
        recovered = run_crash_resume(scratch_path / "crash.wal", None)
        checkpointed = run_crash_resume(
            scratch_path / "crash-ckpt.wal", scratch_path / "crash.ckpt"
        )

    assert recovered["digest"] == reference["digest"], (
        f"resumed digest {recovered['digest'][:16]}… diverged from the "
        f"uncrashed run {reference['digest'][:16]}…"
    )
    assert recovered["traces"] == reference["traces"], "recorded traces diverged"
    assert json.dumps(recovered["steps"], sort_keys=True) == json.dumps(
        reference["steps"], sort_keys=True
    ), "step records diverged"
    assert checkpointed["digest"] == reference["digest"], (
        "checkpoint-fast-forwarded resume diverged from the uncrashed run"
    )
    assert checkpointed["traces"] == reference["traces"]
    assert json.dumps(checkpointed["steps"], sort_keys=True) == json.dumps(
        reference["steps"], sort_keys=True
    ), "checkpoint-fast-forwarded step records diverged"

    print(
        "serve resume smoke: OK — kill -9 after "
        f"{len(PRE_KILL)} rounds, resume finished {reference['rounds']} rounds "
        f"(plain WAL and checkpoint+WAL), digest/trace/steps all byte-equal "
        f"({reference['digest'][:16]}…)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
