#!/usr/bin/env python
"""End-to-end smoke for ``python -m repro serve`` as a real subprocess.

What it proves, in one run:

1. the CLI boots, binds an ephemeral port, and announces it on stdout as a
   machine-readable ``Serving`` line;
2. scripted mutations (single and batched POSTs) are admitted over HTTP
   while a live WebSocket subscriber watches the typed event stream — the
   subscriber must see every committed round;
3. the served end state is **identical** to an offline
   :class:`~repro.fleet.replay.FleetReplayer` run over the session trace
   the server recorded, with the offline fleet rebuilt purely from what
   ``/config`` echoes — i.e. a served session is a replayable artifact;
4. SIGINT shuts the server down cleanly (exit code 0).

Run from the repository root (CI serve-smoke does)::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.fleet import FleetReplayer  # noqa: E402
from repro.serve import (  # noqa: E402
    HttpConnection,
    WebSocketClient,
    build_fleet,
    fleet_digest,
)
from repro.traces.schema import Trace  # noqa: E402

SERVE_ARGS = [
    "--cells", "2", "--nodes-per-cell", "12", "--apps", "2",
    "--port", "0", "--seed", "0",
]
BOOT_TIMEOUT = 60.0


def _failure(cell: str, node: str) -> dict:
    return {
        "cell": cell,
        "event": {"record": "event", "kind": "node_failure", "nodes": [node]},
    }


def _recovery(cell: str, node: str) -> dict:
    return {
        "cell": cell,
        "event": {"record": "event", "kind": "node_recovery", "nodes": [node]},
    }


async def drive(host: str, port: int) -> dict:
    """Scripted session: mutate over HTTP with a live WS subscriber."""
    async with WebSocketClient(host, port) as subscriber:
        hello = json.loads(await subscriber.recv_text(timeout=10))
        assert hello.get("event") == "Hello", f"unexpected first WS message: {hello}"

        async with HttpConnection(host, port) as connection:
            config = await connection.get_json("/config")
            cells = config["cells"]
            nodes = {}
            for cell in cells:
                listing = await connection.get_json(f"/cells/{cell}/nodes")
                nodes[cell] = [entry["node"] for entry in listing["nodes"]]

            # Round-per-POST singles, then one multi-cell batched POST.
            singles = [
                _failure(cells[0], nodes[cells[0]][0]),
                _failure(cells[1], nodes[cells[1]][1]),
                {
                    "cell": cells[0],
                    "event": {
                        "record": "event", "kind": "load_change",
                        "multiplier": 1.4, "app": None,
                    },
                },
            ]
            for mutation in singles:
                status, _headers, body = await connection.request(
                    "POST", "/mutations", body=json.dumps(mutation)
                )
                assert status == 200, (status, body)
            batched = {
                "mutations": [
                    _recovery(cells[0], nodes[cells[0]][0]),
                    _failure(cells[0], nodes[cells[0]][2]),
                    _recovery(cells[1], nodes[cells[1]][1]),
                ]
            }
            status, _headers, body = await connection.request(
                "POST", "/mutations", body=json.dumps(batched)
            )
            assert status == 200, (status, body)
            admitted = json.loads(body.decode())
            assert admitted["admitted"] == 3, admitted

            health = await connection.get_json("/healthz")
            rounds = health["rounds"]
            assert rounds >= 4, health  # 3 singles + >=1 batched round

            committed = 0
            while committed < rounds:
                message = await subscriber.recv_text(timeout=10)
                assert message is not None, "WS closed before all rounds streamed"
                event = json.loads(message)
                if event.get("event") == "RoundCommitted":
                    committed += 1

            digest = (await connection.get_json("/digest"))["digest"]
            traces = (await connection.get_json("/trace"))["cells"]
            steps = (await connection.get_json("/steps"))["steps"]
    return {
        "config": config,
        "digest": digest,
        "traces": traces,
        "rounds": rounds,
        "steps": steps,
        "ws_rounds": committed,
    }


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *SERVE_ARGS],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=str(ROOT),
    )
    try:
        line = proc.stdout.readline()
        info = json.loads(line)
        assert info.get("event") == "Serving", f"unexpected boot line: {line!r}"
        session = asyncio.run(drive(info["host"], info["port"]))
    except BaseException:
        proc.kill()
        proc.wait()
        stderr = proc.stderr.read()
        if stderr:
            print(stderr, file=sys.stderr)
        raise
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    assert code == 0, f"server exited {code}: {proc.stderr.read()}"

    # Offline replay from nothing but what the server echoed back.
    scenario = {
        cell: Trace.loads(text) for cell, text in session["traces"].items()
    }
    fleet = build_fleet(**session["config"]["fleet"])
    try:
        steps = FleetReplayer(
            fleet, seed=session["config"]["seed"], workers=1
        ).run(scenario)
        offline_digest = fleet_digest(fleet)
    finally:
        fleet.close()

    assert offline_digest == session["digest"], (
        f"served end state {session['digest'][:16]}… diverged from offline "
        f"replay {offline_digest[:16]}…"
    )
    served_steps = json.dumps(session["steps"], sort_keys=True)
    offline_steps = json.dumps(
        [step.to_record() for step in steps], sort_keys=True
    )
    assert served_steps == offline_steps, "per-round step records diverged"
    assert session["ws_rounds"] == session["rounds"]

    print(
        "serve smoke: OK — "
        f"{session['rounds']} rounds served, {session['ws_rounds']} streamed, "
        f"offline replay digest matches ({session['digest'][:16]}…)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
