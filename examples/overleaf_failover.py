#!/usr/bin/env python3
"""CloudLab-style scenario: Overleaf + HotelReservation on a Kubernetes-like
cluster, a large node failure, and Phoenix-driven targeted recovery.

Reproduces the Figure-6 storyline end to end at small scale: deploy five
application instances, stop kubelets on 60 % of the nodes, let Phoenix
degrade non-critical services, then recover the nodes and watch the
non-critical services come back.  Run with:

    python examples/overleaf_failover.py
"""

from __future__ import annotations

import repro.api as api
from repro.apps import MultiAppLoadRecorder, cloudlab_workload
from repro.cluster.resources import Resources
from repro.kubesim import KubeCluster, KubeClusterConfig

NODE_COUNT = 25
CPU_PER_NODE = 8.0


def print_status(cluster: KubeCluster, recorder: MultiAppLoadRecorder, label: str) -> None:
    recorder.observe(cluster.now, cluster.serving_microservices)
    goals = recorder.apps_meeting_goal()
    print(f"\n[{label}] t={cluster.now:.0f}s  ready nodes={len(cluster.ready_nodes())}  "
          f"apps meeting critical goal: {goals}/{len(recorder.templates)}")
    for name in sorted(recorder.templates):
        serving = cluster.serving_microservices(name)
        total = len(recorder.templates[name].application)
        print(f"    {name:<10} serving {len(serving):>2}/{total} microservices")


def main() -> None:
    cluster = KubeCluster(
        KubeClusterConfig(node_count=NODE_COUNT, node_capacity=Resources(CPU_PER_NODE, CPU_PER_NODE * 2))
    )
    workload = cloudlab_workload(total_capacity_cpu=NODE_COUNT * CPU_PER_NODE)
    for template in workload.values():
        cluster.deploy_application(template.application)
    recorder = MultiAppLoadRecorder(workload)

    cluster.step(120)
    print_status(cluster, recorder, "steady state")

    # The engine drives the Kubernetes-like cluster directly: backend_for
    # asks the cluster for its Phoenix backend under the hood.
    engine = api.engine("revenue")
    engine.reconcile(cluster)

    failed = [f"node-{i}" for i in range(15)]
    cluster.fail_nodes(failed)
    print(f"\n*** stopping kubelets on {len(failed)} of {NODE_COUNT} nodes ***")
    cluster.step(180)
    print_status(cluster, recorder, "after failure, before Phoenix")

    report = engine.reconcile(cluster)
    print(f"\nPhoenix planned in {report.planning_seconds * 1000:.0f} ms, "
          f"executed {report.actions_executed} actions "
          f"({len(report.schedule.deletions)} deletions, {len(report.schedule.migrations)} migrations, "
          f"{len(report.schedule.starts)} starts)")
    cluster.step(120)
    print_status(cluster, recorder, "after Phoenix degradation")

    cluster.recover_nodes(failed)
    print("\n*** kubelets restarted ***")
    cluster.step(180)
    engine.reconcile(cluster)
    cluster.step(180)
    print_status(cluster, recorder, "after recovery")

    overleaf = recorder.timelines["overleaf0"]
    print("\nOverleaf0 document-edit throughput over time (requests/second):")
    for t, rps in overleaf.series("document-edits"):
        print(f"  t={t:>5.0f}s  {rps:5.1f}")


if __name__ == "__main__":
    main()
