#!/usr/bin/env python3
"""Scenarios as data: generate a trace, replay it through the engine.

Generates a seeded failure-storm scenario with the trace subsystem, writes
it to JSONL (the shareable artifact ``python -m repro trace gen`` emits),
reads it back losslessly, and replays it through a ``PhoenixEngine`` with a
``TraceReplayer`` while watching the replay hooks on the engine's event
bus.  Run with:

    python examples/trace_replay.py [node_count]

The same flow as a pure CLI pipeline:

    python -m repro trace gen --kind storm --nodes 120 --seed 7 --out storm.jsonl
    python -m repro replay --trace storm.jsonl --nodes 120 --seed 42
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import repro.api as api
from repro.adaptlab import build_environment
from repro.traces import Trace, TraceReplayer, failure_storm


def main() -> None:
    node_count = int(sys.argv[1]) if len(sys.argv) > 1 else 120

    # 1. A seeded scenario: half the cluster fails in waves at t=300s and
    #    returns in staged groups ten minutes later (the Figure-6 shape).
    trace = failure_storm(node_count, at=300.0, fraction=0.5, recovery_steps=3, seed=7)
    print(f"generated storm trace: {len(trace)} events over {trace.duration:.0f}s")

    # 2. Traces are JSONL files — write, re-read, byte-identical.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "storm.jsonl"
        trace.write(path)
        reloaded = Trace.read(path)
        assert reloaded.dumps() == trace.dumps(), "trace round-trip must be lossless"
        print(f"round-tripped through {path.name}: byte-identical")

    # 3. Replay through the engine.  The replayer mirrors every applied
    #    scenario event and every finished step onto the engine's event bus.
    env = build_environment(node_count=node_count, n_apps=6, seed=7)
    eng = api.engine("revenue")
    eng.events.subscribe(
        lambda e: print(f"  [event] t={e.time:>6.0f}s {e.kind}: {e.payload.get('nodes', '')}"),
        api.TraceEventApplied,
    )
    metrics = TraceReplayer(eng, seed=42).run(env.fresh_state(), trace)

    # 4. Per-step metrics: availability dips through the storm and returns.
    print(f"\n{'time':<8}{'capacity':<10}{'avail':<8}{'revenue':<9}{'actions':<8}")
    for step in metrics:
        print(
            f"{step.time:<8.0f}{step.available_fraction:<10.2f}"
            f"{step.availability:<8.2f}{step.revenue:<9.3f}{step.actions:<8d}"
        )
    final = metrics.final()
    assert final.failed_nodes == 0, "storm trace recovers every node"
    assert final.availability == 1.0, "full availability after recovery"
    print(
        f"\ntrough availability {metrics.min('availability'):.2f}, "
        f"final {final.availability:.2f} — engine recovered the cluster"
    )


if __name__ == "__main__":
    main()
