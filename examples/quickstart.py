#!/usr/bin/env python3
"""Quickstart: plan a graceful degradation for a tiny application.

Builds a four-microservice application with criticality tags and a
dependency graph, places it on a small cluster through the Phoenix engine,
fails half the nodes, and lets the engine reconcile.  Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

import repro.api as api
from repro import (
    Application,
    CriticalityTag,
    Microservice,
    Resources,
    build_uniform_cluster,
)


def main() -> None:
    # 1. Describe the application: microservices, resources, criticality tags
    #    (C1 = most critical) and the caller -> callee dependency graph.
    app = Application.from_microservices(
        "webshop",
        [
            Microservice("frontend", Resources(cpu=2, memory=2), CriticalityTag(1)),
            Microservice("checkout", Resources(cpu=2, memory=2), CriticalityTag(1)),
            Microservice("search", Resources(cpu=2, memory=2), CriticalityTag(2)),
            Microservice("recommendations", Resources(cpu=2, memory=2), CriticalityTag(5)),
        ],
        dependency_edges=[
            ("frontend", "checkout"),
            ("frontend", "search"),
            ("frontend", "recommendations"),
        ],
        price_per_unit=2.0,
        critical_service="checkout",
    )

    # 2. Build a cluster and register the application.
    state = build_uniform_cluster(node_count=4, node_capacity=Resources(4, 4), applications=[app])

    # 3. One engine drives everything: reconcile places the steady state
    #    (a bare ClusterState is auto-wrapped into a backend).
    engine = api.engine("revenue")
    engine.reconcile(state, force=True)
    print("steady state:", sorted(state.active_microservices()["webshop"]))

    state.fail_nodes(["node-0", "node-1"])
    print("\nnodes failed: node-0, node-1 (only 8 CPU left for 8 CPU of demand)")

    # 4. The next round detects the failures and degrades: Phoenix keeps the
    #    critical path and turns the recommendations container off
    #    (diagonal scaling).
    report = engine.reconcile(state)
    print("\nactivation order:")
    for entry in report.plan.ranked:
        marker = "ON " if entry in report.plan.activated else "off"
        print(f"  [{marker}] {entry.microservice} ({entry.cpu} cpu)")

    print("\nactions executed:")
    for action in report.schedule.ordered_actions():
        print(f"  {action.kind.value:<8} {action.replica} -> {action.target_node or '-'}")

    print("\nafter degradation:", sorted(state.active_microservices()["webshop"]))


if __name__ == "__main__":
    main()
