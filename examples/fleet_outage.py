#!/usr/bin/env python3
"""Lose a whole cell, watch the fleet route around it.

Builds a 4-cell fleet (one AdaptLab environment per cell), kills every node
of one cell, and lets the federation layer recover critical availability by
spilling the dark cell's critical set into donor cells — narrated live
through the fleet event bus (CellDegraded → SpilloverPlanned → the donor's
placement → SpilloverReleased once the cell returns).  Run with:

    python examples/fleet_outage.py [nodes_per_cell]

The same flow as a pure CLI pipeline:

    python -m repro fleet replay --cells 4 --scenario outage --outage-cell 2
    python -m repro fleet sweep --cells 4 --lost 0,1,2 --policies packed,none
"""

from __future__ import annotations

import sys

from repro.adaptlab import build_environment
from repro.fleet import (
    CellDegraded,
    CellEvent,
    FleetConfig,
    FleetEngine,
    SpilloverPlanned,
    SpilloverReleased,
)


def narrate(event) -> None:
    if isinstance(event, CellDegraded):
        apps = sorted({app for app, _ms in event.missing})
        print(f"  [event] {event.cell} DEGRADED: critical demand of {apps} uncovered")
    elif isinstance(event, SpilloverPlanned):
        print(
            f"  [event] spillover planned: {event.app} ({event.cpu:.0f} cpu) "
            f"{event.source_cell} -> {event.donor_cell}"
        )
    elif isinstance(event, SpilloverReleased):
        print(
            f"  [event] spillover released: {event.app} leaves {event.donor_cell} "
            f"(source {event.source_cell} recovered)"
        )
    elif isinstance(event, CellEvent) and type(event.event).__name__ == "FailureDetected":
        print(f"  [event] {event.cell}: {len(event.event.nodes)} node(s) failed")


def main() -> None:
    nodes_per_cell = int(sys.argv[1]) if len(sys.argv) > 1 else 40

    # 1. Four cells, four independent environments (heterogeneous app mixes).
    states = [
        build_environment(node_count=nodes_per_cell, n_apps=3, seed=2025 + i).fresh_state()
        for i in range(4)
    ]
    fleet = FleetEngine(FleetConfig(cells=4), states=states, observers=[narrate])
    fleet.reconcile(force=True)
    print(f"fleet converged: {len(fleet.cells)} cells, availability {fleet.availability():.2f}")

    # 2. Cell-2 goes dark — every node at once (power loss, region outage).
    victim = fleet.cell("cell-2")
    print(f"\n--- killing {victim.name} ({len(victim.state.nodes)} nodes) ---")
    victim.state.fail_nodes(list(victim.state.nodes))
    report = fleet.reconcile()
    print(
        f"fleet availability {report.availability:.2f} "
        f"(revenue {report.revenue:.2f}, {len(report.planned)} spillover(s), "
        f"{report.actions_executed} actions)"
    )
    assert report.availability > 0.99, "spillover should cover the critical set"

    # 3. The cell comes back; the guests go home.
    print(f"\n--- recovering {victim.name} ---")
    victim.state.recover_nodes(list(victim.state.nodes))
    report = fleet.reconcile()
    print(
        f"fleet availability {report.availability:.2f} "
        f"({len(report.released)} spillover(s) released)"
    )
    clones = [
        name for cell in fleet.cells for name in cell.state.applications if "@spill:" in name
    ]
    assert not clones, f"clones left behind: {clones}"
    print("\nall spillovers released; every cell self-sufficient again")


if __name__ == "__main__":
    main()
