#!/usr/bin/env python3
"""AdaptLab: benchmark resilience schemes on an Alibaba-like cloud.

Builds a cluster running synthetic Alibaba-trace-like applications, sweeps
failure levels from 10 % to 90 % of capacity, and compares PhoenixCost,
PhoenixFair and the non-cooperative baselines on critical-service
availability, revenue and fairness — a small-scale Figure 7.  Every scheme
is a ``SchemeAdapter`` over the one Phoenix engine; to prove it, the sweep
also runs a "phoenix-cost-ref" engine wired to the golden reference stages
(``implementation="reference"``), whose rows must match phoenix-cost
exactly.  Run with:

    python examples/adaptlab_sweep.py [node_count]
"""

from __future__ import annotations

import sys

import repro.api as api
from repro import default_scheme_suite, run_failure_sweep, summarize
from repro.adaptlab import build_environment


def main() -> None:
    node_count = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"building AdaptLab environment with {node_count} nodes "
          f"(Service-Level-P90 tagging, CPM resources)...")
    env = build_environment(
        node_count=node_count,
        n_apps=10,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=7,
    )
    print(f"  {len(env.applications)} applications, "
          f"{sum(len(a) for a in env.applications.values())} microservices, "
          f"node capacity {env.node_capacity:.1f} cpu")

    # The paper's five schemes, plus a golden-reference engine for
    # verification: same policy, seed algorithms, identical rows expected.
    schemes = [
        *default_scheme_suite(),
        api.SchemeAdapter(
            api.engine("revenue", implementation="reference"), name="phoenix-cost-ref"
        ),
    ]
    result = run_failure_sweep(env, schemes, failure_levels=(0.1, 0.3, 0.5, 0.7, 0.9), trials=1)

    for metric, title in [
        ("availability", "critical service availability"),
        ("revenue", "normalized revenue"),
        ("fairness_total", "total deviation from fair share"),
    ]:
        print(f"\n=== {title} ===")
        series = summarize(result, metric)
        schemes_sorted = sorted(series)
        print("failed%  " + "".join(f"{s:<17}" for s in schemes_sorted))
        for index, (level, _) in enumerate(series[schemes_sorted[0]]):
            row = f"{level * 100:<9.0f}"
            for scheme in schemes_sorted:
                row += f"{series[scheme][index][1]:<17.3f}"
            print(row)

    mismatches = sum(
        1
        for level in (0.1, 0.3, 0.5, 0.7, 0.9)
        if result.point("phoenix-cost", level).availability
        != result.point("phoenix-cost-ref", level).availability
    )
    print(f"\nfast vs reference engine mismatch rows: {mismatches} (expected 0)")
    print("Expected shape: phoenix-* dominate availability, phoenix-cost wins "
          "revenue, phoenix-fair has the smallest fairness deviation.")
    if mismatches:
        raise SystemExit("fast and reference engines diverged — golden equivalence broken")


if __name__ == "__main__":
    main()
