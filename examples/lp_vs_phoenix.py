#!/usr/bin/env python3
"""Compare Phoenix's heuristic planner against the exact ILP formulations.

On a small cluster the ILP (LPCost / LPFair) is tractable and provides the
optimal activation set; this example shows that Phoenix's planner+scheduler
reach near-identical activations orders of magnitude faster — the reason the
paper uses the LP only as a design guide (§4, Figure 8b).  Run with:

    python examples/lp_vs_phoenix.py
"""

from __future__ import annotations

import time

from repro.adaptlab import build_environment, generate_alibaba_applications, inject_capacity_failure
from repro.adaptlab.metrics import critical_service_availability, normalized_revenue
from repro.core import LPCost, PhoenixPlanner, PhoenixScheduler, RevenueObjective
from repro.core.scheduler import apply_schedule


def main() -> None:
    # The exact ILP only stays tractable on small instances (that is the
    # point of this example), so use the four *smallest* generated apps.
    apps = sorted(generate_alibaba_applications(n_apps=12, seed=3), key=lambda a: a.size)[:4]
    env = build_environment(
        node_count=20,
        applications=apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=3,
    )
    reference = env.fresh_state()
    state = env.fresh_state()
    inject_capacity_failure(state, 0.5, seed=1)
    print(f"cluster: {len(state.nodes)} nodes, "
          f"{sum(len(a) for a in state.applications.values())} microservices, 50% capacity lost")

    # Phoenix heuristic.
    started = time.perf_counter()
    planner = PhoenixPlanner(RevenueObjective())
    scheduler = PhoenixScheduler()
    schedule = scheduler.schedule(state, planner.plan(state))
    phoenix_time = time.perf_counter() - started
    phoenix_state = state.copy()
    apply_schedule(phoenix_state, schedule)

    # Exact ILP.
    started = time.perf_counter()
    solution = LPCost(time_limit=60).solve(state)
    lp_time = time.perf_counter() - started
    lp_state = state.copy()
    apply_schedule(lp_state, solution.to_schedule_plan(state))

    for name, target, seconds in [
        ("Phoenix (heuristic)", phoenix_state, phoenix_time),
        ("LPCost (exact ILP)", lp_state, lp_time),
    ]:
        availability, _ = critical_service_availability(target)
        revenue = normalized_revenue(target, reference)
        print(f"\n{name}:")
        print(f"  planning time          : {seconds:.3f} s")
        print(f"  critical availability  : {availability:.2f}")
        print(f"  normalized revenue     : {revenue:.2f}")

    print(f"\nspeedup: {lp_time / phoenix_time:.0f}x — and the LP stops scaling near "
          "1000 nodes (Figure 8b), which is why Phoenix uses the heuristic.")


if __name__ == "__main__":
    main()
