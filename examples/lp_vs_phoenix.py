#!/usr/bin/env python3
"""Compare Phoenix's heuristic planner against the exact ILP formulations.

On a small cluster the ILP (LPCost / LPFair) is tractable and provides the
optimal activation set; this example shows that Phoenix's engine reaches
near-identical activations orders of magnitude faster — the reason the
paper uses the LP only as a design guide (§4, Figure 8b).  Both sides are
driven through the same ``PhoenixEngine`` facade: the heuristic uses the
stock plan → pack → diff pipeline, the ILP plugs in as an ``LPPipeline``.
Run with:

    python examples/lp_vs_phoenix.py
"""

from __future__ import annotations

import repro.api as api
from repro.adaptlab import build_environment, generate_alibaba_applications, inject_capacity_failure
from repro.adaptlab.metrics import critical_service_availability, normalized_revenue
from repro.core import LPCost


def main() -> None:
    # The exact ILP only stays tractable on small instances (that is the
    # point of this example), so use the four *smallest* generated apps.
    apps = sorted(generate_alibaba_applications(n_apps=12, seed=3), key=lambda a: a.size)[:4]
    env = build_environment(
        node_count=20,
        applications=apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=3,
    )
    reference = env.fresh_state()
    state = env.fresh_state()
    inject_capacity_failure(state, 0.5, seed=1)
    print(f"cluster: {len(state.nodes)} nodes, "
          f"{sum(len(a) for a in state.applications.values())} microservices, 50% capacity lost")

    # Phoenix heuristic: the stock engine.
    phoenix = api.engine("revenue")
    phoenix_state, phoenix_time = phoenix.respond(state)

    # Exact ILP: same facade, LP pipeline plugged in.
    lp = api.PhoenixEngine.from_pipeline(api.LPPipeline(LPCost(time_limit=60), name="lp-cost"))
    lp_state, lp_time = lp.respond(state)

    for name, target, seconds in [
        ("Phoenix (heuristic)", phoenix_state, phoenix_time),
        ("LPCost (exact ILP)", lp_state, lp_time),
    ]:
        availability, _ = critical_service_availability(target)
        revenue = normalized_revenue(target, reference)
        print(f"\n{name}:")
        print(f"  planning time          : {seconds:.3f} s")
        print(f"  critical availability  : {availability:.2f}")
        print(f"  normalized revenue     : {revenue:.2f}")

    print(f"\nspeedup: {lp_time / phoenix_time:.0f}x — and the LP stops scaling near "
          "1000 nodes (Figure 8b), which is why Phoenix uses the heuristic.")


if __name__ == "__main__":
    main()
