#!/usr/bin/env python3
"""Chaos-test criticality tags before rolling them out.

Runs the chaos-testing service (§5 of the paper) against the Overleaf and
HotelReservation models: every degradation scenario turns off tagged
microservices and verifies that the application's critical service keeps
serving.  Then closes the loop through the Phoenix engine itself
(``repro.api.engine``): the same templates are deployed on a simulated
cluster, nodes are failed, and the engine's degradation decisions are
checked against the critical request — which also catches a *bad* tagging
(marking the edit pipeline as non-critical) before deployment.  Run with:

    python examples/chaos_testing.py
"""

from __future__ import annotations

from repro.apps import build_hotel_reservation, build_overleaf
from repro.apps.base import AppTemplate
from repro.chaos import ChaosTestingService, verify_tagging, verify_tagging_on_cluster
from repro.criticality import CriticalityTag


def main() -> None:
    templates = (build_overleaf(), build_hotel_reservation())
    for template in templates:
        report = verify_tagging(template)
        print(report.to_text())
        print()

    # Close the loop through the engine: deploy on a cluster, fail nodes,
    # let Phoenix degrade, and check the critical request survives whenever
    # it can.  (Template-level chaos disables services by decree; this runs
    # the actual planner.)
    for template in templates:
        print(verify_tagging_on_cluster(template).to_text())
        print()

    # Now deliberately mis-tag Overleaf: real-time (the websocket edit
    # pipeline) marked as a good-to-have feature.  The chaos suite catches it.
    overleaf = build_overleaf()
    bad_app = overleaf.application.with_tags({"real-time": CriticalityTag(9)})
    bad_template = AppTemplate(application=bad_app, request_types=dict(overleaf.request_types))
    report = ChaosTestingService(bad_template, min_utility=0.3).run()
    print("deliberately broken tagging:")
    print(report.to_text())
    failing = [r.description for r in report.failures]
    print(f"\n{len(failing)} scenario(s) caught the bad tag, e.g.: {failing[0]}")

    # The engine-driven check catches it too — Phoenix itself turns the
    # mis-tagged edit pipeline off while capacity for it still exists.
    cluster_report = verify_tagging_on_cluster(bad_template)
    print("\nengine-driven check on the broken tagging:")
    print(cluster_report.to_text())


if __name__ == "__main__":
    main()
