"""Fleet replay throughput: serial vs. sharded worker processes.

Measures end-to-end fleet-replay throughput (global steps/second, wall
clock) for the same scenario — per-cell Poisson churn plus one mid-run cell
outage, so the spillover protocol is exercised too — driven twice through
:class:`repro.fleet.FleetReplayer`:

* **serial** — every cell reconciles in the parent process;
* **workers=4** — cells sharded onto persistent worker processes; states
  cross the process boundary once, then only trace events and compact
  summaries travel per step (batched K steps per round trip, wire codec).

Both replays must produce byte-identical metrics JSONL — the benchmark
asserts it, so every run doubles as an equivalence check of the sharded
control plane.  Rows break the sharded wall clock into per-phase timings
(``ship`` = encode+send, ``compute`` = blocked on worker replies, ``fold``
= parent-side fold-back) so regressions attribute to the right layer.

Speedup tracks the machine: sharding cannot beat the core count, so rows
record ``cpu_count`` alongside the ratio and tag themselves
``"underprovisioned": true`` whenever ``cpu_count < workers`` — an
underprovisioned row documents identity and phase split, not speedup (the
committed ``BENCH_fleet.json`` notes its measurement host's shape).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--cells 4] \
        [--nodes-per-cell 25000] [--steps 120] [--save] [--json out.json]

or via pytest (CI fleet-smoke gate: byte-identity always; >=2.0x with 4
workers when the host has >= 4 cores)::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -q -s

``--save`` records the rows into ``BENCH_fleet.json`` at the repository
root (the committed trajectory the docs reference).
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from pathlib import Path

from repro import obs
from repro.adaptlab import build_environment
from repro.fleet import FleetConfig, FleetEngine, FleetReplayer
from repro.traces import fleet_scenario

DEFAULT_CELLS = 4
DEFAULT_NODES_PER_CELL = 25000
DEFAULT_STEPS = 120
#: Quick-gate configuration (CI fleet-smoke): small cells, generous ratio.
QUICK_NODES_PER_CELL = 4000
QUICK_STEPS = 60
QUICK_MIN_SPEEDUP = 2.0
QUICK_WORKERS = 4
N_APPS = 6
ENV_SEED = 2025
SCENARIO_SEED = 7
REPLAY_SEED = 3


def _scenario(cells: int, nodes_per_cell: int, steps: int):
    """Per-cell Poisson churn (~``steps`` fleet steps total) + one outage."""
    horizon = 3600.0
    per_cell_steps = max(1, steps // cells)
    mtbf = nodes_per_cell * horizon / per_cell_steps
    return fleet_scenario(
        cells,
        nodes_per_cell,
        horizon=horizon,
        mtbf=mtbf,
        mttr=300.0,
        outage_cell=cells - 1,
        outage_at=horizon / 2,
        outage_recovery_after=horizon / 4,
        seed=SCENARIO_SEED,
    )


def _build_fleet(cells: int, nodes_per_cell: int) -> FleetEngine:
    states = [
        build_environment(
            node_count=nodes_per_cell, n_apps=N_APPS, seed=ENV_SEED + i
        ).fresh_state()
        for i in range(cells)
    ]
    fleet = FleetEngine(FleetConfig(cells=cells), states=states)
    fleet.reconcile(force=True)  # converge before the clock starts
    return fleet


def _replay(cells: int, nodes_per_cell: int, scenario, workers: int):
    """(metrics JSONL, steps, wall seconds, phase split) for one replay.

    The fleet is rebuilt per run (sharded replays hand their states to the
    workers); only the replay itself is timed.  The collector stays enabled
    — allocation churn is part of the real per-step cost.
    """
    fleet = _build_fleet(cells, nodes_per_cell)
    replayer = FleetReplayer(fleet, seed=REPLAY_SEED, workers=workers)
    registry = obs.registry()
    if registry.enabled:
        registry.reset()  # this run's phase histograms only
    gc.collect()
    started = time.perf_counter()
    metrics = replayer.run(scenario)
    elapsed = time.perf_counter() - started
    if registry.enabled:
        # REPRO_OBS=1 runs read the phase split through the shared registry
        # (the replayer observes each phase total into fleet.phase.*_seconds).
        histograms = registry.snapshot()["histograms"]
        phases = {
            name: histograms.get(f"fleet.phase.{name}_seconds", {}).get("sum", 0.0)
            for name in ("ship", "compute", "fold", "wait")
        }
    else:
        phases = dict(replayer.phase_seconds)
    fleet.close()
    return metrics.to_jsonl(), len(metrics), elapsed, phases


def measure_fleet_replay(
    cells: int, nodes_per_cell: int, steps: int = DEFAULT_STEPS, workers: int = 4
) -> dict:
    """One benchmark row: serial vs. sharded replay of the same scenario."""
    scenario = _scenario(cells, nodes_per_cell, steps)
    serial_jsonl, n_steps, serial_seconds, _ = _replay(
        cells, nodes_per_cell, scenario, 1
    )
    sharded_jsonl, _, sharded_seconds, phases = _replay(
        cells, nodes_per_cell, scenario, workers
    )
    if serial_jsonl != sharded_jsonl:  # equivalence is part of the contract
        raise AssertionError(
            f"sharded fleet replay diverged from serial at "
            f"{cells}x{nodes_per_cell} nodes"
        )
    return {
        "cells": cells,
        "nodes_per_cell": nodes_per_cell,
        "steps": n_steps,
        "workers": workers,
        **obs.host_block(workers=workers),
        "serial_steps_per_sec": round(n_steps / serial_seconds, 2),
        "sharded_steps_per_sec": round(n_steps / sharded_seconds, 2),
        "speedup": round(serial_seconds / sharded_seconds, 2),
        "ship_seconds": round(phases.get("ship", 0.0), 3),
        "compute_seconds": round(phases.get("compute", 0.0), 3),
        "fold_seconds": round(phases.get("fold", 0.0), 3),
        "identical_output": True,
    }


def print_rows(rows: list[dict]) -> None:
    print("\n=== Fleet replay throughput (steps/sec; identical output enforced) ===")
    print(
        f"{'cells':<7}{'nodes/cell':<12}{'steps':>7}{'serial':>10}"
        f"{'sharded':>10}{'speedup':>10}{'ship':>8}{'compute':>9}{'fold':>8}{'cores':>7}"
    )
    for row in rows:
        tag = " (underprovisioned)" if row.get("underprovisioned") else ""
        print(
            f"{row['cells']:<7}{row['nodes_per_cell']:<12}{row['steps']:>7}"
            f"{row['serial_steps_per_sec']:>10.2f}{row['sharded_steps_per_sec']:>10.2f}"
            f"{row['speedup']:>9.2f}x{row['ship_seconds']:>8.3f}"
            f"{row['compute_seconds']:>9.3f}{row['fold_seconds']:>8.3f}"
            f"{row['cpu_count']:>7}{tag}"
        )


def main(argv=None) -> list[dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    parser.add_argument("--nodes-per-cell", type=int, default=DEFAULT_NODES_PER_CELL)
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true", help="small-cell row only")
    parser.add_argument("--save", action="store_true", help="write BENCH_fleet.json")
    parser.add_argument("--json", default=None, help="also write rows as JSON ('-' = stdout)")
    args = parser.parse_args(argv)
    if args.quick:
        rows = [
            measure_fleet_replay(
                DEFAULT_CELLS, QUICK_NODES_PER_CELL, QUICK_STEPS, workers=args.workers
            )
        ]
    else:
        rows = [
            measure_fleet_replay(
                args.cells, args.nodes_per_cell, args.steps, workers=args.workers
            )
        ]
    print_rows(rows)
    document = {"benchmark": "fleet_replay_throughput", "rows": rows}
    if any(row.get("underprovisioned") for row in rows):
        document["note"] = (
            "Measured on a host with cpu_count < workers: sharded rows "
            "document byte-identity and the ship/compute/fold phase split, "
            "not speedup. Regenerate with --save on a >=4-core host to "
            "record a meaningful speedup row."
        )
    payload = json.dumps(document, indent=2) + "\n"
    if args.save:
        target = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        target.write_text(payload, encoding="utf-8")
        print(f"saved {target}")
    if args.json == "-":
        print(payload, end="")
    elif args.json:
        Path(args.json).write_text(payload, encoding="utf-8")
    return rows


def test_fleet_sharded_identity_and_speedup_quick():
    """CI gate: sharded replay byte-identical, and >=2x on >=4 cores.

    Byte-identity is asserted unconditionally (measure_fleet_replay raises
    on divergence).  The speedup gate only applies when the host actually
    has the cores to parallelize over — sharding cannot beat ``cpu_count``,
    so underprovisioned hosts check identity only.  One re-measure damps
    shared-runner scheduler noise.
    """
    row = measure_fleet_replay(DEFAULT_CELLS, QUICK_NODES_PER_CELL, QUICK_STEPS)
    if not row["underprovisioned"] and row["speedup"] < QUICK_MIN_SPEEDUP:
        row = measure_fleet_replay(DEFAULT_CELLS, QUICK_NODES_PER_CELL, QUICK_STEPS)
    print_rows([row])
    assert row["identical_output"]
    if not row["underprovisioned"]:
        assert row["speedup"] >= QUICK_MIN_SPEEDUP, (
            f"sharded fleet replay speedup {row['speedup']}x at "
            f"{DEFAULT_CELLS}x{QUICK_NODES_PER_CELL} nodes is below the "
            f"{QUICK_MIN_SPEEDUP}x gate on a {row['cpu_count']}-core host"
        )
    else:  # pragma: no cover - depends on host shape
        print(
            f"(speedup gate skipped: {row['cpu_count']} core(s) < "
            f"{QUICK_WORKERS} workers)"
        )


if __name__ == "__main__":
    main()
