"""Write/update ``BENCH_hotpath.json`` from the hot-path microbenchmarks.

Usage::

    PYTHONPATH=src python benchmarks/save_baseline.py [--nodes 1000 5000]
        [--repeats 3] [--output BENCH_hotpath.json] [--note "..."]

The file records, per cluster size and per stage (rank / pack / diff), the
seconds taken by the *reference* (seed) implementation and the current
optimized implementation, plus the speedup.  Future PRs should re-run this
script and gate on the recorded trajectory (see ``bench_hotpath.py``'s
regression gate for the CI smoke version).
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import DEFAULT_NODE_COUNTS, DEFAULT_REPEATS, measure_hotpath, print_rows  # noqa: E402


#: Stages this script measures; entries with other stages (e.g. the engine
#: "facade" entry maintained by bench_engine.py) are carried over untouched.
HOTPATH_STAGES = ("rank", "pack", "diff")


def build_baseline(rows, repeats: int, note: str | None, previous: dict | None = None) -> dict:
    results = []
    node_counts = sorted({r["nodes"] for r in rows})
    for nodes in node_counts:
        for stage in HOTPATH_STAGES:
            before = next(
                r["seconds"] for r in rows if r["nodes"] == nodes and r["stage"] == stage and r["impl"] == "before"
            )
            after = next(
                r["seconds"] for r in rows if r["nodes"] == nodes and r["stage"] == stage and r["impl"] == "after"
            )
            results.append(
                {
                    "nodes": nodes,
                    "stage": stage,
                    "before_seconds": round(before, 6),
                    "after_seconds": round(after, 6),
                    "speedup": round(before / after, 2),
                }
            )
    if previous:
        results.extend(
            entry
            for entry in previous.get("results", ())
            if entry.get("stage") not in HOTPATH_STAGES
        )
        if note is None:
            note = previous.get("note")
    return {
        "schema": 1,
        "generated": datetime.date.today().isoformat(),
        "methodology": (
            "best-of-N wall time per stage with GC paused; 'before' runs the seed "
            "algorithms retained in repro.core.reference on the same inputs "
            "(alibaba-like workload, 6 apps, 50% capacity failure, seed 2025)"
        ),
        "repeats": repeats,
        "python": platform.python_version(),
        "note": note,
        "results": results,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=list(DEFAULT_NODE_COUNTS))
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"))
    parser.add_argument("--note", default=None)
    args = parser.parse_args(argv)

    # Read the previous baseline before the (slow) measurement so a corrupt
    # file fails fast instead of discarding minutes of benchmarking.
    output = Path(args.output)
    previous = json.loads(output.read_text()) if output.exists() else None

    rows = measure_hotpath(node_counts=args.nodes, repeats=args.repeats)
    print_rows(rows)
    baseline = build_baseline(rows, args.repeats, args.note, previous=previous)
    output.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {output}")


if __name__ == "__main__":
    main()
