"""Figure 7: AdaptLab failure sweep (Service-Level-P90 tags, CPM resources).

(a) critical service availability, (b) normalized revenue, and (c) deviation
from fair share across failure levels, for PhoenixCost, PhoenixFair,
Priority, Fair and Default.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import run_failure_sweep, summarize

from benchmarks.conftest import print_series

FAILURE_LEVELS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.benchmark(group="fig7")
def test_fig7_failure_sweep(benchmark, adaptlab_env, bench_scale):
    result = benchmark.pedantic(
        run_failure_sweep,
        kwargs={
            "env": adaptlab_env,
            "failure_levels": FAILURE_LEVELS,
            "trials": bench_scale.trials,
        },
        rounds=1,
        iterations=1,
    )

    print_series("Figure 7(a): critical service availability", summarize(result, "availability"))
    print_series("Figure 7(b): normalized revenue", summarize(result, "revenue"))
    print_series("Figure 7(c): total fair-share deviation", summarize(result, "fairness_total"))

    # Shape checks at the paper's headline failure levels.
    for level in (0.3, 0.5, 0.7):
        phoenix_best = max(
            result.point("phoenix-cost", level).availability,
            result.point("phoenix-fair", level).availability,
        )
        assert phoenix_best >= result.point("priority", level).availability - 1e-9
        assert phoenix_best >= result.point("fair", level).availability - 1e-9
        assert phoenix_best >= result.point("default", level).availability - 1e-9

        # PhoenixCost maximizes revenue.
        revenues = {s: result.point(s, level).revenue for s in result.schemes()}
        assert revenues["phoenix-cost"] >= max(revenues.values()) - 1e-9

        # PhoenixFair has the least total fairness deviation among tag-aware schemes.
        assert (
            result.point("phoenix-fair", level).fairness_total
            <= result.point("priority", level).fairness_total + 1e-9
        )
        assert (
            result.point("phoenix-fair", level).fairness_total
            <= result.point("default", level).fairness_total + 1e-9
        )
