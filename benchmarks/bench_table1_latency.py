"""Table 1 (Appendix H): P95 latencies before and after diagonal scaling.

Pruned services are reported as "--"; partially pruned services (HR's
"reserve" losing its optional ``user`` call) fail fast and get slightly
*faster*, matching the paper's measurement.
"""

from __future__ import annotations

import pytest

from repro.apps import LoadGenerator, build_hotel_reservation, build_overleaf


def measure_latencies():
    rows = []
    overleaf = build_overleaf()
    hr = build_hotel_reservation()

    overleaf_gen = LoadGenerator(overleaf)
    hr_gen = LoadGenerator(hr)

    before_overleaf = overleaf_gen.report(set(overleaf.application.microservices))
    # After diagonal scaling only the edit path survives.
    after_overleaf = overleaf_gen.report({"web", "real-time", "document-updater", "docstore"})

    before_hr = hr_gen.report(set(hr.application.microservices))
    # After diagonal scaling: search/reserve paths stay, user/recommendation off.
    after_hr = hr_gen.report({"frontend", "search", "geo", "rate", "reservation"})

    for app, request, before, after in [
        ("Overleaf", "document-edits", before_overleaf, after_overleaf),
        ("Overleaf", "compile", before_overleaf, after_overleaf),
        ("Overleaf", "spell-check", before_overleaf, after_overleaf),
        ("HR", "reserve", before_hr, after_hr),
        ("HR", "recommend", before_hr, after_hr),
        ("HR", "search", before_hr, after_hr),
        ("HR", "login", before_hr, after_hr),
    ]:
        rows.append(
            {
                "app": app,
                "service": request,
                "before_ms": before.sample(request).p95_latency_ms,
                "after_ms": after.sample(request).p95_latency_ms,
            }
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_p95_latencies(benchmark):
    rows = benchmark.pedantic(measure_latencies, rounds=1, iterations=1)
    print("\n=== Table 1: P95 latencies before/after diagonal scaling ===")
    print(f"{'app':<10}{'service':<16}{'before':<12}{'after':<12}")
    for row in rows:
        after = f"{row['after_ms']:.2f}" if row["after_ms"] is not None else "--"
        print(f"{row['app']:<10}{row['service']:<16}{row['before_ms']:<12.2f}{after:<12}")

    by_service = {(r["app"], r["service"]): r for r in rows}
    # Pruned services report no latency after scaling.
    assert by_service[("Overleaf", "spell-check")]["after_ms"] is None
    assert by_service[("HR", "recommend")]["after_ms"] is None
    assert by_service[("HR", "login")]["after_ms"] is None
    # Retained critical services keep (or slightly improve) their latency.
    edits = by_service[("Overleaf", "document-edits")]
    assert edits["after_ms"] <= edits["before_ms"] * 1.05
    reserve = by_service[("HR", "reserve")]
    assert reserve["after_ms"] < reserve["before_ms"]
    search = by_service[("HR", "search")]
    assert search["after_ms"] <= search["before_ms"] * 1.05
