"""Figure 5: CloudLab-style evaluation at 42 % remaining capacity.

Five application instances (3× Overleaf, 2× HotelReservation) run on a
200-CPU cluster model; the cluster is reduced to ~42 % capacity and each
resilience scheme responds.  (a) reports revenue and critical-service
availability; (b) reports deviation from fairness.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import default_scheme_suite, evaluate_state, NoDegradationScheme
from repro.apps import cloudlab_workload
from repro.cluster import Node, Resources
from repro.cluster.state import ClusterState, ReplicaId


def build_cloudlab_state(node_count: int = 25, cpu_per_node: float = 8.0) -> ClusterState:
    """The pre-failure CloudLab cluster as a planner-level state."""
    workload = cloudlab_workload(total_capacity_cpu=node_count * cpu_per_node)
    nodes = [Node(f"node-{i}", Resources(cpu_per_node, cpu_per_node * 2)) for i in range(node_count)]
    state = ClusterState(nodes=nodes, applications=[t.application for t in workload.values()])
    # first-fit-decreasing initial placement
    entries = sorted(
        (
            (app.get(ms_name).resources.cpu, app_name, ms_name, replica)
            for app_name, app in state.applications.items()
            for ms_name in app.microservices
            for replica in range(app.get(ms_name).replicas)
        ),
        reverse=True,
    )
    for _, app_name, ms_name, replica in entries:
        demand = state.application(app_name).get(ms_name).resources
        target = next(
            node.name for node in state.nodes.values() if demand.fits_within(state.free_on(node.name))
        )
        state.assign(ReplicaId(app_name, ms_name, replica), target)
    return state


def reduce_to_fraction(state: ClusterState, fraction: float) -> None:
    """Fail nodes until only ``fraction`` of the capacity remains."""
    node_names = sorted(state.nodes)
    keep = max(1, round(fraction * len(node_names)))
    state.fail_nodes(node_names[keep:])


def run_figure5(capacity_fraction: float = 0.42) -> list[dict[str, object]]:
    reference = build_cloudlab_state()
    rows = []
    for scheme in [*default_scheme_suite(), NoDegradationScheme()]:
        state = build_cloudlab_state()
        reduce_to_fraction(state, capacity_fraction)
        new_state, planning = scheme.respond(state)
        metrics = evaluate_state(new_state, reference=reference)
        rows.append(
            {
                "scheme": scheme.name,
                "availability": metrics.critical_service_availability,
                "revenue": metrics.normalized_revenue,
                "fairness_positive": metrics.fairness.positive,
                "fairness_negative": metrics.fairness.negative,
                "planning_seconds": planning,
            }
        )
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_cloudlab_42pct(benchmark):
    rows = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    print("\n=== Figure 5: CloudLab at 42% capacity ===")
    print(f"{'scheme':<16}{'avail':<8}{'revenue':<10}{'fair+':<8}{'fair-':<8}")
    for row in rows:
        print(
            f"{row['scheme']:<16}{row['availability']:<8.2f}{row['revenue']:<10.2f}"
            f"{row['fairness_positive']:<8.3f}{row['fairness_negative']:<8.3f}"
        )
    by_scheme = {r["scheme"]: r for r in rows}
    # Expected shape: Phoenix keeps critical services available and dominates
    # the non-cooperative baselines on both operator objectives.
    assert by_scheme["phoenix-cost"]["availability"] >= by_scheme["default"]["availability"]
    assert by_scheme["phoenix-cost"]["revenue"] >= by_scheme["default"]["revenue"]
    assert by_scheme["phoenix-fair"]["fairness_negative"] <= by_scheme["default"]["fairness_negative"] + 1e-9
    # The no-degradation marker: applications unable to adapt lose availability.
    assert by_scheme["no-degradation"]["availability"] <= by_scheme["phoenix-cost"]["availability"]
