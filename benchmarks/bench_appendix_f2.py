"""Figures 10-16 (Appendix F.2): every tagging-scheme × resource-model combo.

The paper repeats the Figure-7 sweep for all four criticality tagging
schemes (Service-Level / Frequency-Based at P50 / P90) under both resource
models (CPM and long-tailed) and reports that Phoenix dominates the
baselines in every configuration.  This bench runs the same grid at reduced
scale and checks the dominance relation per configuration.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import ResourceModel, TaggingScheme, build_environment, run_failure_sweep

FAILURE_LEVELS = (0.3, 0.6, 0.9)

CONFIGURATIONS = [
    (tagging, resources)
    for resources in (ResourceModel.CPM, ResourceModel.LONG_TAILED)
    for tagging in (
        TaggingScheme.SERVICE_P50,
        TaggingScheme.SERVICE_P90,
        TaggingScheme.FREQUENCY_P50,
        TaggingScheme.FREQUENCY_P90,
    )
]


def run_configuration(alibaba_apps, nodes, tagging, resources, trials=1):
    env = build_environment(
        node_count=nodes,
        applications=alibaba_apps,
        tagging_scheme=tagging,
        resource_model=resources,
        target_utilization=0.7,
        seed=2025,
    )
    return run_failure_sweep(env, failure_levels=FAILURE_LEVELS, trials=trials)


@pytest.mark.benchmark(group="appendix-f2")
@pytest.mark.parametrize("tagging,resources", CONFIGURATIONS, ids=lambda v: str(getattr(v, "value", v)))
def test_appendix_f2_configuration(benchmark, alibaba_apps, bench_scale, tagging, resources):
    # A smaller cluster per configuration keeps the 8-way grid tractable.
    nodes = max(100, bench_scale.adaptlab_nodes // 4)
    result = benchmark.pedantic(
        run_configuration,
        args=(alibaba_apps, nodes, tagging, resources),
        kwargs={"trials": bench_scale.trials},
        rounds=1,
        iterations=1,
    )
    print(f"\n=== {tagging.value} + {resources.value} ===")
    print(f"{'failed':<8}{'scheme':<16}{'avail':<8}{'revenue':<10}{'fair-dev':<10}")
    for point in sorted(result.points, key=lambda p: (p.failure_level, p.scheme)):
        print(
            f"{point.failure_level:<8.1f}{point.scheme:<16}{point.availability:<8.2f}"
            f"{point.revenue:<10.2f}{point.fairness_total:<10.3f}"
        )
    for level in FAILURE_LEVELS:
        phoenix_best = max(
            result.point("phoenix-cost", level).availability,
            result.point("phoenix-fair", level).availability,
        )
        for baseline in ("priority", "fair", "default"):
            assert phoenix_best >= result.point(baseline, level).availability - 1e-9
        revenues = {s: result.point(s, level).revenue for s in result.schemes()}
        assert revenues["phoenix-cost"] >= max(revenues.values()) - 0.02
