"""Facade-overhead benchmark: `PhoenixEngine` vs direct planner+scheduler.

The engine is the single entrypoint for every frontend, so it must be free:
driving plan → pack → diff through `PhoenixEngine.plan`/`schedule` has to
cost (almost) exactly what hand-wiring `PhoenixPlanner` + `PhoenixScheduler`
costs.  This bench measures both on identical inputs (best-of-N, GC paused,
same protocol as `bench_hotpath`) and gates the overhead at **< 5 %**.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py [--nodes 1000] [--repeats 5]

or via pytest (used by CI)::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q -s
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_hotpath import _best_of, _prepare  # noqa: E402

import repro.api as api  # noqa: E402
from repro import obs  # noqa: E402
from repro.core.objectives import RevenueObjective  # noqa: E402
from repro.core.planner import PhoenixPlanner  # noqa: E402
from repro.core.scheduler import PhoenixScheduler  # noqa: E402

DEFAULT_NODES = 1000
DEFAULT_REPEATS = 5
#: Maximum tolerated facade overhead (fraction of the direct time).
MAX_OVERHEAD = 0.05


def measure_facade(node_count: int = DEFAULT_NODES, repeats: int = DEFAULT_REPEATS) -> dict:
    """Best-of-N plan+schedule seconds for the direct wiring and the engine."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    state, _, _ = _prepare(node_count)

    planner = PhoenixPlanner(RevenueObjective())
    scheduler = PhoenixScheduler()

    def direct_round() -> None:
        plan = planner.plan(state)
        scheduler.schedule(state, plan)

    engine = api.engine("revenue")

    def engine_round() -> None:
        plan = engine.plan(state)
        engine.schedule(state, plan)

    # Warm both paths once (planner split caches, state indexes) so the
    # measured minima compare steady-state costs.
    direct_round()
    engine_round()
    direct = _best_of(repeats, direct_round)
    facade = _best_of(repeats, engine_round)
    return {
        "nodes": node_count,
        "stage": "facade",
        # Under REPRO_OBS=1 this row doubles as the observability overhead
        # gate: the engine path carries spans + counters, the direct wiring
        # does not, so the same < 5% bound covers the registry cost.
        "obs_enabled": obs.enabled(),
        "direct_seconds": direct,
        "engine_seconds": facade,
        "overhead_pct": (facade / direct - 1.0) * 100.0,
        **obs.host_block(),
    }


def print_row(row: dict) -> None:
    print("\n=== Engine facade overhead (plan + schedule, best-of-N) ===")
    print(f"{'nodes':<9}{'direct':>12}{'engine':>12}{'overhead':>10}")
    print(
        f"{row['nodes']:<9}{row['direct_seconds']:>12.4f}{row['engine_seconds']:>12.4f}"
        f"{row['overhead_pct']:>+9.2f}%"
    )


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    args = parser.parse_args(argv)
    row = measure_facade(node_count=args.nodes, repeats=args.repeats)
    print_row(row)
    return row


def test_engine_facade_overhead_under_5_percent():
    """CI gate: the facade must add < 5% over direct planner+scheduler calls.

    One re-measure damps scheduler noise on shared CI runners; a facade that
    is genuinely slow fails both rounds.
    """
    row = measure_facade()
    if row["engine_seconds"] > row["direct_seconds"] * (1.0 + MAX_OVERHEAD):
        row = measure_facade()
    print_row(row)
    assert row["engine_seconds"] <= row["direct_seconds"] * (1.0 + MAX_OVERHEAD), (
        f"facade overhead {row['overhead_pct']:+.2f}% exceeds {MAX_OVERHEAD:.0%}: "
        f"direct={row['direct_seconds']:.4f}s engine={row['engine_seconds']:.4f}s"
    )


if __name__ == "__main__":
    main()
