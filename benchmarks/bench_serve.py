"""Serve-layer benchmark: admission and round latency under open-loop load.

Boots a :class:`~repro.serve.app.ControlPlane` over a multi-cell fleet on a
real localhost socket, attaches a WebSocket subscriber (so the event-bus
fan-out cost is part of what is measured), and drives it with the open-loop
generator at a fixed mutations/sec rate.  Reported per row:

* **admission latency** — client-side, scheduled-send to committed-response
  (p50/p90/p99/p999; coordinated-omission-free, see
  :mod:`repro.serve.loadgen`);
* **round latency** — server-side, one batcher drain + fleet round
  (p50/p99);
* **sustained throughput** — admitted mutations/sec over the run.

Determinism is part of the benchmark contract, exactly as byte-identity is
for the replay benchmarks: after the load run, the recorded session trace
is replayed offline through a fresh identically-built fleet and the end
state digests must match — a benchmark run that serves fast but diverges
fails loudly.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--rate 1000] \
        [--duration 5] [--save] [--json out.json]

or via pytest (CI serve-smoke gate: modest rate, zero errors, identity)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s

``--save`` records the rows into ``BENCH_serve.json`` at the repository
root (the committed trajectory the docs reference).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

from repro import obs
from repro.fleet import FleetReplayer
from repro.serve import (
    ControlPlane,
    HttpConnection,
    WebSocketClient,
    build_fleet,
    fleet_digest,
    run_load,
)
from repro.traces.schema import Trace

#: The served fleet: multi-cell, small cells — round cost is the subject,
#: not per-cell scale (bench_fleet.py owns that axis).
FLEET_PARAMS = dict(cells=3, nodes_per_cell=30, apps=3)
SERVE_SEED = 0
LOAD_SEED = 7
DEFAULT_RATE = 1000.0
DEFAULT_DURATION = 5.0
#: Quick-gate configuration (CI serve-smoke): low rate, short run, and a
#: floor far under the committed rows so shared 1-core runners cannot flake.
QUICK_RATE = 300.0
QUICK_DURATION = 1.5
QUICK_MIN_RATE = 50.0


async def _measure(rate: float, duration: float, connections: int, batch: int) -> dict:
    fleet = build_fleet(**FLEET_PARAMS)
    plane = ControlPlane(
        fleet,
        seed=SERVE_SEED,
        queue_limit=65536,  # measure latency, not back-pressure rejections
        fleet_params=FLEET_PARAMS,
    )
    host, port = await plane.start()
    ws_events = 0
    try:
        async with WebSocketClient(host, port) as subscriber:
            await subscriber.recv_text(timeout=5)  # Hello

            async def drain() -> int:
                count = 0
                while True:
                    message = await subscriber.recv_text()
                    if message is None:
                        return count
                    count += 1

            drainer = asyncio.create_task(drain())
            report = await run_load(
                host,
                port,
                rate=rate,
                duration=duration,
                connections=connections,
                batch=batch,
                seed=LOAD_SEED,
            )
            async with HttpConnection(host, port) as connection:
                digest = (await connection.get_json("/digest"))["digest"]
                traces = (await connection.get_json("/trace"))["cells"]
            drainer.cancel()
            try:
                ws_events = await drainer
            except asyncio.CancelledError:
                pass
    finally:
        await plane.shutdown()

    scenario = {cell: Trace.loads(text) for cell, text in traces.items()}
    offline = build_fleet(**FLEET_PARAMS)
    try:
        started = time.perf_counter()
        FleetReplayer(offline, seed=SERVE_SEED, workers=1).run(scenario)
        replay_seconds = time.perf_counter() - started
        identical = fleet_digest(offline) == digest
    finally:
        offline.close()
    if not identical:  # determinism is part of the benchmark contract
        raise AssertionError("served fleet state diverged from offline replay")

    admission = report["admission_seconds"]
    rounds = report["server"]["round_seconds"]
    row = {
        "cells": FLEET_PARAMS["cells"],
        "nodes_per_cell": FLEET_PARAMS["nodes_per_cell"],
        **obs.host_block(),
        "offered_rate": rate,
        "duration_seconds": report["duration_seconds"],
        "admitted": report["admitted"],
        "admitted_rate": report["admitted_rate"],
        "connections": report["connections"],
        "batch": report["batch"],
        "rejected_429": report["rejected_429"],
        "errors": report["errors"],
        "rounds": report["server"]["rounds"],
        "admission_p50_ms": round(1000 * admission.get("p50", 0.0), 3),
        "admission_p90_ms": round(1000 * admission.get("p90", 0.0), 3),
        "admission_p99_ms": round(1000 * admission.get("p99", 0.0), 3),
        "admission_p999_ms": round(1000 * admission.get("p999", 0.0), 3),
        "round_p50_ms": round(1000 * rounds.get("p50", 0.0), 3),
        "round_p99_ms": round(1000 * rounds.get("p99", 0.0), 3),
        "ws_events": ws_events,
        "offline_replay_seconds": round(replay_seconds, 3),
        "identical_end_state": True,
    }
    if obs.enabled():
        # REPRO_OBS=1 runs report through the shared registry (counters
        # only: timing histograms are wall-clock and belong to the row).
        row["obs"] = obs.registry().snapshot(include_timing=False)["counters"]
    return row


def measure_serve(
    rate: float, duration: float, connections: int = 8, batch: int = 32
) -> dict:
    return asyncio.run(_measure(rate, duration, connections, batch))


def print_rows(rows: list[dict]) -> None:
    print("\n=== Serve admission/round latency (open loop; identity enforced) ===")
    print(
        f"{'rate':<8}{'admitted/s':>11}{'rounds':>8}{'adm p50':>9}{'adm p99':>9}"
        f"{'rnd p50':>9}{'rnd p99':>9}{'429s':>6}"
    )
    for row in rows:
        print(
            f"{row['offered_rate']:<8.0f}{row['admitted_rate']:>11.1f}{row['rounds']:>8}"
            f"{row['admission_p50_ms']:>8.1f}m{row['admission_p99_ms']:>8.1f}m"
            f"{row['round_p50_ms']:>8.1f}m{row['round_p99_ms']:>8.1f}m"
            f"{row['rejected_429']:>6}"
        )


def main(argv=None) -> list[dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, nargs="+", default=[DEFAULT_RATE])
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--quick", action="store_true", help="one low-rate short row only")
    parser.add_argument("--save", action="store_true", help="write BENCH_serve.json")
    parser.add_argument("--json", default=None, help="also write rows as JSON ('-' = stdout)")
    args = parser.parse_args(argv)
    if args.quick:
        rows = [measure_serve(QUICK_RATE, QUICK_DURATION, args.connections, args.batch)]
    else:
        rows = [
            measure_serve(rate, args.duration, args.connections, args.batch)
            for rate in args.rate
        ]
    print_rows(rows)
    payload = json.dumps({"benchmark": "serve_latency", "rows": rows}, indent=2) + "\n"
    if args.save:
        target = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        target.write_text(payload, encoding="utf-8")
        print(f"saved {target}")
    if args.json == "-":
        print(payload, end="")
    elif args.json:
        Path(args.json).write_text(payload, encoding="utf-8")
    return rows


def test_serve_quick():
    """CI gate: low-rate open-loop run — zero errors, identity, sane floor.

    Rate and floor are deliberately far below the committed BENCH_serve.json
    rows (measured at 1k/s locally) so shared-runner noise cannot flake the
    gate; the end-state identity assertion inside :func:`measure_serve` is
    the part that must never be weakened.
    """
    row = measure_serve(QUICK_RATE, QUICK_DURATION)
    print_rows([row])
    assert row["errors"] == 0, f"load generator saw transport errors: {row}"
    assert row["identical_end_state"]
    assert row["admitted"] > 0
    assert row["admitted_rate"] >= QUICK_MIN_RATE, (
        f"admitted rate {row['admitted_rate']}/s is below the "
        f"{QUICK_MIN_RATE}/s quick floor"
    )


if __name__ == "__main__":
    main()
