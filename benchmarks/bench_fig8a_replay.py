"""Figure 8(a): requests served while the available capacity varies.

Replays a ten-minute capacity trace (deep trough, staged recovery) against
Phoenix and the non-cooperative baselines, and reports the requests served
at every step.  The paper's claim: Phoenix serves ~2× the requests of the
non-cooperative baselines over the window.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import (
    CapacityTrace,
    DefaultScheme,
    FairScheme,
    PhoenixCostScheme,
    PhoenixFairScheme,
    PriorityScheme,
    build_environment,
    replay_capacity_trace,
)


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_capacity_replay(benchmark, alibaba_apps, bench_scale):
    env = build_environment(
        node_count=bench_scale.replay_nodes,
        applications=alibaba_apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=2025,
    )
    schemes = [PhoenixCostScheme(), PhoenixFairScheme(), PriorityScheme(), FairScheme(), DefaultScheme()]
    trace = CapacityTrace.paper_profile(steps=20)

    result = benchmark.pedantic(
        replay_capacity_trace, args=(env, schemes), kwargs={"trace": trace}, rounds=1, iterations=1
    )

    print("\n=== Figure 8(a): requests served over time ===")
    print(f"{'time':<8}{'capacity':<10}" + "".join(s.name.ljust(15) for s in schemes))
    capacities = {p.time: p.available_fraction for p in trace}
    series = {s.name: dict(result.series(s.name)) for s in schemes}
    for point in trace:
        row = f"{point.time:<8.0f}{capacities[point.time]:<10.2f}"
        row += "".join(f"{series[s.name][point.time]:<15.3f}" for s in schemes)
        print(row)

    improvement_fair = result.improvement("phoenix-cost", "fair")
    improvement_priority = result.improvement("phoenix-cost", "priority")
    improvement_default = result.improvement("phoenix-cost", "default")
    print(
        f"\ntotal requests served, Phoenix vs baselines: "
        f"fair×{improvement_fair:.2f} priority×{improvement_priority:.2f} default×{improvement_default:.2f}"
    )
    # Shape: Phoenix serves at least as many requests as every non-cooperative
    # baseline, and clearly more than Default (the paper reports ~2×).
    assert improvement_fair >= 1.0
    assert improvement_priority >= 1.0
    assert improvement_default >= 1.2
