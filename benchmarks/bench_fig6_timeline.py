"""Figure 6: targeted recovery timeline on the Kubernetes-like cluster.

A multi-tenant cluster loses ~60 % of its nodes at t1 and gets them back ten
(simulated) minutes later.  (a)/(b) compare how many applications keep their
critical-service goal under Phoenix vs. Default; (c)-(f) report per-request
throughput and utility for Overleaf0 and HR1 under diagonal scaling.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.apps import MultiAppLoadRecorder, cloudlab_workload
from repro.cluster.resources import Resources
from repro.core import PhoenixController
from repro.kubesim import KubeCluster, KubeClusterConfig, PhoenixKubeBackend

NODE_COUNT = 25
CPU_PER_NODE = 8.0
FAILED_NODES = [f"node-{i}" for i in range(15)]   # ~60 % of nodes fail
SAMPLE_PERIOD = 30.0
FAILURE_AT = 300.0
RECOVERY_AFTER = 600.0        # nodes return 10 minutes after the failure
HORIZON = 1800.0


def _build():
    cluster = KubeCluster(
        KubeClusterConfig(node_count=NODE_COUNT, node_capacity=Resources(CPU_PER_NODE, CPU_PER_NODE * 2))
    )
    workload = cloudlab_workload(total_capacity_cpu=NODE_COUNT * CPU_PER_NODE)
    for template in workload.values():
        cluster.deploy_application(template.application)
    cluster.step(120)
    return cluster, workload


def run_timeline(use_phoenix: bool) -> dict[str, object]:
    """Run the Figure-6 scenario and sample the workload every 30 s."""
    cluster, workload = _build()
    recorder = MultiAppLoadRecorder(workload)
    controller = None
    if use_phoenix:
        controller = PhoenixController(PhoenixKubeBackend(cluster), engine=api.engine("revenue"))
        controller.reconcile()

    recovery_time = FAILURE_AT + RECOVERY_AFTER
    failed = False
    recovered = False
    clock = cluster.now
    while clock < HORIZON:
        if not failed and clock >= FAILURE_AT:
            cluster.fail_nodes(FAILED_NODES)
            failed = True
        if not recovered and clock >= recovery_time:
            cluster.recover_nodes(FAILED_NODES)
            recovered = True
        cluster.step(SAMPLE_PERIOD)
        clock = cluster.now
        if controller is not None:
            controller.reconcile()
        recorder.observe(clock, cluster.serving_microservices)

    goals = [
        (report.time, recorder.apps_meeting_goal(index))
        for index, report in enumerate(next(iter(recorder.timelines.values())).reports)
    ]
    return {"recorder": recorder, "goals": goals, "workload": workload}


@pytest.mark.benchmark(group="fig6")
def test_fig6_phoenix_vs_default_timeline(benchmark):
    result = benchmark.pedantic(lambda: (run_timeline(True), run_timeline(False)), rounds=1, iterations=1)
    phoenix, default = result

    def final_goal_count(run, at_time):
        return dict(run["goals"]).get(at_time, None)

    # During the outage window (after Phoenix has had time to react, before
    # recovery) Phoenix keeps more applications at their critical-service goal.
    outage_samples = [t for t, _ in phoenix["goals"] if FAILURE_AT + 300 <= t < FAILURE_AT + RECOVERY_AFTER]
    phoenix_goals = min(dict(phoenix["goals"])[t] for t in outage_samples)
    default_goals = min(dict(default["goals"])[t] for t in outage_samples)

    print("\n=== Figure 6(a)/(b): applications meeting critical-service goal ===")
    print(f"{'time':<8}{'phoenix':<10}{'default':<10}")
    for (t, p), (_, d) in zip(phoenix["goals"], default["goals"]):
        print(f"{t:<8.0f}{p:<10d}{d:<10d}")
    print(f"\nminimum during outage: phoenix={phoenix_goals} default={default_goals}")
    assert phoenix_goals >= default_goals
    assert phoenix_goals >= 4  # paper: 5/5 vs 2/5

    # Figure 6(c)/(d): Overleaf0 edit throughput recovers, spell-check drops.
    overleaf_tl = phoenix["recorder"].timelines["overleaf0"]
    edits = dict(overleaf_tl.series("document-edits"))
    spell = dict(overleaf_tl.series("spell-check"))
    during = [t for t in edits if FAILURE_AT + 300 <= t < FAILURE_AT + RECOVERY_AFTER]
    after = [t for t in edits if t > FAILURE_AT + RECOVERY_AFTER + 300]
    print("\n=== Figure 6(c)/(d): Overleaf0 under diagonal scaling ===")
    print("edits served during outage (min):", min(edits[t] for t in during))
    print("spell-check served during outage (min):", min(spell[t] for t in during))
    print("spell-check served after recovery (max):", max(spell[t] for t in after))
    assert min(edits[t] for t in during) > 0          # critical service retained
    assert min(spell[t] for t in during) == 0         # non-critical turned off
    assert max(spell[t] for t in after) > 0            # restored after recovery

    # Figure 6(e)/(f): HotelReservation under diagonal scaling.  The critical
    # request of the HR instance keeps serving while its non-critical request
    # (recommend) is pruned; a partially pruned critical request serves at
    # reduced utility during the outage and returns to full utility after
    # recovery.  We check the HR instance that retained its goal during the
    # outage (which of HR0/HR1 gets squeezed depends on prices and packing).
    workload = phoenix["workload"]
    hr_names = [name for name in workload if name.startswith("hr")]
    served_hr = None
    for name in hr_names:
        timeline = phoenix["recorder"].timelines[name]
        critical = workload[name].critical_request().name
        series = dict(timeline.series(critical))
        if min(series[t] for t in during) > 0:
            served_hr = name
            break
    assert served_hr is not None, "no HotelReservation instance kept its critical request"

    hr_tl = phoenix["recorder"].timelines[served_hr]
    critical_request = workload[served_hr].critical_request().name
    critical_rps = dict(hr_tl.series(critical_request))
    recommend_rps = dict(hr_tl.series("recommend"))
    utilities = dict(hr_tl.utility_series(critical_request))
    print(f"\n=== Figure 6(e)/(f): {served_hr} {critical_request} ===")
    print("critical RPS during outage (min):", min(critical_rps[t] for t in during))
    print("recommend RPS during outage (max):", max(recommend_rps[t] for t in during))
    print("critical utility during outage (min):", min(utilities[t] for t in during))
    print("critical utility after recovery (max):", max(utilities[t] for t in after))
    assert min(critical_rps[t] for t in during) > 0          # critical path retained
    assert max(recommend_rps[t] for t in during) == 0         # optional feature pruned
    assert min(utilities[t] for t in during) <= 1.0            # possibly degraded (guest mode)
    assert max(utilities[t] for t in after) == pytest.approx(1.0)
