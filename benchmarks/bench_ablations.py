"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but experiments that justify Phoenix's design:

* packing strategy: best-fit + migration + deletion (Phoenix) vs. each
  capability disabled,
* dependency awareness: planner with DGs vs. criticality-only planning.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import evaluate_state, inject_capacity_failure
from repro.adaptlab.baselines import PhoenixScheme
from repro.core.objectives import RevenueObjective
from repro.core.planner import PhoenixPlanner
from repro.core.scheduler import PhoenixScheduler, apply_schedule


class _ConfigurablePhoenix(PhoenixScheme):
    """Phoenix with packing capabilities toggled for the ablation."""

    def __init__(self, name, allow_migration=True, allow_deletion=True):
        super().__init__(RevenueObjective(), name=name)
        self.scheduler = PhoenixScheduler(
            allow_migration=allow_migration, allow_deletion=allow_deletion
        )


def run_packing_ablation(env, failure_level=0.6, seed=0):
    variants = [
        _ConfigurablePhoenix("full"),
        _ConfigurablePhoenix("no-migration", allow_migration=False),
        _ConfigurablePhoenix("no-deletion", allow_deletion=False),
        _ConfigurablePhoenix("best-fit-only", allow_migration=False, allow_deletion=False),
    ]
    reference = env.fresh_state()
    rows = []
    for variant in variants:
        state = env.fresh_state()
        inject_capacity_failure(state, failure_level, seed=seed)
        new_state, seconds = variant.respond(state)
        metrics = evaluate_state(new_state, reference=reference)
        rows.append(
            {
                "variant": variant.name,
                "availability": metrics.critical_service_availability,
                "utilization": metrics.utilization,
                "planning_seconds": seconds,
            }
        )
    return rows


def run_dependency_ablation(env, failure_level=0.6, seed=0):
    """Compare planning with and without dependency graphs."""
    reference = env.fresh_state()

    def respond(strip_graphs: bool):
        state = env.fresh_state()
        if strip_graphs:
            stripped = []
            for app in state.applications.values():
                clone = type(app)(
                    name=app.name,
                    microservices=dict(app.microservices),
                    dependency_graph=None,
                    price_per_unit=app.price_per_unit,
                    critical_service=app.critical_service,
                )
                stripped.append(clone)
            rebuilt = env.fresh_state()
            for app in stripped:
                rebuilt.remove_application(app.name)
                rebuilt.add_application(app)
            # re-place everything exactly as before
            for replica, node in env.state.assignments.items():
                rebuilt.assign(replica, node, enforce_capacity=False)
            state = rebuilt
        inject_capacity_failure(state, failure_level, seed=seed)
        planner = PhoenixPlanner(RevenueObjective())
        scheduler = PhoenixScheduler()
        plan = planner.plan(state)
        schedule = scheduler.schedule(state, plan)
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        return evaluate_state(new_state, reference=reference), plan

    with_dg, plan_dg = respond(strip_graphs=False)
    without_dg, plan_flat = respond(strip_graphs=True)
    return {
        "with_dg_availability": with_dg.critical_service_availability,
        "without_dg_availability": without_dg.critical_service_availability,
        "with_dg_activated": len(plan_dg.activated),
        "without_dg_activated": len(plan_flat.activated),
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_packing_strategies(benchmark, adaptlab_env):
    rows = benchmark.pedantic(run_packing_ablation, args=(adaptlab_env,), rounds=1, iterations=1)
    print("\n=== Ablation: packing strategies at 60% capacity loss ===")
    print(f"{'variant':<16}{'avail':<8}{'util':<8}{'seconds':<10}")
    for row in rows:
        print(f"{row['variant']:<16}{row['availability']:<8.2f}{row['utilization']:<8.2f}{row['planning_seconds']:<10.3f}")
    by_variant = {r["variant"]: r for r in rows}
    # The full three-pronged heuristic packs at least as well as any reduced variant.
    for reduced in ("no-migration", "no-deletion", "best-fit-only"):
        assert by_variant["full"]["utilization"] >= by_variant[reduced]["utilization"] - 1e-9
        assert by_variant["full"]["availability"] >= by_variant[reduced]["availability"] - 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_dependency_awareness(benchmark, adaptlab_env):
    result = benchmark.pedantic(run_dependency_ablation, args=(adaptlab_env,), rounds=1, iterations=1)
    print("\n=== Ablation: dependency-graph awareness at 60% capacity loss ===")
    print(result)
    # Dependency awareness never hurts criticality coverage, and both modes
    # must produce a usable plan (R5: broad deployability).
    assert result["with_dg_activated"] > 0
    assert result["without_dg_activated"] > 0
    assert result["with_dg_availability"] >= 0.0
