"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
benchmarks run on scaled-down clusters by default (so the whole suite
finishes in minutes on a laptop); the scale can be raised with the
``REPRO_BENCH_SCALE`` environment variable:

* ``REPRO_BENCH_SCALE=small`` (default) — hundreds of nodes, smaller apps.
* ``REPRO_BENCH_SCALE=paper`` — the paper's sizes (up to 100k nodes); slow.

Each bench prints the rows/series of its figure so the output can be
compared against the paper directly; EXPERIMENTS.md records a snapshot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.adaptlab import build_environment, generate_alibaba_applications


@dataclass(frozen=True)
class BenchScale:
    """Knobs that differ between the quick and the paper-scale runs."""

    name: str
    adaptlab_nodes: int
    adaptlab_apps: int
    scalability_nodes: tuple[int, ...]
    replay_nodes: int
    trials: int


SCALES = {
    "small": BenchScale(
        name="small",
        adaptlab_nodes=400,
        adaptlab_apps=8,
        scalability_nodes=(100, 1000, 5000),
        replay_nodes=400,
        trials=1,
    ),
    "paper": BenchScale(
        name="paper",
        adaptlab_nodes=100_000,
        adaptlab_apps=18,
        scalability_nodes=(100, 1000, 10_000, 100_000),
        replay_nodes=10_000,
        trials=5,
    ),
}


def current_scale() -> BenchScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    return current_scale()


@pytest.fixture(scope="session")
def alibaba_apps(bench_scale):
    return generate_alibaba_applications(n_apps=bench_scale.adaptlab_apps, seed=2025)


@pytest.fixture(scope="session")
def adaptlab_env(bench_scale, alibaba_apps):
    """The Figure-7 environment: Service-Level-P90 tagging, CPM resources."""
    return build_environment(
        node_count=bench_scale.adaptlab_nodes,
        applications=alibaba_apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=2025,
    )


def print_series(title: str, series: dict[str, list[tuple[float, float]]]) -> None:
    """Print a figure's series as aligned rows (x, one column per scheme)."""
    print(f"\n=== {title} ===")
    schemes = sorted(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    header = "x".ljust(8) + "".join(s.ljust(16) for s in schemes)
    print(header)
    lookup = {s: dict(points) for s, points in series.items()}
    for x in xs:
        row = f"{x:<8.2f}" + "".join(
            f"{lookup[s].get(x, float('nan')):<16.4f}" for s in schemes
        )
        print(row)
