"""Figure 17 (Appendix G): analysis of the Alibaba-like workload.

(a) dependency-graph size vs. user requests served, (b) call-graph size CDF
for the top applications, (c) fraction of requests servable as a function of
the fraction of microservices activated (the LP/greedy coverage analysis),
plus the single-upstream statistic quoted in §3.2.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import (
    application_summaries,
    call_graph_size_cdf,
    generate_alibaba_applications,
    requests_vs_microservice_fraction,
    single_upstream_fraction,
)


def run_analysis(n_apps=18, seed=2025):
    apps = generate_alibaba_applications(n_apps=n_apps, seed=seed)
    top4 = sorted(apps, key=lambda a: a.total_requests, reverse=True)[:4]
    return {
        "summaries": application_summaries(apps),
        "cdfs": {app.name: call_graph_size_cdf(app, max_size=20) for app in top4},
        "coverage": {
            app.name: requests_vs_microservice_fraction(app, fractions=(0.01, 0.03, 0.05, 0.1))
            for app in top4
        },
        "single_upstream_all": single_upstream_fraction(apps),
        "single_upstream_top4": single_upstream_fraction(apps, top_k=4),
        "apps": apps,
    }


@pytest.mark.benchmark(group="fig17")
def test_fig17_alibaba_analysis(benchmark):
    result = benchmark.pedantic(run_analysis, rounds=1, iterations=1)

    print("\n=== Figure 17(a): application size vs requests served ===")
    print(f"{'app':<8}{'microservices':<16}{'requests/day':<16}{'single-upstream':<16}")
    for summary in result["summaries"]:
        print(
            f"{summary.name:<8}{summary.microservices:<16}{summary.requests:<16.0f}"
            f"{summary.single_upstream_fraction:<16.2f}"
        )

    print("\n=== Figure 17(b): call-graph size CDF (top-4 apps, size <= 10) ===")
    for name, cdf in result["cdfs"].items():
        at_10 = dict(cdf)[10]
        print(f"  {name}: {at_10:.0%} of requests touch <= 10 microservices")

    print("\n=== Figure 17(c): requests served vs fraction of microservices ===")
    for name, points in result["coverage"].items():
        formatted = ", ".join(f"{frac:.0%}->{cov:.0%}" for frac, cov in points)
        print(f"  {name}: {formatted}")

    print(
        f"\nsingle-upstream microservices: top-4 {result['single_upstream_top4']:.0%}, "
        f"all 18 apps {result['single_upstream_all']:.0%}"
    )

    # §3.2: 74 % (top 4) and 82 % (all apps) are single-upstream — we accept a band.
    assert 0.65 <= result["single_upstream_top4"] <= 0.92
    assert 0.70 <= result["single_upstream_all"] <= 0.92

    # The biggest application serves >80 % of requests from a few % of its
    # microservices, and most of its call graphs stay small.
    biggest = max(result["apps"], key=lambda a: a.size)
    coverage = dict(result["coverage"][biggest.name])
    assert coverage[0.03] > 0.5
    assert coverage[0.1] > 0.8
    assert dict(result["cdfs"][biggest.name])[10] > 0.6
