"""Figure 8(b): planning time vs. cluster size.

Phoenix's planner+scheduler time is measured on clusters of increasing size
and compared against the Default baseline and the exact ILP formulations.
The paper's findings: the LP does not scale beyond ~1000 nodes, while
Phoenix stays within ~10 seconds at 100,000 nodes (close to Default).
"""

from __future__ import annotations

import pytest

from repro.adaptlab import (
    DefaultScheme,
    LPCostScheme,
    PhoenixCostScheme,
    PhoenixFairScheme,
    build_environment,
    generate_alibaba_applications,
    inject_capacity_failure,
)
from repro.core.lp import LPSizeError

#: LP runs are capped to small clusters, mirroring the paper's observation.
LP_NODE_LIMIT = 1000
LP_TIME_LIMIT = 20.0
#: Refuse to even build ILPs beyond this size (they take minutes to
#: construct, which is itself the "does not scale" result).
LP_MAX_VARIABLES = 300_000


def measure_lp_reference_point(node_count, seed=2025):
    """Planning time of the exact ILP on the largest instance it can handle.

    Even with HiGHS time limits, building and presolving the ILP for the
    full Alibaba-like workload takes unbounded time well before 1000 nodes —
    which is the paper's point.  To put a finite number on the plot, the LP
    is measured on a reduced instance (the four smallest applications) at
    the smallest cluster size; everything larger is reported as not scaling.
    """
    small_apps = sorted(generate_alibaba_applications(n_apps=12, seed=seed), key=lambda a: a.size)[:4]
    env = build_environment(
        node_count=min(node_count, 20),
        applications=small_apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=seed,
    )
    state = env.fresh_state()
    inject_capacity_failure(state, 0.5, seed=0)
    lp = LPCostScheme(time_limit=LP_TIME_LIMIT)
    lp._lp.max_variables = LP_MAX_VARIABLES
    try:
        _, seconds = lp.respond(state)
        return seconds
    except LPSizeError:
        return float("inf")


def measure_planning_times(node_counts, trials=1, n_apps=6, seed=2025):
    """Respond to a 50 % failure at each cluster size and record plan time."""
    apps = generate_alibaba_applications(n_apps=n_apps, seed=seed)
    rows = []
    for node_count in node_counts:
        env = build_environment(
            node_count=node_count,
            applications=apps,
            tagging_scheme="service-p90",
            resource_model="cpm",
            target_utilization=0.7,
            seed=seed,
        )
        schemes = [PhoenixCostScheme(), PhoenixFairScheme(), DefaultScheme()]
        for scheme in schemes:
            elapsed = []
            for trial in range(trials):
                state = env.fresh_state()
                inject_capacity_failure(state, 0.5, seed=trial)
                _, seconds = scheme.respond(state)
                elapsed.append(seconds)
            rows.append({"nodes": node_count, "scheme": scheme.name, "seconds": sum(elapsed) / len(elapsed)})
        # Exact LP: only attempted at the smallest cluster size, and on a
        # reduced instance (see measure_lp_reference_point) — the full-size
        # ILP does not finish in bounded time, which is itself the "LP does
        # not scale" result of Figure 8(b).
        if node_count == min(node_counts) and node_count <= LP_NODE_LIMIT:
            seconds = measure_lp_reference_point(node_count, seed=seed)
            rows.append({"nodes": node_count, "scheme": "lp-cost", "seconds": seconds})
        else:
            rows.append({"nodes": node_count, "scheme": "lp-cost", "seconds": float("inf")})
    return rows


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_planning_time_vs_cluster_size(benchmark, bench_scale):
    rows = benchmark.pedantic(
        measure_planning_times,
        args=(bench_scale.scalability_nodes,),
        kwargs={"trials": bench_scale.trials},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 8(b): planning time (seconds) vs cluster size ===")
    schemes = sorted({r["scheme"] for r in rows})
    print(f"{'nodes':<10}" + "".join(s.ljust(15) for s in schemes))
    for nodes in sorted({r["nodes"] for r in rows}):
        row = f"{nodes:<10}"
        for scheme in schemes:
            value = next(
                (r["seconds"] for r in rows if r["nodes"] == nodes and r["scheme"] == scheme),
                float("nan"),
            )
            row += f"{value:<15.3f}"
        print(row)

    # Paper: Phoenix stays under 10 seconds even at the largest cluster size
    # (100k nodes in the paper, the largest bench-scale size here), close to
    # Default; the LP stops scaling shortly past the smallest size.
    phoenix_times = [r["seconds"] for r in rows if r["scheme"].startswith("phoenix")]
    assert max(phoenix_times) < 10.0

    smallest = min(bench_scale.scalability_nodes)
    for row in rows:
        if row["scheme"] != "lp-cost":
            continue
        if row["nodes"] > smallest:
            assert row["seconds"] == float("inf")  # LP does not scale past the smallest size
