"""Figure 9 (Appendix F.1): resource breakdown across criticality levels for
the CloudLab workload, and the breaking-point property.

The paper reports a roughly 60:40 split between the most-critical and the
remaining resources, with all five instances together using ~70 % of the
200-CPU cluster, so that a failure down to ~42 % capacity is the deepest the
cluster can absorb while keeping every C1 microservice alive.
"""

from __future__ import annotations

import pytest

from repro.apps import cloudlab_workload, resource_breakdown
from repro.criticality import CriticalityTag

CLUSTER_CPU = 200.0


def measure_breakdown():
    workload = cloudlab_workload(total_capacity_cpu=CLUSTER_CPU)
    per_level = resource_breakdown(workload)
    total = sum(per_level.values())
    c1 = sum(
        ms.total_resources.cpu
        for template in workload.values()
        for ms in template.application
        if ms.criticality == CriticalityTag(1)
    )
    return {
        "per_level": per_level,
        "total_cpu": total,
        "c1_cpu": c1,
        "cluster_fraction": total / CLUSTER_CPU,
        "c1_cluster_fraction": c1 / CLUSTER_CPU,
    }


@pytest.mark.benchmark(group="fig9")
def test_fig9_resource_breakdown(benchmark):
    result = benchmark.pedantic(measure_breakdown, rounds=1, iterations=1)
    print("\n=== Figure 9: CPU demand per criticality level (CloudLab workload) ===")
    for level, cpu in result["per_level"].items():
        print(f"  {level}: {cpu:.1f} cpu ({cpu / result['total_cpu']:.0%})")
    print(f"  total: {result['total_cpu']:.1f} cpu = {result['cluster_fraction']:.0%} of the cluster")
    print(f"  C1 alone: {result['c1_cpu']:.1f} cpu = {result['c1_cluster_fraction']:.0%} of the cluster")

    # The workload fills ~70 % of the cluster and the critical slice fits
    # within the paper's 42 %-capacity breaking point.
    assert result["cluster_fraction"] == pytest.approx(0.70, abs=0.03)
    assert result["c1_cluster_fraction"] < 0.42
    # C1 is the single largest criticality bucket.
    assert result["per_level"]["C1"] == max(result["per_level"].values())
