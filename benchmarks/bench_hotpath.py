"""Hot-path microbenchmarks: rank, pack and diff — optimized vs. reference.

Measures each stage of the plan → pack → diff pipeline twice on identical
inputs: once with the optimized implementations and once with the naive
seed implementations retained in :mod:`repro.core.reference` (the "before"
column).  Because the reference *is* the seed algorithm, the before/after
ratio tracks the speedup over the seed even as the repository evolves.

Methodology: each stage is repeated ``repeats`` times on freshly prepared
inputs with the garbage collector paused, and the **minimum** is reported —
the standard way to suppress scheduler/GC noise in microbenchmarks.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--nodes 1000 5000] [--repeats 3]

or via pytest (used by CI as a smoke regression gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q -s

``benchmarks/save_baseline.py`` writes the results to ``BENCH_hotpath.json``
so future PRs can compare against the recorded trajectory.
"""

from __future__ import annotations

import argparse
import gc
import time

from repro import obs
from repro.adaptlab import (
    build_environment,
    generate_alibaba_applications,
    inject_capacity_failure,
)
from repro.core.objectives import RevenueObjective
from repro.core.packing import PackingHeuristic
from repro.core.planner import PhoenixPlanner, PriorityEstimator
from repro.core.reference import (
    ReferencePackingHeuristic,
    reference_diff,
    reference_rank,
)
from repro.core.scheduler import PhoenixScheduler

DEFAULT_NODE_COUNTS = (1000, 5000)
DEFAULT_REPEATS = 3
FAILURE_LEVEL = 0.5
N_APPS = 6
SEED = 2025


def _prepare(node_count: int):
    """One failed cluster state plus the per-app priority lists."""
    apps = generate_alibaba_applications(n_apps=N_APPS, seed=SEED)
    env = build_environment(
        node_count=node_count,
        applications=apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=SEED,
    )
    state = env.fresh_state()
    inject_capacity_failure(state, FAILURE_LEVEL, seed=0)
    estimator = PriorityEstimator()
    app_rank = {name: estimator.rank(app) for name, app in state.applications.items()}
    capacity = state.total_capacity().cpu
    return state, app_rank, capacity


def _best_of(repeats: int, fn, setup=None) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs, GC paused.

    ``setup`` (untimed) prepares a fresh argument for each run — e.g. the
    working-copy a pack run consumes — so fixed preparation costs do not
    dilute the measured stage.
    """
    best = float("inf")
    for _ in range(repeats):
        arg = setup() if setup is not None else None
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            fn(arg) if setup is not None else fn()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = min(best, elapsed)
    return best


def measure_hotpath(node_counts=DEFAULT_NODE_COUNTS, repeats=DEFAULT_REPEATS):
    """Rows of {nodes, stage, impl, seconds} for every stage x implementation."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if any(nodes < 1 for nodes in node_counts):
        raise ValueError("node counts must be >= 1")
    rows = []
    for node_count in node_counts:
        state, app_rank, capacity = _prepare(node_count)
        applications = state.applications
        objective = RevenueObjective()

        # -- rank ------------------------------------------------------------
        planner = PhoenixPlanner(RevenueObjective())
        rank_after = _best_of(
            repeats, lambda: planner._ranker.rank(applications, app_rank, capacity)
        )
        rank_before = _best_of(
            repeats, lambda: reference_rank(objective, applications, app_rank, capacity)
        )
        plan = planner.plan(state)

        # -- pack (the working copy is prepared outside the timed region) -----
        fresh_copy = lambda: state.copy(share_nodes=True)  # noqa: E731
        pack_after = _best_of(
            repeats, lambda working: PackingHeuristic().pack(working, plan), setup=fresh_copy
        )
        pack_before = _best_of(
            repeats, lambda working: ReferencePackingHeuristic().pack(working, plan), setup=fresh_copy
        )
        packing = PackingHeuristic().pack(state.copy(share_nodes=True), plan)

        # -- diff ------------------------------------------------------------
        diff_after = _best_of(repeats, lambda: PhoenixScheduler._diff(state, packing))
        diff_before = _best_of(repeats, lambda: reference_diff(state, packing))

        host = obs.host_block()
        for stage, before, after in (
            ("rank", rank_before, rank_after),
            ("pack", pack_before, pack_after),
            ("diff", diff_before, diff_after),
        ):
            rows.append({"nodes": node_count, "stage": stage, "impl": "before", "seconds": before, **host})
            rows.append({"nodes": node_count, "stage": stage, "impl": "after", "seconds": after, **host})
    return rows


def print_rows(rows) -> None:
    print("\n=== Hot-path stage timings (seconds, best-of-N; before = seed algorithms) ===")
    print(f"{'nodes':<9}{'stage':<8}{'before':>10}{'after':>10}{'speedup':>10}")
    node_counts = sorted({r["nodes"] for r in rows})
    total_before: dict[int, float] = {}
    total_after: dict[int, float] = {}
    for nodes in node_counts:
        for stage in ("rank", "pack", "diff"):
            before = next(r["seconds"] for r in rows if r["nodes"] == nodes and r["stage"] == stage and r["impl"] == "before")
            after = next(r["seconds"] for r in rows if r["nodes"] == nodes and r["stage"] == stage and r["impl"] == "after")
            total_before[nodes] = total_before.get(nodes, 0.0) + before
            total_after[nodes] = total_after.get(nodes, 0.0) + after
            print(f"{nodes:<9}{stage:<8}{before:>10.4f}{after:>10.4f}{before / after:>9.1f}x")
        print(
            f"{nodes:<9}{'TOTAL':<8}{total_before[nodes]:>10.4f}{total_after[nodes]:>10.4f}"
            f"{total_before[nodes] / total_after[nodes]:>9.1f}x"
        )


def main(argv=None) -> list[dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=list(DEFAULT_NODE_COUNTS))
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    args = parser.parse_args(argv)
    rows = measure_hotpath(node_counts=args.nodes, repeats=args.repeats)
    print_rows(rows)
    return rows


def test_hotpath_regression_gate():
    """Smoke gate: the optimized pipeline must not regress past the reference.

    A generous 1.2x noise margin keeps CI stable while still catching real
    regressions (the recorded baseline shows the pipeline >= 3x faster).
    """
    rows = measure_hotpath(node_counts=(1000,), repeats=2)
    print_rows(rows)
    before = sum(r["seconds"] for r in rows if r["impl"] == "before")
    after = sum(r["seconds"] for r in rows if r["impl"] == "after")
    assert after <= before * 1.2, f"hot path regressed: after={after:.4f}s before={before:.4f}s"


if __name__ == "__main__":
    main()
