"""Replay-throughput benchmark: incremental vs. full-recompute reconcile.

Measures end-to-end trace-replay throughput (steps/second, wall clock) for
the same Poisson-churn scenario driven through two engines that differ only
in ``EngineConfig.incremental``:

* **full** — the classic path: every reconcile copies the live state,
  rescans it for eviction and rebuilds the packing node index
  (O(cluster) per step);
* **incremental** — the delta-scaled path: a persistent scratch state and
  node index are realigned from the dirty set (O(churn) per step).

Both replays must produce byte-identical metrics JSONL — the benchmark
asserts it, so every run doubles as an equivalence check.  The trace's
event count is held roughly constant across cluster sizes (the MTBF scales
with the node count), so the speedup isolates per-step cost, not scenario
size.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replay.py [--nodes 1000 10000] \
        [--steps 120] [--save] [--json out.json]

or via pytest (CI perf-smoke gate: incremental >= 2x at 2k nodes)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replay.py -q -s

``--save`` records the rows into ``BENCH_replay.json`` at the repository
root (the committed trajectory the docs reference).
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from pathlib import Path

import repro.api as api
from repro import obs
from repro.adaptlab import build_environment
from repro.traces import generators
from repro.traces.replayer import TraceReplayer

DEFAULT_NODE_COUNTS = (1000, 10000, 100000)
#: Quick-gate configuration (CI perf-smoke): small cluster, generous ratio.
QUICK_NODES = 2000
QUICK_MIN_SPEEDUP = 2.0
DEFAULT_STEPS = 120
N_APPS = 8
ENV_SEED = 2025
TRACE_SEED = 7
REPLAY_SEED = 3


def _prepare(node_count: int, steps: int):
    """Environment plus a Poisson-churn trace with ~``steps`` events."""
    env = build_environment(node_count=node_count, n_apps=N_APPS, seed=ENV_SEED)
    horizon = 3600.0
    # Poisson event count ~= node_count * horizon / mtbf; solve for mtbf so
    # the trace length stays flat as the cluster grows.
    mtbf = node_count * horizon / max(1, steps)
    trace = generators.poisson_failures(
        node_count, horizon=horizon, mtbf=mtbf, mttr=300.0, seed=TRACE_SEED
    )
    return env, trace


def _replay(env, trace, incremental: bool) -> tuple[str, int, float]:
    """(metrics JSONL, steps, wall seconds) for one replay.

    Unlike the stage microbenchmarks, the collector stays *enabled*: this
    is an end-to-end throughput number, and the allocation churn of the
    full-recompute path (state copies, index rebuilds) is part of its real
    per-step cost.  A collection right before timing levels the start line.
    """
    engine = api.engine("revenue", incremental=incremental)
    replayer = TraceReplayer(engine, seed=REPLAY_SEED)
    state = env.fresh_state()
    gc.collect()
    started = time.perf_counter()
    metrics = replayer.run(state, trace)
    elapsed = time.perf_counter() - started
    return metrics.to_jsonl(), len(metrics), elapsed


def measure_replay(node_count: int, steps: int = DEFAULT_STEPS) -> dict:
    """One benchmark row: full vs. incremental replay on the same scenario."""
    env, trace = _prepare(node_count, steps)
    full_jsonl, n_steps, full_seconds = _replay(env, trace, incremental=False)
    inc_jsonl, inc_steps, inc_seconds = _replay(env, trace, incremental=True)
    if full_jsonl != inc_jsonl:  # equivalence is part of the benchmark contract
        raise AssertionError(
            f"incremental replay diverged from full recompute at {node_count} nodes"
        )
    row = {
        "nodes": node_count,
        "steps": n_steps,
        "events": len(trace.events),
        "full_steps_per_sec": round(n_steps / full_seconds, 2),
        "incremental_steps_per_sec": round(inc_steps / inc_seconds, 2),
        "speedup": round(full_seconds / inc_seconds, 2),
        "identical_output": True,
        **obs.host_block(),
    }
    if obs.enabled():
        # REPRO_OBS=1 runs report through the shared registry (counters
        # only: timing histograms are wall-clock and belong to the row).
        row["obs"] = obs.registry().snapshot(include_timing=False)["counters"]
    return row


def print_rows(rows: list[dict]) -> None:
    print("\n=== Trace replay throughput (steps/sec; identical output enforced) ===")
    print(f"{'nodes':<9}{'steps':>7}{'full':>12}{'incremental':>14}{'speedup':>10}")
    for row in rows:
        print(
            f"{row['nodes']:<9}{row['steps']:>7}{row['full_steps_per_sec']:>12.1f}"
            f"{row['incremental_steps_per_sec']:>14.1f}{row['speedup']:>9.2f}x"
        )


def main(argv=None) -> list[dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=list(DEFAULT_NODE_COUNTS))
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--quick", action="store_true", help="one small-cluster row only")
    parser.add_argument("--save", action="store_true", help="write BENCH_replay.json")
    parser.add_argument("--json", default=None, help="also write rows as JSON ('-' = stdout)")
    args = parser.parse_args(argv)
    node_counts = [QUICK_NODES] if args.quick else args.nodes
    steps = min(args.steps, 60) if args.quick else args.steps
    rows = [measure_replay(nodes, steps=steps) for nodes in node_counts]
    print_rows(rows)
    payload = json.dumps({"benchmark": "replay_throughput", "rows": rows}, indent=2) + "\n"
    if args.save:
        target = Path(__file__).resolve().parent.parent / "BENCH_replay.json"
        target.write_text(payload, encoding="utf-8")
        print(f"saved {target}")
    if args.json == "-":
        print(payload, end="")
    elif args.json:
        Path(args.json).write_text(payload, encoding="utf-8")
    return rows


def test_incremental_replay_speedup_quick():
    """CI gate: incremental replay >= 2x full recompute at 2k nodes.

    The 10k-node target in BENCH_replay.json is >= 5x; the CI gate is
    deliberately smaller-cluster and ratio-based so shared-runner noise
    cannot flake it.  One re-measure damps scheduler noise further.
    """
    row = measure_replay(QUICK_NODES, steps=60)
    if row["speedup"] < QUICK_MIN_SPEEDUP:
        row = measure_replay(QUICK_NODES, steps=60)
    print_rows([row])
    assert row["speedup"] >= QUICK_MIN_SPEEDUP, (
        f"incremental replay speedup {row['speedup']}x at {QUICK_NODES} nodes "
        f"is below the {QUICK_MIN_SPEEDUP}x gate"
    )


if __name__ == "__main__":
    main()
