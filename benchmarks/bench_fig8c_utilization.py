"""Figure 8(c): cluster utilization — Phoenix planner vs. scheduler vs. Default.

At each failure level we report (i) the utilization the Phoenix planner's
activation list would achieve if it packed perfectly (its activated CPU over
healthy capacity), (ii) the utilization actually realized after the Phoenix
scheduler's bin packing, and (iii) the utilization of the Default scheduler.
The paper's findings: the planner-to-scheduler loss is minimal and Phoenix
packs better than Default.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import DefaultScheme, PhoenixCostScheme, inject_capacity_failure
from repro.core.objectives import RevenueObjective
from repro.core.planner import PhoenixPlanner

FAILURE_LEVELS = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)


def measure_utilization(env, failure_levels=FAILURE_LEVELS, seed=0):
    planner = PhoenixPlanner(RevenueObjective())
    phoenix = PhoenixCostScheme()
    default = DefaultScheme()
    rows = []
    for level in failure_levels:
        state = env.fresh_state()
        inject_capacity_failure(state, level, seed=seed)
        capacity = state.total_capacity().cpu

        plan = planner.plan(state)
        planner_util = min(1.0, sum(e.cpu for e in plan.activated) / capacity) if capacity else 0.0

        phoenix_state, _ = phoenix.respond(state)
        default_state, _ = default.respond(state)
        rows.append(
            {
                "failure_level": level,
                "phoenix_planner": planner_util,
                "phoenix_scheduler": phoenix_state.utilization(),
                "default_scheduler": default_state.utilization(),
            }
        )
    return rows


@pytest.mark.benchmark(group="fig8c")
def test_fig8c_utilization_breakdown(benchmark, adaptlab_env):
    rows = benchmark.pedantic(measure_utilization, args=(adaptlab_env,), rounds=1, iterations=1)
    print("\n=== Figure 8(c): normalized cluster utilization ===")
    print(f"{'failed%':<10}{'planner':<12}{'scheduler':<12}{'default':<12}")
    for row in rows:
        print(
            f"{row['failure_level']*100:<10.0f}{row['phoenix_planner']:<12.3f}"
            f"{row['phoenix_scheduler']:<12.3f}{row['default_scheduler']:<12.3f}"
        )
    for row in rows:
        if row["failure_level"] < 0.05:
            continue
        # Phoenix's realized packing is at least as good as Default's (within
        # 1% — at near-full utilization the two coincide), and the
        # planner -> scheduler utilization loss stays small.
        assert row["phoenix_scheduler"] >= row["default_scheduler"] - 0.01
        assert row["phoenix_planner"] - row["phoenix_scheduler"] <= 0.15
