"""Tests for the AdaptLab environment builder, failure injection and metrics."""

import pytest

from repro.adaptlab import (
    build_environment,
    critical_service_availability,
    cluster_utilization,
    evaluate_state,
    fairness_deviation,
    inject_capacity_failure,
    normalized_revenue,
    requests_served_fraction,
    set_capacity_fraction,
)


class TestEnvironmentBuilder:
    def test_all_microservices_placed(self, small_environment):
        state = small_environment.state
        placed = len(state.assignments)
        total = sum(len(app) for app in state.applications.values())
        assert placed == total

    def test_initial_placement_respects_capacity(self, small_environment):
        state = small_environment.state
        for node in state.nodes.values():
            assert state.used_on(node.name).fits_within(node.capacity)

    def test_target_utilization_respected(self, small_environment):
        assert small_environment.state.utilization() == pytest.approx(0.7, abs=0.05)

    def test_node_capacity_fits_largest_microservice(self, small_environment):
        largest = max(
            ms.resources.cpu
            for app in small_environment.applications.values()
            for ms in app
        )
        assert small_environment.node_capacity >= largest

    def test_fresh_state_is_independent_copy(self, small_environment):
        fresh = small_environment.fresh_state()
        fresh.fail_nodes(["node-0"])
        assert small_environment.state.node("node-0").is_healthy

    def test_invalid_utilization_rejected(self, traced_apps):
        with pytest.raises(ValueError):
            build_environment(node_count=10, applications=traced_apps, target_utilization=0.0)

    def test_prices_drawn_from_levels(self, small_environment):
        prices = {app.price_per_unit for app in small_environment.applications.values()}
        assert prices <= {1.0, 2.0, 3.0, 4.0, 5.0}


class TestFailureInjection:
    def test_injection_reaches_target_fraction(self, small_environment):
        state = small_environment.fresh_state()
        inject_capacity_failure(state, 0.5, seed=1)
        total = state.total_capacity(healthy_only=False).cpu
        failed = sum(state.node(n.name).capacity.cpu for n in state.failed_nodes())
        assert failed / total == pytest.approx(0.5, abs=0.05)

    def test_zero_fraction_fails_nothing(self, small_environment):
        state = small_environment.fresh_state()
        assert inject_capacity_failure(state, 0.0) == []

    def test_invalid_fraction_rejected(self, small_environment):
        state = small_environment.fresh_state()
        with pytest.raises(ValueError):
            inject_capacity_failure(state, 1.5)

    def test_injection_is_deterministic_per_seed(self, small_environment):
        a = inject_capacity_failure(small_environment.fresh_state(), 0.3, seed=5)
        b = inject_capacity_failure(small_environment.fresh_state(), 0.3, seed=5)
        assert a == b

    def test_set_capacity_fraction_fails_and_recovers(self, small_environment):
        state = small_environment.fresh_state()
        set_capacity_fraction(state, 0.4, seed=2)
        assert state.total_capacity().cpu / state.total_capacity(healthy_only=False).cpu == pytest.approx(0.4, abs=0.05)
        set_capacity_fraction(state, 0.9, seed=2)
        assert state.total_capacity().cpu / state.total_capacity(healthy_only=False).cpu == pytest.approx(0.9, abs=0.05)


class TestMetrics:
    def test_availability_is_one_before_failure(self, small_environment):
        availability, per_app = critical_service_availability(small_environment.state)
        assert availability == 1.0
        assert all(per_app.values())

    def test_availability_drops_when_critical_microservice_down(self, small_environment):
        state = small_environment.fresh_state()
        # knock out the node hosting some C1 microservice
        app_name, app = next(iter(state.applications.items()))
        critical_ms = next(ms.name for ms in app if ms.criticality.level == 1)
        node = state.node_of(next(state.iter_replicas(app_name, critical_ms)))
        state.fail_nodes([node])
        availability, per_app = critical_service_availability(state)
        assert not per_app[app_name]
        assert availability < 1.0

    def test_revenue_normalized_to_one_pre_failure(self, small_environment):
        assert normalized_revenue(small_environment.state) == pytest.approx(1.0)

    def test_revenue_drops_with_failures(self, small_environment):
        state = small_environment.fresh_state()
        inject_capacity_failure(state, 0.6, seed=3)
        assert normalized_revenue(state, small_environment.state) < 1.0

    def test_fairness_deviation_zero_when_everything_active(self, small_environment):
        # pre-failure every app gets its full demand, which is its fair share
        deviation = fairness_deviation(small_environment.state)
        assert deviation.positive == pytest.approx(0.0, abs=1e-6)
        assert deviation.negative == pytest.approx(0.0, abs=1e-6)
        assert deviation.total == pytest.approx(0.0, abs=1e-6)

    def test_utilization_between_zero_and_one(self, small_environment):
        assert 0.0 < cluster_utilization(small_environment.state) <= 1.0

    def test_requests_served_full_before_failure(self, small_environment):
        fraction = requests_served_fraction(small_environment.state, small_environment.traced)
        assert fraction == pytest.approx(1.0)

    def test_requests_served_drops_after_unmitigated_failure(self, small_environment):
        state = small_environment.fresh_state()
        inject_capacity_failure(state, 0.7, seed=9)
        fraction = requests_served_fraction(state, small_environment.traced)
        assert fraction < 1.0

    def test_evaluate_state_bundle(self, small_environment):
        metrics = evaluate_state(
            small_environment.state,
            reference=small_environment.state,
            traced=small_environment.traced,
            planning_seconds=1.23,
        )
        assert metrics.critical_service_availability == 1.0
        assert metrics.normalized_revenue == pytest.approx(1.0)
        assert metrics.requests_served_fraction == pytest.approx(1.0)
        assert metrics.planning_seconds == 1.23
        assert set(metrics.per_app_availability) == set(small_environment.applications)
