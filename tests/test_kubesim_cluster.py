"""End-to-end tests for KubeCluster and the Phoenix backend adapter."""

import pytest

from repro.cluster import Application, Resources
from repro.core import PhoenixController, RevenueObjective
from repro.kubesim import KubeCluster, KubeClusterConfig, PhoenixKubeBackend
from repro.kubesim.cluster import criticality_to_priority

from tests.conftest import make_microservice


def small_app(name="web-app"):
    return Application.from_microservices(
        name,
        [
            make_microservice("frontend", 2, 2, 1),
            make_microservice("backend", 2, 2, 1),
            make_microservice("extras", 2, 2, 5),
        ],
        dependency_edges=[("frontend", "backend"), ("frontend", "extras")],
        price_per_unit=2.0,
        critical_service="backend",
    )


@pytest.fixture
def cluster():
    return KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 4)))


class TestPriorityMapping:
    def test_more_critical_means_higher_priority(self):
        assert criticality_to_priority(1) > criticality_to_priority(5) > criticality_to_priority(10)

    def test_priority_never_negative(self):
        assert criticality_to_priority(99) == 0


class TestDeployment:
    def test_deploy_creates_namespace_and_deployments(self, cluster):
        cluster.deploy_application(small_app())
        assert cluster.api.get_namespace("web-app").phoenix_enabled
        assert len(cluster.api.list_deployments(namespace="web-app")) == 3

    def test_step_schedules_and_starts_pods(self, cluster):
        cluster.deploy_application(small_app())
        cluster.step(60)
        assert cluster.serving_microservices("web-app") == {"frontend", "backend", "extras"}

    def test_step_rejects_negative_time(self, cluster):
        with pytest.raises(ValueError):
            cluster.step(-5)

    def test_non_phoenix_namespace(self, cluster):
        cluster.deploy_application(small_app("legacy"), phoenix_enabled=False)
        assert not cluster.api.get_namespace("legacy").phoenix_enabled


class TestFailureLifecycle:
    def test_kubelet_stop_marks_node_not_ready(self, cluster):
        cluster.deploy_application(small_app())
        cluster.step(30)
        cluster.fail_nodes(["node-0"])
        cluster.step(120)
        assert "node-0" not in cluster.ready_nodes()

    def test_recovery_brings_node_back(self, cluster):
        cluster.fail_nodes(["node-0"])
        cluster.step(120)
        cluster.recover_nodes(["node-0"])
        cluster.step(60)
        assert "node-0" in cluster.ready_nodes()

    def test_default_self_healing_when_capacity_allows(self, cluster):
        cluster.deploy_application(small_app())
        cluster.step(60)
        cluster.fail_nodes(["node-0"])
        cluster.step(300)  # eviction + deployment controller + scheduler
        assert cluster.serving_microservices("web-app") == {"frontend", "backend", "extras"}


class TestClusterStateSnapshot:
    def test_snapshot_reflects_running_pods(self, cluster):
        cluster.deploy_application(small_app())
        cluster.step(60)
        state = cluster.to_cluster_state()
        assert len(state.nodes) == 3
        active = state.active_microservices()["web-app"]
        assert active == {"frontend", "backend", "extras"}

    def test_snapshot_marks_failed_nodes(self, cluster):
        cluster.deploy_application(small_app())
        cluster.step(30)
        cluster.fail_nodes(["node-1"])
        cluster.step(120)
        state = cluster.to_cluster_state()
        assert state.node("node-1").failed


class TestPhoenixIntegration:
    def test_phoenix_degrades_noncritical_under_crunch(self):
        # Capacity for all three microservices needs 6 cpu; after failing two
        # of three 4-cpu nodes only 4 cpu remain, so Phoenix must shut the C5
        # container down to keep both C1 containers running.
        cluster = KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 4)))
        cluster.deploy_application(small_app())
        cluster.step(60)
        backend = PhoenixKubeBackend(cluster)
        controller = PhoenixController(backend, RevenueObjective())
        controller.reconcile()  # learn steady state
        cluster.fail_nodes(["node-0", "node-1"])
        cluster.step(150)       # detection + eviction
        report = controller.reconcile()
        assert report.triggered
        cluster.step(60)
        serving = cluster.serving_microservices("web-app")
        assert {"frontend", "backend"} <= serving
        assert "extras" not in serving

    def test_phoenix_restores_noncritical_after_recovery(self):
        cluster = KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 4)))
        cluster.deploy_application(small_app())
        cluster.step(60)
        backend = PhoenixKubeBackend(cluster)
        controller = PhoenixController(backend, RevenueObjective())
        controller.reconcile()
        cluster.fail_nodes(["node-0", "node-1"])
        cluster.step(150)
        controller.reconcile()
        cluster.step(60)
        cluster.recover_nodes(["node-0", "node-1"])
        cluster.step(120)
        controller.reconcile()
        cluster.step(60)
        assert cluster.serving_microservices("web-app") == {"frontend", "backend", "extras"}

    def test_backend_delete_action_scales_deployment_to_zero(self):
        from repro.cluster.state import ReplicaId
        from repro.core.plan import Action, ActionKind

        cluster = KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 4)))
        cluster.deploy_application(small_app())
        cluster.step(60)
        backend = PhoenixKubeBackend(cluster)
        extras_pod = cluster.pods_of("web-app", "extras")[0]
        backend.execute(
            [Action(ActionKind.DELETE, ReplicaId("web-app", "extras", 0), source_node=extras_pod.node_name)]
        )
        # the deleted non-critical deployment must be scaled to zero so the
        # deployment controller does not recreate it.
        assert cluster.api.get_deployment("web-app", "extras").replicas == 0
        cluster.step(120)
        assert "extras" not in cluster.serving_microservices("web-app")

    def test_backend_start_action_creates_bound_pod(self):
        from repro.cluster.state import ReplicaId
        from repro.core.plan import Action, ActionKind

        cluster = KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 4)))
        cluster.deploy_application(small_app())
        backend = PhoenixKubeBackend(cluster)
        backend.execute(
            [Action(ActionKind.START, ReplicaId("web-app", "frontend", 0), target_node="node-1")]
        )
        pods = cluster.pods_of("web-app", "frontend")
        assert any(p.node_name == "node-1" for p in pods)
