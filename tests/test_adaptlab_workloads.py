"""Tests for AdaptLab workload generation: dependency graphs, resources,
tagging and the Appendix-G coverage optimization."""

import networkx as nx
import pytest

from repro.adaptlab import (
    ResourceModel,
    TaggingScheme,
    assign_resources,
    generate_alibaba_applications,
    greedy_coverage_curve,
    max_coverage_with_budget,
    minimal_microservices_for_coverage,
    tag_application,
    tag_applications,
)
from repro.adaptlab.resources import cpm_resources, long_tailed_resources, total_demand
from repro.criticality import CriticalityTag


class TestDependencyGraphGeneration:
    def test_generates_requested_number_of_apps(self, traced_apps):
        assert len(traced_apps) == 5

    def test_deterministic_for_same_seed(self):
        a = generate_alibaba_applications(n_apps=3, seed=42)
        b = generate_alibaba_applications(n_apps=3, seed=42)
        assert [x.size for x in a] == [y.size for y in b]
        assert [x.total_requests for x in a] == pytest.approx([y.total_requests for y in b])

    def test_different_seeds_differ(self):
        a = generate_alibaba_applications(n_apps=3, seed=1)
        b = generate_alibaba_applications(n_apps=3, seed=2)
        assert [x.total_requests for x in a] != [y.total_requests for y in b]

    def test_sizes_are_heavy_tailed(self):
        apps = generate_alibaba_applications(n_apps=18, seed=5)
        sizes = sorted((a.size for a in apps), reverse=True)
        assert sizes[0] >= 2000        # largest app has thousands of microservices
        assert sizes[-1] <= 50         # smallest apps have dozens
        assert all(10 <= s <= 3200 for s in sizes)

    def test_request_volume_skewed_to_top_apps(self):
        apps = generate_alibaba_applications(n_apps=18, seed=5)
        volumes = sorted((a.total_requests for a in apps), reverse=True)
        assert sum(volumes[:4]) / sum(volumes) > 0.7

    def test_graphs_are_dags_rooted_at_entry(self, traced_apps):
        for app in traced_apps:
            assert nx.is_directed_acyclic_graph(app.graph)
            roots = [n for n in app.graph.nodes if app.graph.in_degree(n) == 0]
            assert len(roots) == 1

    def test_single_upstream_fraction_in_paper_range(self):
        apps = generate_alibaba_applications(n_apps=18, seed=5)
        from repro.adaptlab import single_upstream_fraction

        fraction = single_upstream_fraction(apps)
        assert 0.7 <= fraction <= 0.9

    def test_call_graphs_are_subsets_of_the_graph(self, traced_apps):
        for app in traced_apps:
            nodes = set(app.graph.nodes)
            for cg in app.call_graphs:
                assert set(cg.microservices) <= nodes

    def test_call_graphs_are_mostly_small(self, traced_apps):
        biggest = max(traced_apps, key=lambda a: a.size)
        total = biggest.total_requests
        small = sum(cg.requests for cg in biggest.call_graphs if len(cg) <= 10)
        assert small / total > 0.6

    def test_invocation_counts_cover_called_microservices(self, traced_apps):
        app = traced_apps[0]
        counts = app.invocation_counts()
        assert counts[app.entry_point()] == pytest.approx(app.total_requests)

    def test_invalid_app_count_rejected(self):
        with pytest.raises(ValueError):
            generate_alibaba_applications(n_apps=0)


class TestResourceModels:
    def test_cpm_resources_track_popularity(self, traced_apps):
        app = traced_apps[0]
        resources = cpm_resources(app)
        counts = app.invocation_counts()
        most_popular = max(counts, key=counts.get)
        least_popular = min(counts, key=counts.get)
        assert resources[most_popular] >= resources[least_popular]

    def test_cpm_minimum_enforced(self, traced_apps):
        resources = cpm_resources(traced_apps[0], min_cpu=0.25)
        assert min(resources.values()) >= 0.25

    def test_long_tailed_resources_capped(self, traced_apps):
        resources = long_tailed_resources(traced_apps[0], cap_cpu=4.0)
        assert max(resources.values()) <= 4.0
        assert min(resources.values()) > 0

    def test_long_tailed_is_deterministic_per_seed(self, traced_apps):
        a = long_tailed_resources(traced_apps[0], seed=9)
        b = long_tailed_resources(traced_apps[0], seed=9)
        assert a == b

    def test_assign_resources_covers_all_microservices(self, traced_apps):
        for model in (ResourceModel.CPM, ResourceModel.LONG_TAILED):
            assignment = assign_resources(traced_apps, model=model)
            for app in traced_apps:
                assert set(assignment[app.name]) == set(app.microservices())

    def test_model_parse(self):
        assert ResourceModel.parse("cpm") is ResourceModel.CPM
        assert ResourceModel.parse("long-tailed") is ResourceModel.LONG_TAILED
        with pytest.raises(ValueError):
            ResourceModel.parse("nonsense")

    def test_total_demand_positive(self, traced_apps):
        assignment = assign_resources(traced_apps, model="cpm")
        assert total_demand(assignment) > 0


class TestCoverageOptimization:
    def test_greedy_curve_is_monotone(self, traced_apps):
        curve = greedy_coverage_curve(traced_apps[0])
        coverages = [c for _, c in curve]
        assert all(b >= a - 1e-9 for a, b in zip(coverages, coverages[1:]))
        assert coverages[-1] == pytest.approx(1.0)

    def test_small_fraction_serves_most_requests(self):
        apps = generate_alibaba_applications(n_apps=4, seed=11)
        big = max(apps, key=lambda a: a.size)
        budget = max(1, int(0.05 * big.size))
        selection = max_coverage_with_budget(big, budget)
        assert selection.coverage > 0.5

    def test_minimal_set_reaches_target_coverage(self, traced_apps):
        selection = minimal_microservices_for_coverage(traced_apps[1], 0.8)
        assert selection.coverage >= 0.8
        assert len(selection.microservices) < traced_apps[1].size

    def test_ilp_matches_or_beats_greedy_on_small_instance(self):
        apps = generate_alibaba_applications(n_apps=6, seed=3, templates_per_app=10)
        small = min(apps, key=lambda a: a.size)
        greedy = minimal_microservices_for_coverage(small, 0.7, method="greedy")
        exact = minimal_microservices_for_coverage(small, 0.7, method="ilp")
        assert exact.coverage >= 0.7 - 1e-9
        assert len(exact.microservices) <= len(greedy.microservices)

    def test_budget_validation(self, traced_apps):
        with pytest.raises(ValueError):
            max_coverage_with_budget(traced_apps[0], -1)
        with pytest.raises(ValueError):
            minimal_microservices_for_coverage(traced_apps[0], 1.5)


class TestTagging:
    @pytest.mark.parametrize("scheme", list(TaggingScheme))
    def test_every_microservice_tagged(self, traced_apps, scheme):
        app = traced_apps[2]
        tags = tag_application(app, scheme)
        assert set(tags) == set(app.microservices())
        assert all(isinstance(t, CriticalityTag) for t in tags.values())

    def test_p90_tags_more_critical_than_p50(self, traced_apps):
        app = traced_apps[0]
        p50 = tag_application(app, TaggingScheme.SERVICE_P50)
        p90 = tag_application(app, TaggingScheme.SERVICE_P90)
        c1_p50 = sum(1 for t in p50.values() if t.level == 1)
        c1_p90 = sum(1 for t in p90.values() if t.level == 1)
        assert c1_p90 >= c1_p50

    def test_critical_set_is_a_minority(self, traced_apps):
        app = max(traced_apps, key=lambda a: a.size)
        tags = tag_application(app, TaggingScheme.FREQUENCY_P90)
        c1 = sum(1 for t in tags.values() if t.level == 1)
        assert c1 < 0.5 * app.size

    def test_frequent_microservices_get_higher_criticality(self, traced_apps):
        app = traced_apps[0]
        tags = tag_application(app, TaggingScheme.SERVICE_P50)
        counts = app.invocation_counts()
        # entry point is touched by every request: it must be C1
        assert tags[app.entry_point()].level == 1
        del counts

    def test_tag_applications_returns_all_apps(self, traced_apps):
        tags = tag_applications(traced_apps, TaggingScheme.SERVICE_P90)
        assert set(tags) == {a.name for a in traced_apps}

    def test_scheme_parse(self):
        assert TaggingScheme.parse("service-p90") is TaggingScheme.SERVICE_P90
        assert TaggingScheme.parse(TaggingScheme.FREQUENCY_P50) is TaggingScheme.FREQUENCY_P50
        with pytest.raises(ValueError):
            TaggingScheme.parse("bogus")

    def test_scheme_properties(self):
        assert TaggingScheme.SERVICE_P50.percentile == 0.5
        assert TaggingScheme.FREQUENCY_P90.percentile == 0.9
        assert TaggingScheme.SERVICE_P50.is_service_level
        assert not TaggingScheme.FREQUENCY_P90.is_service_level
