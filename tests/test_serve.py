"""Tests for the serve layer: protocols, admission, determinism, back-pressure.

The heart of the file is the determinism gate: N concurrent clients
submitting a fixed mutation set produce a fleet state (canonical digest),
a recorded trace, and step records that are byte-identical to a serial
offline replay of that trace — the serve layer's core contract.  Around
it: unit tests for the hand-rolled HTTP/1.1 and WebSocket framing, the
admission batcher's canonical ordering and 429 back-pressure, the
EventBus's concurrent-subscription safety, and the public ``summary()``
snapshots' field stability.
"""

from __future__ import annotations

import asyncio
import json
import pickle
import threading

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import PhoenixEngine
from repro.api.events import EventBus, FailureDetected
from repro.fleet import FleetReplayer
from repro.serve import (
    AdmissionBatcher,
    AdmissionFull,
    ControlPlane,
    HttpConnection,
    ServeCrash,
    WalError,
    WebSocketClient,
    WriteAheadLog,
    build_fleet,
    canonical_key,
    fleet_digest,
    resume_control_plane,
)
from repro.serve.http1 import HttpError, read_request, render_response
from repro.serve.websocket import (
    OP_BINARY,
    WebSocketError,
    accept_key,
    encode_frame,
    read_frame,
    text_frame,
)
from repro.traces.schema import Trace, TraceError, parse_event

FLEET_PARAMS = dict(cells=2, nodes_per_cell=12, apps=2)


def build_plane(**overrides) -> ControlPlane:
    fleet = build_fleet(**FLEET_PARAMS)
    return ControlPlane(fleet, fleet_params=FLEET_PARAMS, **overrides)


def mutation(cell: str, kind: str, **fields) -> dict:
    return {"cell": cell, "event": {"record": "event", "kind": kind, **fields}}


async def post(conn: HttpConnection, payload) -> tuple[int, dict, dict]:
    status, headers, body = await conn.request(
        "POST", "/mutations", body=json.dumps(payload)
    )
    return status, headers, json.loads(body)


# -- HTTP/1.1 parsing ----------------------------------------------------------


def parse_bytes(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestHttp1:
    def test_parses_request_line_headers_and_body(self):
        request = parse_bytes(
            b"POST /mutations?a=1&b=x%20y HTTP/1.1\r\n"
            b"Host: h\r\nContent-Length: 4\r\nX-Thing: v\r\n\r\nbody"
        )
        assert request.method == "POST"
        assert request.path == "/mutations"
        assert request.query == {"a": "1", "b": "x y"}
        assert request.headers["x-thing"] == "v"
        assert request.body == b"body"
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpError) as err:
            parse_bytes(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_bad_content_length_raises_400(self):
        with pytest.raises(HttpError) as err:
            parse_bytes(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_connection_close_disables_keep_alive(self):
        request = parse_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_render_response_roundtrips_status_and_body(self):
        raw = render_response(429, b'{"e":1}', headers={"Retry-After": "1.0"})
        text = raw.decode("latin-1")
        assert text.startswith("HTTP/1.1 429 Too Many Requests\r\n")
        assert "Retry-After: 1.0" in text
        assert text.endswith('{"e":1}')


# -- WebSocket framing ---------------------------------------------------------


class TestWebSocketFraming:
    def test_accept_key_matches_rfc6455_example(self):
        assert (
            accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536])
    @pytest.mark.parametrize("mask", [False, True])
    def test_frame_roundtrip_all_length_encodings(self, size, mask):
        payload = bytes(range(256)) * (size // 256) + bytes(range(size % 256))

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(OP_BINARY, payload, mask=mask))
            return await read_frame(reader, require_mask=mask)

        opcode, decoded = asyncio.run(run())
        assert opcode == OP_BINARY
        assert decoded == payload

    def test_unmasked_client_frame_rejected(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(text_frame("x", mask=False))
            return await read_frame(reader, require_mask=True)

        with pytest.raises(WebSocketError):
            asyncio.run(run())


# -- parse_event (schema v1 single records) ------------------------------------


class TestParseEvent:
    def test_parses_and_validates(self):
        event = parse_event(
            {"record": "event", "kind": "node_failure", "time": 3.0, "nodes": ["n1"]}
        )
        assert event.kind == "node_failure"
        assert event.nodes == ("n1",)

    def test_default_time_fills_missing_time(self):
        event = parse_event(
            {"record": "event", "kind": "load_change", "multiplier": 2.0, "app": None},
            default_time=7.0,
        )
        assert event.time == 7.0

    def test_missing_time_without_default_raises(self):
        with pytest.raises(TraceError):
            parse_event({"record": "event", "kind": "node_failure", "nodes": ["n1"]})

    def test_unknown_kind_raises(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            parse_event({"record": "event", "kind": "meteor", "time": 0.0})

    def test_unknown_event_version_raises(self):
        with pytest.raises(TraceError, match="unsupported event version"):
            parse_event(
                {"record": "event", "kind": "node_failure", "time": 0.0,
                 "nodes": ["n1"], "version": 99}
            )


# -- EventBus concurrency (satellite: emission-safe subscribe/unsubscribe) -----


class TestEventBusConcurrency:
    def test_emit_with_concurrent_subscribe_unsubscribe(self):
        """Threaded fuzz: emits never crash or miss registered handlers."""
        bus = EventBus()
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                while not stop.is_set():
                    cancels = [bus.subscribe(lambda e: None) for _ in range(5)]
                    for cancel in cancels:
                        cancel()
            except BaseException as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        seen = []
        bus.subscribe(seen.append)
        try:
            for index in range(2000):
                bus.emit(FailureDetected(nodes=(f"n{index}",)))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(seen) == 2000

    def test_unsubscribe_during_emit_takes_effect_next_emit(self):
        bus = EventBus()
        calls = []
        cancel = bus.subscribe(lambda e: calls.append(e))
        bus.emit(FailureDetected(nodes=("a",)))
        cancel()
        bus.emit(FailureDetected(nodes=("b",)))
        assert len(calls) == 1

    def test_duplicate_handler_unsubscribes_one_registration(self):
        bus = EventBus()
        calls = []
        handler = calls.append
        first = bus.subscribe(handler)
        bus.subscribe(handler)
        first()
        bus.emit(FailureDetected(nodes=("a",)))
        assert len(calls) == 1


# -- public summary() snapshots (satellite) ------------------------------------

SUMMARY_FIELDS = {
    "record",
    "cell",
    "triggered",
    "failed_nodes",
    "recovered_nodes",
    "actions",
    "failed_count",
    "capacity_cpu",
    "healthy_cpu",
    "healthy_mem",
    "used_cpu",
    "used_mem",
    "free_cpu",
    "free_mem",
    "revenue",
    "reference_revenue",
    "app_count",
    "missing_critical",
    "degraded",
}


class TestSummarySnapshots:
    def test_fleet_summary_shape_and_pickle(self):
        fleet = build_fleet(**FLEET_PARAMS)
        try:
            summary = fleet.summary()
            assert set(summary) == set(fleet.cell_names)
            for name, cell_summary in summary.items():
                record = cell_summary.to_record()
                assert set(record) == SUMMARY_FIELDS
                assert record["record"] == "cell-summary"
                assert record["cell"] == name
                clone = pickle.loads(pickle.dumps(cell_summary))
                assert clone.to_record() == record
                json.dumps(record)  # JSON-able end to end
        finally:
            fleet.close()

    def test_engine_summary_matches_backend_state(self):
        from repro.adaptlab import build_environment

        env = build_environment(node_count=10, n_apps=2, seed=4)
        state = env.fresh_state()
        engine = PhoenixEngine(EngineConfig())
        engine.reconcile(state, force=True)
        summary = engine.summary(state, name="solo")
        record = summary.to_record()
        assert set(record) == SUMMARY_FIELDS
        assert record["cell"] == "solo"
        assert record["failed_count"] == 0
        assert record["capacity_cpu"] > 0


# -- admission batcher ---------------------------------------------------------


class TestAdmissionBatcher:
    def test_batch_order_is_canonical_regardless_of_submit_order(self):
        async def run(order):
            batcher = AdmissionBatcher()
            for cell, record in order:
                batcher.submit(cell, object(), record)
            batch = await batcher.next_batch()
            return [m.key for m in batch]

        records = [
            ("cell-1", {"kind": "node_failure", "nodes": ["b"]}),
            ("cell-0", {"kind": "node_failure", "nodes": ["z"]}),
            ("cell-0", {"kind": "node_failure", "nodes": ["a"]}),
        ]
        forward = asyncio.run(run(records))
        backward = asyncio.run(run(list(reversed(records))))
        assert forward == backward == sorted(
            canonical_key(cell, record) for cell, record in records
        )

    def test_queue_limit_rejects_with_retry_after(self):
        async def run():
            batcher = AdmissionBatcher(queue_limit=2, retry_after=3.5)
            batcher.submit("c", object(), {"i": 0})
            batcher.submit("c", object(), {"i": 1})
            with pytest.raises(AdmissionFull) as err:
                batcher.submit("c", object(), {"i": 2})
            assert err.value.retry_after == 3.5
            assert batcher.rejected == 1
            assert len(batcher) == 2

        asyncio.run(run())

    def test_close_wakes_driver_with_empty_batch(self):
        async def run():
            batcher = AdmissionBatcher()
            waiter = asyncio.ensure_future(batcher.next_batch())
            await asyncio.sleep(0)
            batcher.close()
            assert await waiter == []
            with pytest.raises(RuntimeError):
                batcher.submit("c", object(), {})

        asyncio.run(run())


# -- the served control plane --------------------------------------------------


class TestControlPlane:
    def test_mutations_queries_and_trace_roundtrip(self):
        async def run():
            plane = build_plane()
            host, port = await plane.start()
            try:
                async with HttpConnection(host, port) as conn:
                    health = await conn.get_json("/healthz")
                    assert health["status"] == "ok"
                    config = await conn.get_json("/config")
                    assert config["fleet"] == FLEET_PARAMS
                    assert config["cells"] == ["cell-0", "cell-1"]

                    status, _, result = await post(
                        conn, mutation("cell-0", "node_failure", nodes=["node-0", "node-1"])
                    )
                    assert status == 200
                    assert result["round"] == 0
                    assert result["step"]["failed_nodes"] == 2

                    status, _, result = await post(
                        conn, mutation("cell-0", "node_recovery", nodes=["node-0", "node-1"])
                    )
                    assert status == 200
                    assert result["round"] == 1

                    cells = await conn.get_json("/cells")
                    assert {c["cell"] for c in cells["cells"]} == {"cell-0", "cell-1"}
                    nodes = await conn.get_json("/cells/cell-1/nodes")
                    assert len(nodes["nodes"]) == FLEET_PARAMS["nodes_per_cell"]
                    metrics = await conn.get_json("/metrics")
                    assert metrics["admitted"] == 2
                    assert metrics["rounds"] == 2

                    trace = await conn.get_json("/trace")
                    recorded = Trace.loads(trace["cells"]["cell-0"])
                    assert [e.kind for e in recorded] == ["node_failure", "node_recovery"]
                    assert [e.time for e in recorded] == [0.0, 1.0]
            finally:
                await plane.shutdown()

        asyncio.run(run())

    def test_error_paths(self):
        async def run():
            plane = build_plane()
            host, port = await plane.start()
            try:
                async with HttpConnection(host, port) as conn:
                    status, _, body = await conn.request("GET", "/nope")
                    assert status == 404
                    status, _, body = await conn.request("DELETE", "/cells")
                    assert status == 405
                    status, _, body = await post(conn, {"cell": "mars", "event": {}})
                    assert status == 400
                    status, _, body = await post(
                        conn,
                        {"cell": "cell-0", "event": {"record": "event", "kind": "meteor"}},
                    )
                    assert status == 400
                    assert "unknown event kind" in body["error"]
                    status, _, _ = await conn.request("GET", "/cells/unknown")
                    assert status == 404
            finally:
                await plane.shutdown()

        asyncio.run(run())

    def test_back_pressure_answers_429_with_retry_after(self):
        async def run():
            plane = build_plane(queue_limit=1, retry_after=2.0)
            host, port = await plane.start()
            try:
                # Park the driver behind one slow-ish round, then overfill the
                # queue within a single event-loop tick so the second submit
                # sees it at capacity.
                loop = asyncio.get_running_loop()
                event = parse_event(
                    {"record": "event", "kind": "node_failure", "nodes": ["node-2"]},
                    default_time=0.0,
                )
                recovery = parse_event(
                    {"record": "event", "kind": "node_recovery", "nodes": ["node-2"]},
                    default_time=0.0,
                )
                first = plane.batcher.submit("cell-0", event, {"k": 1})
                with pytest.raises(AdmissionFull):
                    plane.batcher.submit("cell-0", recovery, {"k": 2})
                await first

                # The HTTP surface maps the same condition to 429 + Retry-After.
                plane.batcher.submit("cell-0", recovery, {"k": 3})  # refill
                async with HttpConnection(host, port) as conn:
                    status, headers, body = await post(
                        conn, mutation("cell-1", "node_failure", nodes=["node-3"])
                    )
                    if status == 429:  # race: driver may drain first
                        assert headers["retry-after"] == "2.0"
                        assert "full" in body["error"]
                metrics_conn = HttpConnection(host, port)
                metrics = await metrics_conn.get_json("/metrics")
                await metrics_conn.close()
                assert metrics["rejected"] >= 1
                assert loop is asyncio.get_running_loop()
            finally:
                await plane.shutdown()

        asyncio.run(run())

    def test_websocket_streams_typed_events(self):
        async def run():
            plane = build_plane()
            host, port = await plane.start()
            try:
                async with WebSocketClient(host, port) as ws:
                    hello = json.loads(await ws.recv_text(timeout=5))
                    assert hello["event"] == "Hello"
                    assert len(hello["cells"]) == 2
                    async with HttpConnection(host, port) as conn:
                        await post(
                            conn, mutation("cell-0", "node_failure", nodes=["node-4"])
                        )
                    records = []
                    while not any(r["event"] == "RoundCommitted" for r in records):
                        message = await ws.recv_text(timeout=5)
                        assert message is not None
                        records.append(json.loads(message))
                    kinds = [r["event"] for r in records]
                    assert "FailureDetected" in kinds
                    detected = records[kinds.index("FailureDetected")]
                    assert detected["cell"] == "cell-0"  # cell-tagged, flattened
                    assert detected["nodes"] == ["node-4"]
                    assert "CellReconciled" in kinds
            finally:
                await plane.shutdown()

        asyncio.run(run())

    def test_dashboard_served_at_root(self):
        async def run():
            plane = build_plane()
            host, port = await plane.start()
            try:
                async with HttpConnection(host, port) as conn:
                    status, headers, body = await conn.request("GET", "/")
                    assert status == 200
                    assert headers["content-type"].startswith("text/html")
                    assert b"repro serve" in body
                    assert b"/ws" in body
            finally:
                await plane.shutdown()

        asyncio.run(run())


# -- the determinism gate ------------------------------------------------------


class TestDeterminismGate:
    """N concurrent clients == serial offline replay, byte for byte."""

    MUTATIONS = [
        mutation("cell-0", "node_failure", nodes=["node-0", "node-3"]),
        mutation("cell-1", "node_failure", nodes=["node-5"]),
        mutation("cell-0", "load_change", multiplier=1.5, app=None),
        mutation("cell-0", "node_recovery", nodes=["node-0"]),
        mutation("cell-1", "node_recovery", nodes=["node-5"]),
        mutation("cell-0", "node_recovery", nodes=["node-3"]),
        mutation("cell-1", "capacity", available_fraction=0.8),
        mutation("cell-1", "capacity", available_fraction=1.0),
    ]

    async def _serve_fixed_set(self, clients: int) -> tuple[str, dict, list]:
        """Serve MUTATIONS split across ``clients`` concurrent connections."""
        plane = build_plane()
        host, port = await plane.start()
        try:
            async def submit(shard: list) -> None:
                async with HttpConnection(host, port) as conn:
                    for payload in shard:
                        status, _, _ = await post(conn, payload)
                        assert status == 200

            shards = [self.MUTATIONS[i::clients] for i in range(clients)]
            await asyncio.gather(*[submit(shard) for shard in shards if shard])
            async with HttpConnection(host, port) as conn:
                digest = await conn.get_json("/digest")
                trace = await conn.get_json("/trace")
                steps = await conn.get_json("/steps")
            return digest["digest"], trace["cells"], steps["steps"]
        finally:
            await plane.shutdown()

    def test_concurrent_clients_equal_offline_replay(self):
        digest, traces, steps = asyncio.run(self._serve_fixed_set(clients=4))

        scenario = {cell: Trace.loads(text) for cell, text in traces.items()}
        fleet = build_fleet(**FLEET_PARAMS)
        try:
            metrics = FleetReplayer(fleet, seed=0, workers=1).run(scenario)
            offline_steps = [step.to_record() for step in metrics.steps]
            assert fleet_digest(fleet) == digest
        finally:
            fleet.close()
        assert json.dumps(steps, sort_keys=True) == json.dumps(
            offline_steps, sort_keys=True
        )

    @pytest.mark.parametrize("clients", [1, 3])
    def test_every_session_equals_its_offline_replay(self, clients):
        """The contract holds for any client count, not just the fan-out case.

        Round *boundaries* may differ between client counts (a lone client
        gets one round per submit, concurrent submits coalesce) — what is
        invariant is that each session's recorded trace replays to the
        session's exact end state and step records.
        """
        digest, traces, steps = asyncio.run(self._serve_fixed_set(clients=clients))
        if clients == 1:
            assert len(steps) == len(self.MUTATIONS)  # one round per submit
        scenario = {cell: Trace.loads(text) for cell, text in traces.items()}
        fleet = build_fleet(**FLEET_PARAMS)
        try:
            metrics = FleetReplayer(fleet, seed=0, workers=1).run(scenario)
            assert fleet_digest(fleet) == digest
            assert [step.to_record() for step in metrics.steps] == steps
        finally:
            fleet.close()


# -- write-ahead journal + crash recovery --------------------------------------

#: A fixed serial workload: one round per mutation (single client).
WAL_MUTATIONS = [
    mutation("cell-0", "node_failure", nodes=["node-0", "node-3"]),
    mutation("cell-1", "node_failure", nodes=["node-5"]),
    mutation("cell-0", "node_recovery", nodes=["node-0"]),
    mutation("cell-1", "node_recovery", nodes=["node-5"]),
]


def _wal_header() -> dict:
    return {
        "fleet": FLEET_PARAMS,
        "seed": 0,
        "force_each_step": False,
        "queue_limit": 1024,
    }


def build_wal_plane(wal_path, **overrides) -> ControlPlane:
    return build_plane(
        wal=WriteAheadLog(wal_path, header=_wal_header()), **overrides
    )


async def _post_and_drop(host, port, payload) -> None:
    """POST a mutation on a raw one-shot socket and read to EOF.

    The crash tests need this instead of :class:`HttpConnection`: the
    keep-alive client retries once on a dropped connection, and re-sending
    the mutation to a crashed driver would wait forever on a future no one
    will resolve.
    """
    body = json.dumps(payload).encode()
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        b"POST /mutations HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s"
        % (len(body), body)
    )
    await writer.drain()
    await reader.read()  # EOF: the handler died with the driver
    writer.close()


async def _abandon(plane: ControlPlane) -> None:
    """Tear a crashed plane down the way kill -9 would (no graceful drain)."""
    if plane._server is not None:
        plane._server.close()
        await plane._server.wait_closed()
        plane._server = None
    plane.batcher.fail_pending(RuntimeError("crashed"))
    if plane.wal is not None:
        plane.wal.close()
    plane.fleet.close()


async def _session_snapshot(host, port) -> tuple[str, dict, list]:
    async with HttpConnection(host, port) as conn:
        digest = await conn.get_json("/digest")
        trace = await conn.get_json("/trace")
        steps = await conn.get_json("/steps")
    return digest["digest"], trace["cells"], steps["steps"]


async def _run_uncrashed_twin() -> tuple[str, dict, list]:
    """The fault-free reference: all WAL_MUTATIONS served start to finish."""
    plane = build_plane()
    host, port = await plane.start()
    try:
        async with HttpConnection(host, port) as conn:
            for payload in WAL_MUTATIONS:
                status, _, _ = await post(conn, payload)
                assert status == 200
        return await _session_snapshot(host, port)
    finally:
        await plane.shutdown()


class TestWriteAheadLog:
    def test_journal_roundtrip(self, tmp_path):
        path = tmp_path / "session.wal"
        wal = WriteAheadLog(path, header=_wal_header())
        wal.append_batch(0, [("cell-0", {"kind": "node_failure", "nodes": ["a"]})])
        wal.append_batch(1, [("cell-1", {"kind": "node_recovery", "nodes": ["a"]})])
        wal.close()
        header, batches = WriteAheadLog.read(path)
        assert header["fleet"] == FLEET_PARAMS
        assert [b["round"] for b in batches] == [0, 1]
        assert batches[0]["mutations"] == [
            ["cell-0", {"kind": "node_failure", "nodes": ["a"]}]
        ]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "session.wal"
        wal = WriteAheadLog(path, header=_wal_header())
        wal.append_batch(0, [("cell-0", {"kind": "node_failure", "nodes": ["a"]})])
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "batch", "round": 1, "mut')  # crash mid-write
        _header, batches = WriteAheadLog.read(path)
        assert [b["round"] for b in batches] == [0]

    def test_append_after_torn_tail_truncates(self, tmp_path):
        """Reopening for append (the resume path) cuts a torn final line, so
        the next record starts on a fresh line instead of concatenating onto
        the fragment — which would corrupt the journal for every later read."""
        path = tmp_path / "session.wal"
        wal = WriteAheadLog(path, header=_wal_header())
        wal.append_batch(0, [("cell-0", {"kind": "node_failure", "nodes": ["a"]})])
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "batch", "round": 1, "mut')  # crash mid-write
        wal = WriteAheadLog(path)  # append-reopen, as resume does
        wal.append_batch(1, [("cell-1", {"kind": "node_recovery", "nodes": ["a"]})])
        wal.close()
        _header, batches = WriteAheadLog.read(path)
        assert [b["round"] for b in batches] == [0, 1]
        assert batches[1]["mutations"] == [
            ["cell-1", {"kind": "node_recovery", "nodes": ["a"]}]
        ]

    def test_append_to_headerless_torn_file_raises(self, tmp_path):
        """A file holding nothing but a torn header line cannot be resumed."""
        path = tmp_path / "session.wal"
        path.write_text('{"record": "wal", "versi')  # crash during line one
        with pytest.raises(WalError, match="no intact journal header"):
            WriteAheadLog(path)

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "session.wal"
        wal = WriteAheadLog(path, header=_wal_header())
        wal.append_batch(0, [("cell-0", {"kind": "node_failure", "nodes": ["a"]})])
        wal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a non-tail record
        lines.append('{"record": "batch", "round": 1, "mutations": []}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalError, match="corrupt journal line"):
            WriteAheadLog.read(path)

    def test_out_of_order_rounds_raise(self, tmp_path):
        path = tmp_path / "session.wal"
        wal = WriteAheadLog(path, header=_wal_header())
        wal.append_batch(1, [("cell-0", {"kind": "node_failure", "nodes": ["a"]})])
        wal.close()
        # A trailing valid record keeps round 1 from being torn-tail-dropped.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"record": "batch", "round": 2, "mutations": []}\n')
        with pytest.raises(WalError, match="out of order"):
            WriteAheadLog.read(path)


class TestCrashRecovery:
    def test_wal_append_precedes_apply(self, tmp_path):
        """The crash window: a journaled round the fleet never saw."""

        class _Plan:
            wal_crash_round = 0
            ws_drop_after = None

        async def run():
            path = tmp_path / "session.wal"
            plane = build_wal_plane(path, fault_plan=_Plan())
            host, port = await plane.start()
            try:
                await _post_and_drop(host, port, WAL_MUTATIONS[0])
                with pytest.raises(ServeCrash):
                    await plane._driver
                assert plane.recorder.rounds == 1  # recorded and journaled...
                assert plane.steps == []  # ...but never applied
            finally:
                await _abandon(plane)
            _header, batches = WriteAheadLog.read(path)
            assert [b["round"] for b in batches] == [0]

        asyncio.run(run())

    def test_crash_then_resume_matches_uncrashed_run(self, tmp_path):
        """Kill the driver after journaling round 2; resume replays it and
        finishes the workload — trace, digest, and steps all byte-equal the
        fault-free twin's."""

        class _Plan:
            wal_crash_round = 2
            ws_drop_after = None

        async def crash_run(path) -> None:
            plane = build_wal_plane(path, fault_plan=_Plan())
            host, port = await plane.start()
            try:
                async with HttpConnection(host, port) as conn:
                    for payload in WAL_MUTATIONS[:2]:
                        status, _, _ = await post(conn, payload)
                        assert status == 200
                await _post_and_drop(host, port, WAL_MUTATIONS[2])
                with pytest.raises(ServeCrash):
                    await plane._driver
            finally:
                await _abandon(plane)

        async def resume_run(path) -> tuple[str, dict, list]:
            plane = resume_control_plane(path)
            assert plane.recorder.rounds == 3  # rounds 0-2 rebuilt from the WAL
            host, port = await plane.start()
            try:
                async with HttpConnection(host, port) as conn:
                    status, _, result = await post(conn, WAL_MUTATIONS[3])
                    assert status == 200
                    assert result["round"] == 3  # continues where the WAL ended
                return await _session_snapshot(host, port)
            finally:
                await plane.shutdown()

        async def run():
            path = tmp_path / "session.wal"
            await crash_run(path)
            recovered = await resume_run(path)
            reference = await _run_uncrashed_twin()
            assert recovered == reference

        asyncio.run(run())

    async def _serve_checkpointed_session(self, wal_path, checkpoint_path):
        """Serve WAL_MUTATIONS with a checkpoint cadence; return the session
        snapshot ``(digest, traces, steps)``."""
        plane = build_wal_plane(
            wal_path, checkpoint_path=checkpoint_path, checkpoint_every=2
        )
        host, port = await plane.start()
        try:
            async with HttpConnection(host, port) as conn:
                for payload in WAL_MUTATIONS:
                    status, _, _ = await post(conn, payload)
                    assert status == 200
            return await _session_snapshot(host, port)
        finally:
            await plane.shutdown()

    @staticmethod
    def _count_applied(monkeypatch) -> list[int]:
        """Instrument ControlPlane._apply_round to record applied rounds."""
        applied: list[int] = []
        original = ControlPlane._apply_round

        def counting(self, round_index, events_by_cell):
            applied.append(round_index)
            return original(self, round_index, events_by_cell)

        monkeypatch.setattr(ControlPlane, "_apply_round", counting)
        return applied

    def test_resume_with_checkpoint_skips_rounds_but_serves_steps(
        self, tmp_path, monkeypatch
    ):
        async def run():
            wal_path = tmp_path / "session.wal"
            checkpoint_path = tmp_path / "session.ckpt"
            digest, traces, steps = await self._serve_checkpointed_session(
                wal_path, checkpoint_path
            )
            assert checkpoint_path.exists()

            applied = self._count_applied(monkeypatch)
            resumed = resume_control_plane(wal_path, checkpoint_path=checkpoint_path)
            try:
                # The checkpoint covers all 4 rounds: nothing re-applies, yet
                # the trace, fleet state AND step records match the original
                # (steps ride in the checkpoint extra).
                assert applied == []
                assert resumed.recorder.rounds == 4
                assert [step.to_record() for step in resumed.steps] == steps
                assert fleet_digest(resumed.fleet) == digest
                assert resumed.recorder.traces_jsonl() == traces
            finally:
                if resumed.wal is not None:
                    resumed.wal.close()
                resumed.fleet.close()

        asyncio.run(run())

    def test_checkpoint_without_steps_falls_back_to_full_replay(
        self, tmp_path, monkeypatch
    ):
        """A checkpoint missing its step records (an older build's file) is
        ignored: the whole journal replays and the session is still exact."""
        from repro.fleet.checkpoint import CHECKPOINT_MAGIC, CHECKPOINT_VERSION
        from repro.fleet.wire import dumps as wire_dumps, loads as wire_loads

        async def run():
            wal_path = tmp_path / "session.wal"
            checkpoint_path = tmp_path / "session.ckpt"
            digest, traces, steps = await self._serve_checkpointed_session(
                wal_path, checkpoint_path
            )

            blob = checkpoint_path.read_bytes()
            payload = wire_loads(blob[len(CHECKPOINT_MAGIC) + 1 :])
            del payload["extra"]["steps"]
            checkpoint_path.write_bytes(
                CHECKPOINT_MAGIC + bytes([CHECKPOINT_VERSION]) + wire_dumps(payload)
            )

            applied = self._count_applied(monkeypatch)
            resumed = resume_control_plane(wal_path, checkpoint_path=checkpoint_path)
            try:
                assert applied == [0, 1, 2, 3]  # no fast-forward: full replay
                assert resumed.recorder.rounds == 4
                assert [step.to_record() for step in resumed.steps] == steps
                assert fleet_digest(resumed.fleet) == digest
                assert resumed.recorder.traces_jsonl() == traces
            finally:
                if resumed.wal is not None:
                    resumed.wal.close()
                resumed.fleet.close()

        asyncio.run(run())

    def test_client_disconnect_mid_batch_keeps_trace_intact(self, tmp_path):
        """An admitted mutation commits even if its client vanishes before
        the response — the recorded trace stays replayable and complete."""

        async def run():
            path = tmp_path / "session.wal"
            plane = build_wal_plane(path)
            host, port = await plane.start()
            try:
                # Fire a full POST and slam the connection without reading
                # the response.
                body = json.dumps(WAL_MUTATIONS[0]).encode()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /mutations HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                writer.close()
                # The round driver is oblivious: wait for the round to land.
                for _ in range(200):
                    if plane.recorder.rounds >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert plane.recorder.rounds == 1
                async with HttpConnection(host, port) as conn:
                    status, _, result = await post(conn, WAL_MUTATIONS[1])
                    assert status == 200
                    assert result["round"] == 1
                digest, traces, steps = await _session_snapshot(host, port)
            finally:
                await plane.shutdown()

            # Both mutations are in the trace, and it replays to the digest.
            scenario = {cell: Trace.loads(text) for cell, text in traces.items()}
            assert sum(len(t) for t in scenario.values()) == 2
            fleet = build_fleet(**FLEET_PARAMS)
            try:
                metrics = FleetReplayer(fleet, seed=0, workers=1).run(scenario)
                assert fleet_digest(fleet) == digest
                assert [step.to_record() for step in metrics.steps] == steps
            finally:
                fleet.close()

        asyncio.run(run())


class TestServeSubprocess:
    """The CLI boots a real server process that a client can talk to."""

    def test_boot_announce_healthz_sigint(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--cells", "2", "--nodes-per-cell", "10", "--apps", "2",
                "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
            cwd=str(root),
        )
        try:
            info = json.loads(proc.stdout.readline())
            assert info["event"] == "Serving"
            assert info["cells"] == 2

            async def probe():
                async with HttpConnection(info["host"], info["port"]) as conn:
                    health = await conn.get_json("/healthz")
                    config = await conn.get_json("/config")
                return health, config

            health, config = asyncio.run(probe())
            assert health["status"] == "ok"
            assert config["fleet"]["nodes_per_cell"] == 10
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0

    def test_sigterm_drains_and_wal_resumes(self, tmp_path):
        """SIGTERM is a graceful drain: admitted rounds finish, the journal
        flushes, and an offline resume reproduces the served session."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        wal_path = tmp_path / "session.wal"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--cells", "2", "--nodes-per-cell", "12", "--apps", "2",
                "--port", "0", "--wal", str(wal_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
            cwd=str(root),
        )
        try:
            info = json.loads(proc.stdout.readline())
            assert info["event"] == "Serving"
            assert info["resumed"] is False

            async def drive():
                async with HttpConnection(info["host"], info["port"]) as conn:
                    for payload in WAL_MUTATIONS:
                        status, _, _ = await post(conn, payload)
                        assert status == 200
                    digest = await conn.get_json("/digest")
                return digest["digest"]

            served_digest = asyncio.run(drive())
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

        plane = resume_control_plane(wal_path)
        try:
            assert plane.recorder.rounds == len(WAL_MUTATIONS)
            assert fleet_digest(plane.fleet) == served_digest
        finally:
            if plane.wal is not None:
                plane.wal.close()
            plane.fleet.close()

    def test_resume_defaults_to_journaled_queue_limit(self, tmp_path):
        """A resumed CLI session keeps the admission back-pressure recorded
        in the journal header unless --queue-limit is re-specified."""
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        wal_path = tmp_path / "session.wal"
        base = [
            sys.executable, "-m", "repro", "serve",
            "--cells", "2", "--nodes-per-cell", "10", "--apps", "2",
            "--port", "0", "--wal", str(wal_path),
        ]

        def boot(extra):
            return subprocess.Popen(
                base + extra,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
                cwd=str(root),
            )

        async def config_of(info) -> dict:
            async with HttpConnection(info["host"], info["port"]) as conn:
                return await conn.get_json("/config")

        proc = boot(["--queue-limit", "7"])
        try:
            info = json.loads(proc.stdout.readline())
            assert json.loads(
                wal_path.read_text().splitlines()[0]
            )["queue_limit"] == 7
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

        proc = boot(["--resume"])
        try:
            info = json.loads(proc.stdout.readline())
            assert info["resumed"] is True
            config = asyncio.run(config_of(info))
            assert config["queue_limit"] == 7  # journal header, not the default
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
