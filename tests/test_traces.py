"""Tests for the trace subsystem: schema round-trips, generators, replay."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.adaptlab import (
    CapacityTrace,
    DefaultScheme,
    PhoenixCostScheme,
    capacity_failure_trace,
    inject_capacity_failure,
    replay_capacity_trace,
    select_capacity_failure,
)
from repro.adaptlab.failures import set_capacity_fraction
from repro.adaptlab.metrics import requests_served_fraction
from repro.chaos import run_storm_check
from repro.apps import build_overleaf
from repro.traces import (
    CapacityTarget,
    LoadChange,
    NodeFailure,
    NodeRecovery,
    Trace,
    TraceError,
    TraceReplayer,
    alibaba_scenario,
    capacity_schedule,
    correlated_failures,
    diurnal_load,
    failure_storm,
    from_capacity_points,
    merge_traces,
    paper_capacity_trace,
    poisson_failures,
    to_capacity_points,
)

GENERATORS = {
    "poisson": lambda seed: poisson_failures(30, horizon=1800.0, seed=seed),
    "rack": lambda seed: correlated_failures(32, rack_size=4, horizon=1800.0, seed=seed),
    "diurnal": lambda seed: diurnal_load(horizon=7200.0, step_seconds=600.0, seed=seed),
    "storm": lambda seed: failure_storm(40, fraction=0.4, seed=seed),
    "alibaba": lambda seed: paper_capacity_trace(steps=12, seed=seed),
    "scenario": lambda seed: alibaba_scenario(steps=10, seed=seed, apps=("a", "b")),
}


class TestSchemaRoundTrip:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_gen_jsonl_parse_is_lossless(self, name):
        trace = GENERATORS[name](seed=5)
        text = trace.dumps()
        reloaded = Trace.loads(text)
        assert reloaded.events == trace.events
        assert reloaded.metadata == trace.metadata
        assert reloaded.dumps() == text

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_same_seed_is_byte_identical(self, name):
        assert GENERATORS[name](seed=9).dumps() == GENERATORS[name](seed=9).dumps()

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_different_seed_differs(self, name):
        assert GENERATORS[name](seed=1).dumps() != GENERATORS[name](seed=2).dumps()

    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_generated_traces_validate(self, name):
        trace = GENERATORS[name](seed=3)
        trace.validate()
        assert len(trace) > 0
        assert all(e.time >= 0 for e in trace)

    def test_file_round_trip(self, tmp_path):
        trace = failure_storm(20, seed=4)
        path = tmp_path / "storm.jsonl"
        trace.write(path)
        assert Trace.read(path).dumps() == trace.dumps()

    def test_events_sorted_by_time(self):
        trace = Trace(
            events=[
                NodeRecovery(time=50.0, nodes=("a",)),
                NodeFailure(time=10.0, nodes=("a",)),
            ]
        )
        assert [e.time for e in trace] == [10.0, 50.0]

    def test_steps_group_simultaneous_events(self):
        trace = Trace(
            events=[
                NodeFailure(time=10.0, nodes=("a",)),
                LoadChange(time=10.0, multiplier=2.0),
                NodeRecovery(time=20.0, nodes=("a",)),
            ]
        )
        steps = trace.steps()
        assert [(t, len(evs)) for t, evs in steps] == [(10.0, 2), (20.0, 1)]

    def test_merge_traces_interleaves(self):
        merged = merge_traces(
            [capacity_schedule([1.0, 0.5], step_seconds=60.0), diurnal_load(horizon=90.0, step_seconds=45.0)]
        )
        assert [e.time for e in merged] == sorted(e.time for e in merged)
        assert {"capacity", "load_change"} <= set(merged.kinds())


class TestSchemaValidation:
    def test_rejects_empty_text(self):
        with pytest.raises(TraceError, match="empty trace"):
            Trace.loads("")

    def test_rejects_missing_header(self):
        with pytest.raises(TraceError, match="header"):
            Trace.loads('{"record":"event","kind":"node_failure","time":0,"nodes":["a"]}')

    def test_rejects_unknown_version(self):
        with pytest.raises(TraceError, match="version"):
            Trace.loads('{"record":"trace","version":99,"metadata":{}}')

    def test_rejects_unknown_kind(self):
        text = '{"record":"trace","version":1,"metadata":{}}\n' + (
            '{"record":"event","kind":"meteor_strike","time":1}'
        )
        with pytest.raises(TraceError, match="unknown event kind"):
            Trace.loads(text)

    def test_rejects_non_json(self):
        with pytest.raises(TraceError, match="not valid JSONL"):
            Trace.loads("this is not json")

    def test_rejects_negative_time(self):
        with pytest.raises(TraceError, match="non-negative"):
            NodeFailure(time=-1.0, nodes=("a",)).validate()

    def test_rejects_empty_node_list(self):
        with pytest.raises(TraceError, match="node name"):
            NodeFailure(time=0.0, nodes=()).validate()

    def test_rejects_out_of_range_capacity(self):
        with pytest.raises(TraceError, match="within"):
            CapacityTarget(time=0.0, available_fraction=1.5).validate()

    def test_rejects_negative_load(self):
        with pytest.raises(TraceError, match=">= 0"):
            LoadChange(time=0.0, multiplier=-0.1).validate()


class TestCapacityTraceBridge:
    def test_to_trace_and_back_is_lossless(self):
        legacy = CapacityTrace.paper_profile(steps=10)
        restored = CapacityTrace.from_trace(legacy.to_trace())
        assert restored.points == legacy.points

    def test_paper_profile_matches_schema_trace(self):
        legacy = CapacityTrace.paper_profile(steps=12, seed=3)
        schema = paper_capacity_trace(steps=12, seed=3)
        schema_points = to_capacity_points(schema)
        assert len(schema_points) == len(legacy)
        for (time, fraction), point in zip(schema_points, legacy):
            assert time == point.time
            assert fraction == pytest.approx(point.available_fraction, abs=1e-6)

    def test_from_capacity_points_accepts_pairs(self):
        trace = from_capacity_points([(0.0, 1.0), (30.0, 0.5)])
        assert to_capacity_points(trace) == [(0.0, 1.0), (30.0, 0.5)]


class TestFailureTraceProducers:
    def test_capacity_failure_trace_matches_injection(self, small_environment):
        state = small_environment.fresh_state()
        trace = capacity_failure_trace(state, 0.4, seed=11)
        injected = inject_capacity_failure(small_environment.fresh_state(), 0.4, seed=11)
        (event,) = trace.events
        assert isinstance(event, NodeFailure)
        assert list(event.nodes) == injected

    def test_selection_is_pure(self, small_environment):
        state = small_environment.fresh_state()
        select_capacity_failure(state, 0.5, seed=1)
        assert not state.failed_nodes()

    def test_zero_fraction_is_empty_trace(self, small_environment):
        trace = capacity_failure_trace(small_environment.fresh_state(), 0.0)
        assert len(trace) == 0
        trace.validate()


class TestTraceReplayer:
    def test_legacy_replay_matches_manual_loop(self, small_environment):
        trace = CapacityTrace.paper_profile(steps=6)
        scheme = PhoenixCostScheme()
        result = replay_capacity_trace(small_environment, [scheme], trace=trace, seed=0)
        series = dict(result.series(scheme.name))

        state = small_environment.fresh_state()
        for point in trace:
            set_capacity_fraction(state, point.available_fraction, seed=0)
            state, _ = PhoenixCostScheme().respond(state)
            served = requests_served_fraction(state, small_environment.traced)
            assert series[point.time] == served

    def test_respond_mode_for_non_engine_scheme(self, small_environment):
        result = replay_capacity_trace(
            small_environment, [DefaultScheme()], trace=CapacityTrace.paper_profile(steps=4)
        )
        assert len(result.points) == 4

    def test_engine_mode_storm_recovers(self, small_environment):
        trace = failure_storm(
            [n.name for n in small_environment.state.nodes.values()],
            fraction=0.4,
            recovery_steps=2,
            seed=2,
        )
        eng = api.engine("revenue")
        metrics = TraceReplayer(eng, seed=2).run(small_environment.fresh_state(), trace)
        assert metrics.final().failed_nodes == 0
        assert metrics.final().availability == 1.0
        assert any(step.triggered for step in metrics)

    def test_engine_mode_is_deterministic(self, small_environment):
        trace = failure_storm(60, fraction=0.3, seed=5)
        outputs = []
        for _ in range(2):
            metrics = TraceReplayer(api.engine("revenue"), seed=5).run(
                small_environment.fresh_state(), trace
            )
            outputs.append(metrics.to_jsonl())
        assert outputs[0] == outputs[1]

    def test_replay_hooks_emitted_on_event_bus(self, small_environment):
        trace = failure_storm(60, fraction=0.3, recovery_steps=2, seed=1)
        applied, steps = [], []
        eng = api.engine("revenue")
        eng.events.subscribe(applied.append, api.TraceEventApplied)
        eng.events.subscribe(steps.append, api.ReplayStepCompleted)
        metrics = TraceReplayer(eng, seed=1).run(small_environment.fresh_state(), trace)
        assert len(applied) == len(trace)
        assert len(steps) == len(metrics)
        assert applied[0].kind == "node_failure"
        assert "availability" in steps[0].payload

    def test_replay_hooks_emitted_in_respond_mode(self, small_environment):
        eng = api.engine("revenue")
        applied, steps = [], []
        eng.events.subscribe(applied.append, api.TraceEventApplied)
        eng.events.subscribe(steps.append, api.ReplayStepCompleted)
        adapter = api.SchemeAdapter(eng, name="hooked")
        trace = capacity_schedule([0.8, 0.6], step_seconds=30.0)
        metrics = TraceReplayer(adapter, seed=0).run(small_environment.fresh_state(), trace)
        assert len(applied) == len(trace)
        assert len(steps) == len(metrics)

    def test_load_change_recorded_in_metrics(self, small_environment):
        trace = merge_traces(
            [
                capacity_schedule([1.0, 0.7], step_seconds=60.0),
                Trace(events=[LoadChange(time=60.0, multiplier=1.5)]),
            ]
        )
        metrics = TraceReplayer(api.engine("revenue")).run(
            small_environment.fresh_state(), trace
        )
        assert metrics.steps[0].load_multiplier == 1.0
        assert metrics.steps[1].load_multiplier == 1.5

    def test_input_state_never_mutated(self, small_environment):
        state = small_environment.fresh_state()
        TraceReplayer(api.engine("revenue")).run(state, failure_storm(60, seed=0))
        assert not state.failed_nodes()

    def test_unknown_nodes_raise_trace_error(self, small_environment):
        trace = Trace(events=[NodeFailure(time=0.0, nodes=("node-enoent",))])
        with pytest.raises(TraceError, match="unknown nodes"):
            TraceReplayer(api.engine("revenue")).run(small_environment.fresh_state(), trace)

    def test_rejects_driver_without_interface(self):
        with pytest.raises(TypeError, match="reconcile"):
            TraceReplayer(object())

    def test_requests_served_requires_traced(self, small_environment):
        trace = capacity_schedule([0.8], step_seconds=30.0)
        bare = TraceReplayer(api.engine("revenue")).run(small_environment.fresh_state(), trace)
        assert bare.steps[0].requests_served is None
        traced = TraceReplayer(
            api.engine("revenue"), traced=small_environment.traced
        ).run(small_environment.fresh_state(), trace)
        assert traced.steps[0].requests_served is not None


class TestReplayerInputRobustness:
    """Malformed trace files must fail loudly at parse time, before the
    replayer ever touches the cluster — and fail with :class:`TraceError`,
    which the CLI maps to a one-line usage error."""

    HEADER = '{"record":"trace","version":1,"metadata":{}}'
    EVENT = '{"record":"event","kind":"node_failure","time":1.0,"nodes":["node-0"]}'

    def test_truncated_trailing_line_is_rejected(self):
        text = self.HEADER + "\n" + self.EVENT + "\n" + self.EVENT[: len(self.EVENT) // 2]
        with pytest.raises(TraceError, match="not valid JSONL"):
            Trace.loads(text)

    def test_garbage_trailing_line_is_rejected(self):
        text = self.HEADER + "\n" + self.EVENT + "\n%%% scribble %%%"
        with pytest.raises(TraceError, match="not valid JSONL"):
            Trace.loads(text)

    def test_non_event_trailing_record_is_rejected(self):
        text = self.HEADER + "\n" + self.EVENT + '\n{"record":"checkpoint"}'
        with pytest.raises(TraceError, match="expected an event record"):
            Trace.loads(text)

    def test_unknown_event_version_is_rejected(self):
        bumped = self.EVENT[:-1] + ',"version":2}'
        with pytest.raises(TraceError, match="unsupported event version"):
            Trace.loads(self.HEADER + "\n" + bumped)

    def test_current_event_version_is_accepted(self):
        tagged = self.EVENT[:-1] + ',"version":1}'
        assert len(Trace.loads(self.HEADER + "\n" + tagged)) == 1

    def test_header_only_trace_replays_to_zero_steps(self, small_environment):
        trace = Trace.loads(self.HEADER)
        metrics = TraceReplayer(api.engine("revenue")).run(
            small_environment.fresh_state(), trace
        )
        assert len(metrics) == 0
        with pytest.raises(ValueError, match="empty replay"):
            metrics.final()

    def test_fully_empty_text_never_reaches_the_replayer(self):
        with pytest.raises(TraceError, match="empty trace"):
            Trace.loads("   \n  \n")


class TestGeneratorShapes:
    def test_poisson_failures_recover_eventually(self):
        trace = poisson_failures(20, horizon=20000.0, mtbf=500.0, mttr=100.0, seed=0)
        kinds = trace.kinds()
        assert kinds["node_failure"] > 0
        assert kinds["node_recovery"] > 0

    def test_rack_failures_fail_whole_racks(self):
        trace = correlated_failures(32, rack_size=4, horizon=20000.0, rack_mtbf=2000.0, seed=0)
        failures = [e for e in trace if isinstance(e, NodeFailure)]
        assert failures and all(len(e.nodes) == 4 for e in failures)

    def test_storm_recovers_every_victim(self):
        trace = failure_storm(50, fraction=0.5, recovery_steps=3, seed=8)
        failed = [n for e in trace if isinstance(e, NodeFailure) for n in e.nodes]
        recovered = [n for e in trace if isinstance(e, NodeRecovery) for n in e.nodes]
        assert sorted(failed) == sorted(recovered)
        assert len(set(failed)) == len(failed) == 25

    def test_storm_recovery_always_follows_failure(self):
        # Regression: tiny recovery_after used to let recovery groups land
        # inside the burst window, leaving nodes permanently failed.
        trace = failure_storm(100, at=300.0, fraction=0.5, recovery_after=1.0, recovery_steps=2, seed=7)
        down: set[str] = set()
        for event in trace:
            if isinstance(event, NodeFailure):
                down.update(event.nodes)
            else:
                assert set(event.nodes) <= down
                down.difference_update(event.nodes)
        assert not down

    def test_diurnal_load_stays_non_negative(self):
        trace = diurnal_load(horizon=86400.0, step_seconds=3600.0, amplitude=1.2, seed=0)
        assert all(e.multiplier >= 0.0 for e in trace)

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            poisson_failures(10, horizon=-1.0)
        with pytest.raises(ValueError):
            failure_storm(10, fraction=0.0)
        with pytest.raises(ValueError):
            correlated_failures(10, rack_size=0)


class TestStormChaosCheck:
    def test_overleaf_survives_storm(self):
        report = run_storm_check(build_overleaf(), seed=3)
        assert report.passed
        assert report.final_availability == 1.0
        assert "OK" in report.to_text()
