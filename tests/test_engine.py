"""Tests for the ``repro.api`` layer: engine, config, events, adapters.

Covers the three surfaces the engine unifies (controller loop, AdaptLab
scheme, one-shot plan/schedule), the failure-detection edge cases the
redesign issue calls out, equivalence between legacy frontends and the
engine, and the deprecation shims.
"""

from __future__ import annotations

import warnings

import pytest

from repro.adaptlab import (
    DefaultScheme,
    FairScheme,
    PhoenixCostScheme,
    PhoenixFairScheme,
    PhoenixScheme,
    PriorityScheme,
    inject_capacity_failure,
    run_failure_sweep,
)
from repro.api import (
    ActionsExecuted,
    EngineConfig,
    EventBus,
    FailureDetected,
    PhoenixEngine,
    PlanComputed,
    RecoveryDetected,
    SchemeAdapter,
    backend_for,
    engine,
)
from repro.cluster import Node, Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.controller import PhoenixController, StateBackend
from repro.core.objectives import FairnessObjective, RevenueObjective
from repro.core.plan import Action, ActionKind
from repro.core.planner import PhoenixPlanner
from repro.core.scheduler import PhoenixScheduler, apply_actions, apply_schedule


@pytest.fixture
def state(simple_app, second_app) -> ClusterState:
    nodes = [Node(f"n{i}", Resources(4, 4)) for i in range(5)]
    return ClusterState(nodes=nodes, applications=[simple_app, second_app])


@pytest.fixture
def eng() -> PhoenixEngine:
    return engine("revenue")


# -- config & factory -----------------------------------------------------------------


class TestConfigAndFactory:
    def test_engine_factory_resolves_objective_names(self):
        assert engine("revenue").objective.name == "revenue"
        assert engine("fairness").objective.name == "fairness"
        assert engine("cost").objective.name == "revenue"

    def test_engine_accepts_objective_instances(self):
        objective = FairnessObjective()
        assert engine(objective).objective is objective

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            engine("throughput")

    def test_bad_objective_type_rejected(self):
        with pytest.raises(TypeError):
            EngineConfig(objective=42)

    def test_bad_implementation_rejected(self):
        with pytest.raises(ValueError, match="implementation"):
            EngineConfig(implementation="turbo")

    def test_bad_monitor_interval_rejected(self):
        with pytest.raises(ValueError, match="monitor_interval"):
            EngineConfig(monitor_interval=0)

    def test_pipeline_and_stage_overrides_are_exclusive(self):
        pipeline = engine("revenue").pipeline
        with pytest.raises(ValueError):
            PhoenixEngine(pipeline=pipeline, ranker=PhoenixPlanner(RevenueObjective()))

    def test_engine_name_follows_objective(self):
        assert engine("revenue").name == "phoenix-revenue"
        assert engine("fairness").name == "phoenix-fairness"


# -- backend wrapping -----------------------------------------------------------------


class TestBackendFor:
    def test_state_is_wrapped_in_state_backend(self, state):
        backend = backend_for(state)
        assert isinstance(backend, StateBackend)
        assert backend.state is state

    def test_backend_passes_through(self, state):
        backend = StateBackend(state)
        assert backend_for(backend) is backend

    def test_phoenix_backend_factory_is_used(self):
        class FakeCluster:
            def phoenix_backend(self):
                return self._backend

            _backend = object()

        cluster = FakeCluster()
        assert backend_for(cluster) is cluster._backend

    def test_unwrappable_target_rejected(self):
        with pytest.raises(TypeError, match="ClusterBackend"):
            backend_for(42)

    def test_kubesim_cluster_wraps_via_factory(self):
        from repro.kubesim import KubeCluster, KubeClusterConfig, PhoenixKubeBackend

        cluster = KubeCluster(KubeClusterConfig(node_count=3, node_capacity=Resources(4, 8)))
        backend = backend_for(cluster)
        assert isinstance(backend, PhoenixKubeBackend)
        assert backend.cluster is cluster


# -- failure-detection edge cases ------------------------------------------------------


class TestFailureDetectionEdgeCases:
    def test_first_observation_reports_preexisting_failures(self, state, eng):
        state.fail_nodes(["n0", "n3"])
        report = eng.reconcile(state)
        assert report.triggered
        assert report.failed_nodes == ["n0", "n3"]
        assert report.recovered_nodes == []

    def test_first_observation_with_healthy_cluster_does_not_trigger(self, state, eng):
        report = eng.reconcile(state)
        assert not report.triggered
        assert report.plan is None
        assert report.actions_executed == 0

    def test_recover_then_refail_between_rounds_is_invisible(self, state, eng):
        eng.reconcile(state, force=True)
        state.fail_nodes(["n0"])
        assert eng.reconcile(state).failed_nodes == ["n0"]
        # The blip happens entirely between observations: the detector can
        # only compare snapshots, so no change is (or can be) reported.
        state.recover_nodes(["n0"])
        state.fail_nodes(["n0"])
        report = eng.reconcile(state)
        assert not report.triggered
        assert report.failed_nodes == []
        assert report.recovered_nodes == []

    def test_recovery_with_simultaneous_new_failure_reports_both(self, state, eng):
        eng.reconcile(state, force=True)
        state.fail_nodes(["n0"])
        eng.reconcile(state)
        state.recover_nodes(["n0"])
        state.fail_nodes(["n1"])
        report = eng.reconcile(state)
        assert report.failed_nodes == ["n1"]
        assert report.recovered_nodes == ["n0"]

    def test_fail_recover_fail_across_rounds_detects_each_transition(self, state, eng):
        eng.reconcile(state, force=True)
        state.fail_nodes(["n0"])
        assert eng.reconcile(state).failed_nodes == ["n0"]
        state.recover_nodes(["n0"])
        assert eng.reconcile(state).recovered_nodes == ["n0"]
        state.fail_nodes(["n0"])
        report = eng.reconcile(state)
        assert report.failed_nodes == ["n0"]
        assert report.recovered_nodes == []

    def test_force_reconcile_on_unchanged_cluster_plans_but_converges(self, state, eng):
        first = eng.reconcile(state, force=True)
        assert first.triggered and first.actions_executed > 0
        again = eng.reconcile(state, force=True)
        assert again.triggered
        assert again.failed_nodes == [] and again.recovered_nodes == []
        assert again.plan is not None and again.schedule is not None
        # The cluster is already at the target: planning runs, nothing moves.
        assert again.actions_executed == 0

    def test_reset_forgets_detection_state(self, state, eng):
        state.fail_nodes(["n2"])
        eng.reconcile(state)
        eng.reset()
        report = eng.reconcile(state)
        assert report.failed_nodes == ["n2"]


# -- event stream ---------------------------------------------------------------------


class TestEvents:
    def test_reconcile_emits_typed_sequence(self, state, eng):
        events = []
        eng.events.subscribe(events.append)
        eng.reconcile(state, force=True)
        state.fail_nodes(["n0"])
        eng.reconcile(state)
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "PlanComputed",
            "ActionsExecuted",
            "FailureDetected",
            "PlanComputed",
            "ActionsExecuted",
        ]
        failure = next(e for e in events if isinstance(e, FailureDetected))
        assert failure.nodes == ("n0",)

    def test_recovery_event_carries_nodes(self, state, eng):
        eng.reconcile(state, force=True)
        state.fail_nodes(["n0", "n1"])
        eng.reconcile(state)
        received = []
        eng.events.subscribe(received.append, RecoveryDetected)
        state.recover_nodes(["n1"])
        eng.reconcile(state)
        assert [e.nodes for e in received] == [("n1",)]

    def test_type_filtered_subscription(self, state, eng):
        plans, actions = [], []
        eng.events.subscribe(plans.append, PlanComputed)
        eng.events.subscribe(actions.append, ActionsExecuted)
        report = eng.reconcile(state, force=True)
        assert len(plans) == 1 and plans[0].plan is report.plan
        assert plans[0].planning_seconds == report.planning_seconds
        assert len(actions) == 1 and actions[0].count == report.actions_executed

    def test_respond_emits_plan_computed(self, state, eng):
        plans = []
        eng.events.subscribe(plans.append, PlanComputed)
        state.fail_nodes(["n0"])
        eng.respond(state)
        assert len(plans) == 1

    def test_unsubscribe(self, state, eng):
        events = []
        unsubscribe = eng.events.subscribe(events.append)
        eng.reconcile(state, force=True)
        seen = len(events)
        assert seen > 0
        unsubscribe()
        eng.reconcile(state, force=True)
        assert len(events) == seen

    def test_observers_kwarg_subscribes_at_construction(self, state):
        events = []
        eng = engine("revenue", observers=[events.append])
        eng.reconcile(state, force=True)
        assert events

    def test_bus_rejects_non_callable_handler(self):
        with pytest.raises(TypeError):
            EventBus().subscribe("not-callable")

    def test_bus_rejects_non_event_type(self):
        with pytest.raises(TypeError):
            EventBus().subscribe(lambda e: None, event_type=int)


# -- equivalence with the legacy surfaces ---------------------------------------------


def _legacy_phoenix_respond(state, objective):
    """The pre-engine ``PhoenixScheme.respond`` body, verbatim."""
    planner = PhoenixPlanner(objective)
    scheduler = PhoenixScheduler()
    plan = planner.plan(state)
    schedule = scheduler.schedule(state, plan)
    new_state = state.copy()
    apply_schedule(new_state, schedule)
    return new_state, plan, schedule


class TestLegacyEquivalence:
    def test_engine_respond_matches_hand_wired_pipeline(self, state):
        state.fail_nodes(["n0", "n1"])
        expected_state, expected_plan, _ = _legacy_phoenix_respond(state, RevenueObjective())
        eng = engine("revenue")
        got_state, _seconds = eng.respond(state)
        assert eng.plan(state).activated == expected_plan.activated
        assert list(got_state.assignments.items()) == list(expected_state.assignments.items())

    def test_engine_reconcile_matches_legacy_controller(self, simple_app, second_app):
        def fresh():
            nodes = [Node(f"n{i}", Resources(4, 4)) for i in range(5)]
            return ClusterState(nodes=nodes, applications=[simple_app, second_app])

        legacy_state, engine_state = fresh(), fresh()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            controller = PhoenixController(StateBackend(legacy_state), RevenueObjective())
        eng = engine("revenue")

        for round_index in range(3):
            if round_index == 1:
                legacy_state.fail_nodes(["n0", "n1"])
                engine_state.fail_nodes(["n0", "n1"])
            legacy_report = controller.reconcile(force=round_index == 0)
            engine_report = eng.reconcile(engine_state, force=round_index == 0)
            assert engine_report.triggered == legacy_report.triggered
            assert engine_report.failed_nodes == legacy_report.failed_nodes
            assert engine_report.actions_executed == legacy_report.actions_executed
            if legacy_report.schedule is not None:
                assert engine_report.schedule.actions == legacy_report.schedule.actions
            assert list(engine_state.assignments.items()) == list(
                legacy_state.assignments.items()
            )

    def test_scheme_adapter_matches_legacy_scheme(self, small_environment):
        state = small_environment.fresh_state()
        inject_capacity_failure(state, 0.5, seed=13)
        for objective, scheme in (
            (RevenueObjective(), PhoenixCostScheme()),
            (FairnessObjective(), PhoenixFairScheme()),
        ):
            expected_state, _, _ = _legacy_phoenix_respond(state, objective)
            got_state, _ = scheme.respond(state)
            assert list(got_state.assignments.items()) == list(
                expected_state.assignments.items()
            )

    def test_reference_implementation_is_byte_identical(self, small_environment):
        state = small_environment.fresh_state()
        inject_capacity_failure(state, 0.5, seed=29)
        fast = engine("revenue")
        golden = engine("revenue", implementation="reference")
        fast_plan = fast.plan(state)
        golden_plan = golden.plan(state)
        assert fast_plan.ranked == golden_plan.ranked
        assert fast_plan.activated == golden_plan.activated
        fast_schedule = fast.schedule(state, fast_plan)
        golden_schedule = golden.schedule(state, golden_plan)
        assert fast_schedule.actions == golden_schedule.actions
        assert list(fast_schedule.target_assignment.items()) == list(
            golden_schedule.target_assignment.items()
        )

    def test_sweep_results_identical_through_adapters(self, small_environment):
        suite = [
            PhoenixCostScheme(),
            PhoenixFairScheme(),
            PriorityScheme(),
            FairScheme(),
            DefaultScheme(),
        ]
        adapters = [
            SchemeAdapter(engine("revenue"), name="phoenix-cost"),
            SchemeAdapter(engine("fairness"), name="phoenix-fair"),
            PriorityScheme(),
            FairScheme(),
            DefaultScheme(),
        ]
        levels = (0.3, 0.6)
        baseline = run_failure_sweep(small_environment, suite, failure_levels=levels)
        adapted = run_failure_sweep(small_environment, adapters, failure_levels=levels)
        for level in levels:
            for name in ("phoenix-cost", "phoenix-fair", "priority", "fair", "default"):
                a = baseline.point(name, level)
                b = adapted.point(name, level)
                assert (a.availability, a.revenue, a.fairness_positive, a.fairness_negative, a.utilization) == (
                    b.availability,
                    b.revenue,
                    b.fairness_positive,
                    b.fairness_negative,
                    b.utilization,
                )

    def test_lp_pipeline_engine_matches_legacy_lp_scheme(self, state):
        from repro.adaptlab import LPCostScheme
        from repro.api import LPPipeline
        from repro.core.lp import LPCost

        state.fail_nodes(["n0", "n1"])
        eng = PhoenixEngine.from_pipeline(LPPipeline(LPCost(time_limit=30), name="lp-cost"))
        got_state, _ = eng.respond(state)
        expected_state, _ = LPCostScheme(time_limit=30).respond(state)
        assert got_state.assignments == expected_state.assignments
        assert eng.objective is None
        with pytest.raises(NotImplementedError):
            eng.plan(state)


# -- deprecation shims ----------------------------------------------------------------


class TestDeprecationShims:
    def test_legacy_controller_constructor_warns_but_works(self, state):
        with pytest.warns(DeprecationWarning, match="PhoenixController"):
            controller = PhoenixController(StateBackend(state), RevenueObjective())
        report = controller.reconcile(force=True)
        assert report.triggered and report.actions_executed > 0

    def test_controller_with_engine_does_not_warn(self, state):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            controller = PhoenixController(StateBackend(state), engine=engine("revenue"))
        assert controller.reconcile(force=True).triggered

    def test_controller_requires_exactly_one_of_objective_engine(self, state):
        backend = StateBackend(state)
        with pytest.raises(TypeError):
            PhoenixController(backend)
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                PhoenixController(backend, RevenueObjective(), engine=engine("revenue"))

    def test_legacy_phoenix_scheme_constructor_warns_but_works(self, state):
        state.fail_nodes(["n0"])
        with pytest.warns(DeprecationWarning, match="PhoenixScheme"):
            scheme = PhoenixScheme(RevenueObjective())
        assert scheme.name == "phoenix-revenue"
        new_state, seconds = scheme.respond(state)
        assert seconds >= 0
        assert new_state is not state

    def test_engine_backed_schemes_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PhoenixCostScheme()
            PhoenixFairScheme()
            PriorityScheme()
            FairScheme()

    def test_scheme_legacy_component_views(self):
        scheme = PhoenixCostScheme()
        assert isinstance(scheme.planner, PhoenixPlanner)
        assert scheme.scheduler is scheme.engine


# -- controller as a thin loop ---------------------------------------------------------


class TestControllerOverEngine:
    def test_controller_history_and_reset(self, state):
        controller = PhoenixController(StateBackend(state), engine=engine("revenue"))
        controller.reconcile(force=True)
        state.fail_nodes(["n0"])
        controller.reconcile()
        assert len(controller.history) == 2
        controller.reset()
        assert controller.history == []
        # Detection state was forgotten: the existing failure reads as new.
        assert controller.reconcile().failed_nodes == ["n0"]

    def test_controller_invalid_monitor_interval_rejected(self, state):
        with pytest.raises(ValueError):
            PhoenixController(StateBackend(state), engine=engine("revenue"), monitor_interval=0)

    def test_controller_exposes_engine_events(self, state):
        events = []
        eng = engine("revenue", observers=[events.append])
        controller = PhoenixController(StateBackend(state), engine=eng)
        controller.reconcile(force=True)
        assert any(isinstance(e, ActionsExecuted) for e in events)


# -- action application dedup ----------------------------------------------------------


class TestApplyActions:
    def test_state_backend_delegates_to_apply_actions(self, state):
        twin = state.copy()
        replica = ReplicaId("shop", "frontend", 0)
        actions = [Action(ActionKind.START, replica, target_node="n0")]
        StateBackend(state).execute(actions)
        apply_actions(twin, actions)
        assert state.assignments == twin.assignments

    def test_delete_of_unassigned_replica_is_noop(self, state):
        replica = ReplicaId("shop", "frontend", 0)
        apply_actions(state, [Action(ActionKind.DELETE, replica, source_node="n0")])
        assert state.node_of(replica) is None

    def test_start_with_stale_placement_moves_the_replica(self, state):
        replica = ReplicaId("shop", "frontend", 0)
        state.assign(replica, "n0")
        apply_actions(state, [Action(ActionKind.START, replica, target_node="n1")])
        assert state.node_of(replica) == "n1"

    def test_migrate_unassigned_replica_assigns(self, state):
        replica = ReplicaId("shop", "frontend", 0)
        apply_actions(
            state,
            [Action(ActionKind.MIGRATE, replica, source_node="n0", target_node="n1")],
        )
        assert state.node_of(replica) == "n1"
