"""Tests for the Phoenix planner (Algorithm 1)."""

import pytest

from repro.cluster import Application, Node, Resources
from repro.cluster.state import ClusterState
from repro.core.objectives import FairnessObjective, RevenueObjective
from repro.core.planner import GlobalRanker, PhoenixPlanner, PriorityEstimator

from tests.conftest import make_microservice


@pytest.fixture
def estimator():
    return PriorityEstimator()


class TestPriorityEstimatorWithoutGraph:
    def test_orders_by_criticality_then_name(self, estimator, second_app):
        assert estimator.rank(second_app) == ["api", "render", "analytics"]

    def test_all_microservices_included(self, estimator, second_app):
        assert set(estimator.rank(second_app)) == set(second_app.microservices)


class TestPriorityEstimatorWithGraph:
    def test_root_comes_first(self, estimator, simple_app):
        order = estimator.rank(simple_app)
        assert order[0] == "frontend"

    def test_critical_children_before_non_critical(self, estimator, simple_app):
        order = estimator.rank(simple_app)
        assert order.index("catalog") < order.index("ads") < order.index("recommend")

    def test_every_node_has_a_ranked_predecessor(self, estimator):
        # Deep chain where a low-criticality node guards a high-criticality one.
        app = Application.from_microservices(
            "chain",
            [
                make_microservice("root", criticality=1),
                make_microservice("middle", criticality=5),
                make_microservice("leaf", criticality=1),
            ],
            dependency_edges=[("root", "middle"), ("middle", "leaf")],
        )
        order = estimator.rank(app)
        assert order.index("root") < order.index("middle") < order.index("leaf")

    def test_prefix_is_always_dependency_closed(self, estimator, simple_app):
        order = estimator.rank(simple_app)
        seen = set()
        for name in order:
            preds = simple_app.predecessors(name)
            assert not preds or any(p in seen for p in preds)
            seen.add(name)

    def test_unreachable_nodes_are_appended(self, estimator):
        # A two-node cycle is unreachable from any source; it must still rank.
        app = Application.from_microservices(
            "cyclic",
            [
                make_microservice("entry", criticality=1),
                make_microservice("a", criticality=2),
                make_microservice("b", criticality=2),
            ],
            dependency_edges=[("a", "b"), ("b", "a")],
        )
        order = estimator.rank(app)
        assert set(order) == {"entry", "a", "b"}

    def test_multiple_sources_ranked_by_criticality(self, estimator):
        app = Application.from_microservices(
            "multi-src",
            [
                make_microservice("low-root", criticality=4),
                make_microservice("high-root", criticality=1),
                make_microservice("child", criticality=2),
            ],
            dependency_edges=[("low-root", "child"), ("high-root", "child")],
        )
        order = estimator.rank(app)
        assert order[0] == "high-root"


class TestGlobalRanker:
    def test_revenue_ranker_prefers_expensive_app(self, simple_app, second_app):
        ranker = GlobalRanker(RevenueObjective())
        apps = {"shop": simple_app, "blog": second_app}
        ranks = {"shop": ["frontend", "catalog", "ads", "recommend"], "blog": ["api", "render", "analytics"]}
        plan = ranker.rank(apps, ranks, capacity=100)
        first = plan.ranked[0]
        assert first.app == "shop"  # price 2.0 and C1 beats blog's C1 at price 1.0

    def test_capacity_limits_activation(self, simple_app, second_app):
        ranker = GlobalRanker(RevenueObjective())
        apps = {"shop": simple_app, "blog": second_app}
        ranks = {"shop": ["frontend", "catalog", "ads", "recommend"], "blog": ["api", "render", "analytics"]}
        plan = ranker.rank(apps, ranks, capacity=6)
        total = sum(e.cpu for e in plan.activated)
        assert total <= 6
        assert len(plan.ranked) == 7  # everything still ranked

    def test_blocked_app_never_activates_later_containers(self, simple_app, second_app):
        ranker = GlobalRanker(RevenueObjective())
        apps = {"shop": simple_app, "blog": second_app}
        ranks = {"shop": ["frontend", "catalog", "ads", "recommend"], "blog": ["api", "render", "analytics"]}
        plan = ranker.rank(apps, ranks, capacity=5)
        activated_shop = plan.activated_for("shop")
        # shop activates frontend (2 cpu); catalog would exceed what's left after
        # blog's api competes... verify prefix property: the activated list for
        # each app is a prefix of its per-app rank.
        for app_name, rank in ranks.items():
            activated = plan.activated_for(app_name)
            assert activated == rank[: len(activated)]
        assert activated_shop == ranks["shop"][: len(activated_shop)]

    def test_zero_capacity_activates_nothing(self, simple_app):
        ranker = GlobalRanker(RevenueObjective())
        plan = ranker.rank({"shop": simple_app}, {"shop": ["frontend"]}, capacity=0)
        assert len(plan.activated) == 0
        assert len(plan.ranked) == 1

    def test_fairness_ranker_balances_apps(self, simple_app, second_app):
        ranker = GlobalRanker(FairnessObjective())
        apps = {"shop": simple_app, "blog": second_app}
        ranks = {"shop": ["frontend", "catalog", "ads", "recommend"], "blog": ["api", "render", "analytics"]}
        plan = ranker.rank(apps, ranks, capacity=8)
        allocated = {"shop": 0.0, "blog": 0.0}
        for entry in plan.activated:
            allocated[entry.app] += entry.cpu
        # With 8 units and demands 8/6, fair share is 4/4: both apps get close.
        assert allocated["shop"] >= 2
        assert allocated["blog"] >= 2


class TestPhoenixPlanner:
    def _state(self, apps, node_count=4, capacity=4):
        nodes = [Node(f"node-{i}", Resources(capacity, capacity)) for i in range(node_count)]
        return ClusterState(nodes=nodes, applications=apps)

    def test_plan_activates_everything_when_capacity_allows(self, simple_app, second_app):
        state = self._state([simple_app, second_app], node_count=6)
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        assert len(plan.activated) == 7

    def test_plan_prefers_critical_under_crunch(self, simple_app, second_app):
        state = self._state([simple_app, second_app], node_count=6)
        state.fail_nodes(["node-0", "node-1", "node-2", "node-3"])  # 8 cpu left
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        activated = plan.activated_set()
        assert ("shop", "frontend") in activated
        assert ("shop", "catalog") in activated
        assert ("shop", "recommend") not in activated

    def test_plan_objective_recorded(self, simple_app):
        state = self._state([simple_app])
        plan = PhoenixPlanner(FairnessObjective()).plan(state)
        assert plan.objective == "fairness"

    def test_stateful_microservices_are_pinned(self):
        app = Application.from_microservices(
            "mixed",
            [
                make_microservice("api", criticality=1),
                make_microservice("db", criticality=5, stateful=True),
            ],
        )
        state = self._state([app], node_count=1)
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        assert ("mixed", "db") in plan.activated_set()

    def test_stateful_pinning_consumes_capacity_first(self):
        app = Application.from_microservices(
            "mixed",
            [
                make_microservice("api", cpu=3, memory=3, criticality=1),
                make_microservice("db", cpu=3, memory=3, criticality=5, stateful=True),
            ],
        )
        state = self._state([app], node_count=1, capacity=4)
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        # only 4 cpu total: db (stateful) is pinned, api no longer fits.
        assert ("mixed", "db") in plan.activated_set()
        assert ("mixed", "api") not in plan.activated_set()

    def test_app_ranks_exposed(self, simple_app, second_app):
        planner = PhoenixPlanner(RevenueObjective())
        ranks = planner.app_ranks({"shop": simple_app, "blog": second_app})
        assert ranks["shop"][0] == "frontend"
        assert ranks["blog"][0] == "api"
