"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Application, Node, Resources
from repro.cluster.state import ClusterState
from repro.core.objectives import RevenueObjective, water_fill_shares
from repro.core.packing import PackingHeuristic
from repro.core.planner import PhoenixPlanner, PriorityEstimator
from repro.criticality import CriticalityTag

from tests.conftest import make_microservice

# -- strategies -------------------------------------------------------------------

resource_values = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)

demands_strategy = st.dictionaries(
    keys=st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    values=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


@st.composite
def applications(draw):
    """Random applications with a random forest-shaped dependency graph."""
    count = draw(st.integers(min_value=1, max_value=10))
    microservices = []
    for index in range(count):
        microservices.append(
            make_microservice(
                f"ms{index}",
                cpu=draw(st.floats(min_value=0.5, max_value=4.0)),
                memory=draw(st.floats(min_value=0.5, max_value=4.0)),
                criticality=draw(st.integers(min_value=1, max_value=10)),
            )
        )
    edges = []
    for index in range(1, count):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        edges.append((f"ms{parent}", f"ms{index}"))
    use_graph = draw(st.booleans())
    return Application.from_microservices(
        "prop-app", microservices, dependency_edges=edges if use_graph else None
    )


# -- Resources ---------------------------------------------------------------------


class TestResourceProperties:
    @given(a=resource_values, b=resource_values, c=resource_values, d=resource_values)
    def test_addition_is_commutative(self, a, b, c, d):
        x, y = Resources(a, b), Resources(c, d)
        assert x + y == y + x

    @given(a=resource_values, b=resource_values, c=resource_values, d=resource_values)
    def test_add_then_subtract_is_identity(self, a, b, c, d):
        x, y = Resources(a, b), Resources(c, d)
        roundtrip = (x + y) - y
        assert abs(roundtrip.cpu - x.cpu) < 1e-6 * max(1.0, x.cpu)
        assert abs(roundtrip.memory - x.memory) < 1e-6 * max(1.0, x.memory)

    @given(a=resource_values, b=resource_values)
    def test_anything_fits_within_itself(self, a, b):
        r = Resources(a, b)
        assert r.fits_within(r)

    @given(a=resource_values, b=resource_values, c=resource_values, d=resource_values)
    def test_fits_within_is_monotone(self, a, b, c, d):
        small, extra = Resources(a, b), Resources(c, d)
        assert small.fits_within(small + extra)


# -- criticality tags -----------------------------------------------------------------


class TestCriticalityProperties:
    @given(level=st.integers(min_value=1, max_value=1000))
    def test_parse_roundtrip(self, level):
        tag = CriticalityTag(level)
        assert CriticalityTag.parse(str(tag)) == tag
        assert CriticalityTag.parse(level) == tag

    @given(a=st.integers(min_value=1, max_value=100), b=st.integers(min_value=1, max_value=100))
    def test_ordering_matches_levels(self, a, b):
        assert (CriticalityTag(a) < CriticalityTag(b)) == (a < b)
        assert CriticalityTag(a).is_more_critical_than(CriticalityTag(b)) == (a < b)


# -- water-filling fairness --------------------------------------------------------------


class TestWaterFillProperties:
    @given(demands=demands_strategy, capacity=st.floats(min_value=0.0, max_value=5000.0))
    def test_shares_bounded_by_demand_and_capacity(self, demands, capacity):
        shares = water_fill_shares(demands, capacity)
        assert set(shares) == set(demands)
        for app, share in shares.items():
            assert share <= demands[app] + 1e-6
            assert share >= -1e-9
        assert sum(shares.values()) <= capacity + 1e-6

    @given(demands=demands_strategy, capacity=st.floats(min_value=0.0, max_value=5000.0))
    def test_capacity_fully_used_when_demand_exceeds_it(self, demands, capacity):
        shares = water_fill_shares(demands, capacity)
        total_demand = sum(demands.values())
        if total_demand >= capacity:
            assert sum(shares.values()) >= capacity - max(1e-6, 1e-9 * capacity)
        else:
            assert sum(shares.values()) <= total_demand + 1e-6

    @given(demands=demands_strategy, capacity=st.floats(min_value=1.0, max_value=5000.0))
    def test_max_min_property(self, demands, capacity):
        """No application below its demand receives less than an equal split."""
        shares = water_fill_shares(demands, capacity)
        unsatisfied = [a for a in demands if shares[a] < demands[a] - 1e-6]
        if unsatisfied:
            floor = min(shares[a] for a in unsatisfied)
            assert floor >= capacity / len(demands) - 1e-6


# -- planner ---------------------------------------------------------------------------------


class TestPlannerProperties:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications())
    def test_priority_estimator_is_a_permutation(self, app):
        order = PriorityEstimator().rank(app)
        assert sorted(order) == sorted(app.microservices)

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications())
    def test_priority_estimator_prefix_dependency_closed(self, app):
        order = PriorityEstimator().rank(app)
        seen = set()
        for name in order:
            preds = app.predecessors(name)
            assert not preds or any(p in seen for p in preds)
            seen.add(name)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications(), node_count=st.integers(min_value=1, max_value=6))
    def test_plan_activation_never_exceeds_capacity(self, app, node_count):
        nodes = [Node(f"n{i}", Resources(6, 6)) for i in range(node_count)]
        state = ClusterState(nodes=nodes, applications=[app])
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        activated_cpu = sum(e.cpu for e in plan.activated)
        assert activated_cpu <= state.total_capacity().cpu + 1e-6

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications(), node_count=st.integers(min_value=1, max_value=6))
    def test_activated_is_prefix_of_per_app_rank(self, app, node_count):
        nodes = [Node(f"n{i}", Resources(6, 6)) for i in range(node_count)]
        state = ClusterState(nodes=nodes, applications=[app])
        planner = PhoenixPlanner(RevenueObjective())
        plan = planner.plan(state)
        rank = planner.app_ranks({app.name: app})[app.name]
        activated = plan.activated_for(app.name)
        assert activated == rank[: len(activated)]


# -- packing ------------------------------------------------------------------------------------


class TestPackingProperties:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications(), node_count=st.integers(min_value=1, max_value=8))
    def test_packing_never_violates_capacity(self, app, node_count):
        nodes = [Node(f"n{i}", Resources(5, 5)) for i in range(node_count)]
        state = ClusterState(nodes=nodes, applications=[app])
        planner = PhoenixPlanner(RevenueObjective())
        plan = planner.plan(state)
        working = state.copy()
        PackingHeuristic().pack(working, plan)
        for node in working.nodes.values():
            assert working.used_on(node.name).fits_within(node.capacity)

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(app=applications(), node_count=st.integers(min_value=2, max_value=8))
    def test_packed_microservices_are_subset_of_activated(self, app, node_count):
        nodes = [Node(f"n{i}", Resources(5, 5)) for i in range(node_count)]
        state = ClusterState(nodes=nodes, applications=[app])
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        working = state.copy()
        result = PackingHeuristic().pack(working, plan)
        activated = {(e.app, e.microservice) for e in plan.activated}
        placed = {(r.app, r.microservice) for r in result.assignment}
        assert placed <= activated
