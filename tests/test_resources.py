"""Tests for the Resources vector."""

import pytest

from repro.cluster.resources import Resources, total


class TestConstruction:
    def test_defaults_to_zero(self):
        assert Resources() == Resources(0.0, 0.0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            Resources(cpu=-1.0, memory=0.0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            Resources(cpu=0.0, memory=-2.0)

    def test_tiny_negative_roundoff_clamped_to_zero(self):
        r = Resources(cpu=-1e-12, memory=-1e-12)
        assert r.cpu == 0.0
        assert r.memory == 0.0

    def test_cpu_only_constructor(self):
        r = Resources.cpu_only(3.5)
        assert r.cpu == 3.5
        assert r.memory == 0.0

    def test_zero_constructor(self):
        assert Resources.zero().is_zero()


class TestArithmetic:
    def test_addition(self):
        assert Resources(1, 2) + Resources(3, 4) == Resources(4, 6)

    def test_subtraction(self):
        assert Resources(3, 4) - Resources(1, 2) == Resources(2, 2)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(ValueError):
            Resources(1, 1) - Resources(2, 2)

    def test_scalar_multiplication(self):
        assert Resources(1, 2) * 3 == Resources(3, 6)

    def test_right_multiplication(self):
        assert 2 * Resources(1, 2) == Resources(2, 4)

    def test_repeated_add_subtract_stays_at_zero(self):
        acc = Resources.zero()
        delta = Resources(0.1, 0.3)
        for _ in range(100):
            acc = acc + delta
        for _ in range(100):
            acc = acc - delta
        assert acc.cpu == pytest.approx(0.0, abs=1e-6)
        assert acc.memory == pytest.approx(0.0, abs=1e-6)


class TestComparisons:
    def test_fits_within_true(self):
        assert Resources(1, 1).fits_within(Resources(2, 2))

    def test_fits_within_equal(self):
        assert Resources(2, 2).fits_within(Resources(2, 2))

    def test_fits_within_false_on_cpu(self):
        assert not Resources(3, 1).fits_within(Resources(2, 2))

    def test_fits_within_false_on_memory(self):
        assert not Resources(1, 3).fits_within(Resources(2, 2))

    def test_dominant_dimension(self):
        assert Resources(1, 5).dominant == 5
        assert Resources(7, 5).dominant == 7

    def test_scalar_view_is_cpu(self):
        assert Resources(3, 9).scalar() == 3


class TestTotal:
    def test_total_of_empty_iterable(self):
        assert total([]) == Resources.zero()

    def test_total_sums_elementwise(self):
        assert total([Resources(1, 2), Resources(3, 4), Resources(5, 6)]) == Resources(9, 12)
