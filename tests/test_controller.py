"""Tests for the Phoenix controller and the StateBackend."""

import pytest

from repro.cluster import Node, Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.controller import PhoenixController, StateBackend
from repro.core.objectives import RevenueObjective
from repro.core.plan import Action, ActionKind


@pytest.fixture
def backend(simple_app, second_app):
    nodes = [Node(f"n{i}", Resources(4, 4)) for i in range(5)]
    state = ClusterState(nodes=nodes, applications=[simple_app, second_app])
    return StateBackend(state)


@pytest.fixture
def controller(backend):
    return PhoenixController(backend, RevenueObjective(), monitor_interval=15.0)


class TestStateBackend:
    def test_execute_start(self, backend):
        replica = ReplicaId("shop", "frontend", 0)
        backend.execute([Action(ActionKind.START, replica, target_node="n0")])
        assert backend.state.node_of(replica) == "n0"

    def test_execute_delete(self, backend):
        replica = ReplicaId("shop", "frontend", 0)
        backend.state.assign(replica, "n0")
        backend.execute([Action(ActionKind.DELETE, replica, source_node="n0")])
        assert backend.state.node_of(replica) is None

    def test_execute_migrate(self, backend):
        replica = ReplicaId("shop", "frontend", 0)
        backend.state.assign(replica, "n0")
        backend.execute([Action(ActionKind.MIGRATE, replica, source_node="n0", target_node="n1")])
        assert backend.state.node_of(replica) == "n1"

    def test_delete_of_unassigned_replica_is_noop(self, backend):
        replica = ReplicaId("shop", "frontend", 0)
        backend.execute([Action(ActionKind.DELETE, replica, source_node="n0")])
        assert backend.state.node_of(replica) is None


class TestController:
    def test_invalid_monitor_interval_rejected(self, backend):
        with pytest.raises(ValueError):
            PhoenixController(backend, RevenueObjective(), monitor_interval=0)

    def test_first_reconcile_places_everything(self, controller, backend):
        report = controller.reconcile(force=True)
        assert report.triggered
        assert report.actions_executed > 0
        active = backend.state.active_microservices()
        assert active["shop"] == set(backend.state.application("shop").microservices)

    def test_no_trigger_when_nothing_changed(self, controller):
        controller.reconcile(force=True)
        report = controller.reconcile()
        assert not report.triggered
        assert report.plan is None

    def test_failure_detection_triggers_replanning(self, controller, backend):
        controller.reconcile(force=True)
        backend.state.fail_nodes(["n0", "n1"])
        report = controller.reconcile()
        assert report.triggered
        assert report.failed_nodes == ["n0", "n1"]
        # critical services survive on the remaining capacity
        active = backend.state.active_microservices()
        assert "frontend" in active["shop"]
        assert "api" in active["blog"]

    def test_recovery_detection(self, controller, backend):
        controller.reconcile(force=True)
        backend.state.fail_nodes(["n0"])
        controller.reconcile()
        backend.state.recover_nodes(["n0"])
        report = controller.reconcile()
        assert report.recovered_nodes == ["n0"]

    def test_planning_time_recorded(self, controller):
        report = controller.reconcile(force=True)
        assert report.planning_seconds > 0

    def test_run_executes_multiple_rounds(self, controller):
        reports = controller.run(3)
        assert len(reports) == 3
        assert len(controller.history) == 3

    def test_run_rejects_negative_rounds(self, controller):
        with pytest.raises(ValueError):
            controller.run(-1)

    def test_reset_clears_history_and_detection(self, controller, backend):
        controller.reconcile(force=True)
        controller.reset()
        assert controller.history == []
        # After reset, pre-existing failures are reported as new.
        backend.state.fail_nodes(["n2"])
        report = controller.reconcile()
        assert "n2" in report.failed_nodes
