"""Unit tests for repro.obs: metrics registry, tracer, exposition, EventBus
isolation.

The observation-neutrality (on-vs-off byte-identity) suite lives in
``tests/test_obs_lockstep.py``; this file covers the instruments
themselves — counter/gauge/histogram semantics, the log-bucketed quantile
estimator's error bound, deterministic clocks, Prometheus rendering and
validation, span nesting and IPC primitives, and the EventBus subscriber
isolation regression.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro import obs
from repro.api.events import EventBus, FailureDetected, RecoveryDetected
from repro.obs import (
    MetricsRegistry,
    SpanRecord,
    TickClock,
    Tracer,
    host_block,
    render_prometheus,
    resolve_clock,
    validate_prometheus_text,
)


@pytest.fixture(autouse=True)
def _clean_default_obs():
    """Every test starts and ends with the process-default plane off+empty."""
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    obs.tracer().prefix = ""
    yield
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    obs.tracer().prefix = ""


# -- clocks and host metadata --------------------------------------------------


class TestClocks:
    def test_tick_clock_counts_deterministically(self):
        clock = TickClock(step=0.5)
        assert [clock() for _ in range(3)] == [0.0, 0.5, 1.0]

    def test_resolve_clock_reads_spec(self):
        clock = resolve_clock("tick:0.25")
        assert clock() == 0.0 and clock() == 0.25

    def test_resolve_clock_defaults_to_wall_clock(self):
        import time

        assert resolve_clock("") is time.perf_counter

    def test_host_block_shape(self):
        block = host_block()
        assert block["cpu_count"] >= 1
        assert block["underprovisioned"] is False  # no workers asked for
        huge = host_block(workers=10**6)
        assert huge["underprovisioned"] is True


# -- registry instruments ------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_and_labels(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7.5)
        registry.counter("shards", shard=1).inc()
        registry.counter("shards", shard=2).inc(3)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 7.5
        assert snap["counters"]["shards{shard=1}"] == 1
        assert snap["counters"]["shards{shard=2}"] == 3

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 0
        assert snap["gauges"]["g"] == 0.0
        assert snap["histograms"]["h"]["count"] == 0

    def test_force_inc_counts_while_disabled(self):
        registry = MetricsRegistry()
        registry.counter("errors").force_inc()
        assert registry.snapshot()["counters"]["errors"] == 1

    def test_histogram_exact_count_sum_max(self):
        registry = MetricsRegistry()
        registry.enable()
        hist = registry.histogram("h")
        for value in (0.5, 1.5, 4.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["max"] == 4.0

    def test_histogram_quantile_error_bound(self):
        """Log buckets at 4/octave: relative quantile error < ~20%."""
        registry = MetricsRegistry()
        registry.enable()
        hist = registry.histogram("h")
        rng = random.Random(7)
        values = sorted(rng.uniform(0.001, 10.0) for _ in range(2000))
        for value in values:
            hist.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            estimate = hist.quantile(q)
            assert abs(estimate - exact) / exact < 0.25, (q, exact, estimate)

    def test_histogram_non_positive_values_bucket_at_zero(self):
        registry = MetricsRegistry()
        registry.enable()
        hist = registry.histogram("h")
        hist.observe(0.0)
        hist.observe(-1.0)
        assert hist.count == 2
        assert hist.quantile(0.5) == 0.0

    def test_snapshot_jsonl_is_sorted_and_parseable(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        lines = registry.snapshot_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["metric"] for r in records if r["type"] == "counter"] == ["a", "z"]
        hist_record = next(r for r in records if r["type"] == "histogram")
        assert {"count", "sum", "max", "p50", "p90", "p99"} <= set(hist_record)

    def test_snapshot_without_timing_drops_wall_clock_fields(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.histogram("h").observe(1.0)
        record = json.loads(registry.snapshot_jsonl(include_timing=False))
        assert record == {"metric": "h", "type": "histogram", "count": 1}

    def test_reset_clears_instruments_not_enabled_flag(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("a").inc()
        registry.reset()
        assert registry.enabled
        assert registry.snapshot()["counters"] == {}


# -- Prometheus exposition -----------------------------------------------------


class TestPrometheus:
    def test_registry_text_validates(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("engine.rounds").inc(3)
        registry.counter("fleet.shard_restarts", shard=0).inc()
        registry.gauge("serve.queue_depth").set(4)
        registry.histogram("fleet.ship_seconds").observe(0.01)
        text = registry.prometheus_text()
        assert validate_prometheus_text(text) == []
        assert "# TYPE repro_obs_engine_rounds_total counter" in text
        assert 'repro_obs_fleet_shard_restarts_total{shard="0"} 1' in text
        assert 'quantile="0.5"' in text

    def test_render_prometheus_quantile_mapping(self):
        text = render_prometheus(
            summaries={"lat": {"p50": 1.0, "p999": 2.0, "count": 5, "max": 2.0}}
        )
        assert 'lat{quantile="0.5"} 1.0' in text
        assert 'lat{quantile="0.999"} 2.0' in text
        assert "lat_count 5" in text
        assert "# TYPE lat_max gauge" in text

    def test_validator_flags_garbage(self):
        assert validate_prometheus_text("9metric 1\n")
        assert validate_prometheus_text("# TYPE x rocket\nx 1\n")
        assert validate_prometheus_text("ok_metric not_a_number\n")
        assert validate_prometheus_text("# TYPE lonely counter\n")
        assert validate_prometheus_text("") == []


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(clock=TickClock())
        with tracer.span("x") as span:
            span.set(k=1)
        assert list(tracer.finished) == []

    def test_nesting_records_parent_child(self):
        tracer = Tracer(clock=TickClock())
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner", depth=1):
                pass
        inner, outer = tracer.finished
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""
        assert inner.attrs == {"depth": 1}
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = Tracer(clock=TickClock())
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished
        assert span.attrs["error"] == "ValueError"
        assert tracer.current_id() == ""  # context restored

    def test_prefix_attach_drain_adopt_merge(self):
        """The worker-side IPC protocol in miniature."""
        parent = Tracer(clock=TickClock())
        parent.enable()
        with parent.span("fleet.ship"):
            parent_id = parent.current_id()
            worker = Tracer(clock=TickClock(), prefix="w0i1.")
            worker.enable()
            with worker.attach(parent_id):
                with worker.span("shard.round"):
                    pass
            shipped = worker.drain()
            parent.adopt(shipped)
        assert not worker.finished  # drained
        spans = {span.span_id: span for span in parent.finished}
        worker_span = next(s for s in spans.values() if s.name == "shard.round")
        assert worker_span.span_id.startswith("w0i1.")
        assert worker_span.parent_id in spans  # one merged tree
        assert spans[worker_span.parent_id].name == "fleet.ship"

    def test_ids_are_deterministic(self):
        first, second = Tracer(clock=TickClock()), Tracer(clock=TickClock())
        for tracer in (first, second):
            tracer.enable()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        assert [s.span_id for s in first.finished] == [
            s.span_id for s in second.finished
        ]

    def test_span_limit_bounds_memory(self):
        tracer = Tracer(clock=TickClock(), limit=4)
        tracer.enable()
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished) == 4
        assert tracer.finished[-1].name == "s9"

    def test_to_jsonl_is_sorted_compact(self):
        tracer = Tracer(clock=TickClock())
        tracer.enable()
        with tracer.span("x", b=2, a=1):
            pass
        record = json.loads(tracer.to_jsonl())
        assert record["name"] == "x"
        assert list(record["attrs"]) == ["a", "b"]
        bare = json.loads(tracer.to_jsonl(include_timing=False))
        assert "start" not in bare and "end" not in bare

    def test_span_record_round_trips_the_wire_codec(self):
        from repro.fleet.wire import dumps, loads

        span = SpanRecord(
            name="shard.round",
            span_id="w1i2.5",
            parent_id="3",
            start=1.5,
            end=2.25,
            attrs={"steps": 4},
        )
        assert loads(dumps([span])) == [span]


# -- EventBus subscriber isolation ---------------------------------------------


class TestEventBusIsolation:
    def test_raising_subscriber_does_not_stop_delivery(self):
        bus = EventBus()
        seen = []

        def broken(event):
            raise RuntimeError("broken observer")

        bus.subscribe(broken)
        bus.subscribe(seen.append)
        bus.emit(FailureDetected(nodes=("n1",)))
        bus.emit(RecoveryDetected(nodes=("n1",)))
        assert len(seen) == 2  # delivery continued past the raiser

    def test_subscriber_errors_are_counted_even_while_obs_is_off(self):
        assert not obs.enabled()
        bus = EventBus()
        bus.subscribe(lambda event: (_ for _ in ()).throw(ValueError("x")))
        bus.emit(FailureDetected(nodes=("n1",)))
        snap = obs.registry().snapshot()
        assert snap["counters"]["obs.subscriber_errors"] == 1

    def test_strict_mode_reraises_after_counting(self):
        bus = EventBus(strict=True)
        bus.subscribe(lambda event: (_ for _ in ()).throw(ValueError("x")))
        with pytest.raises(ValueError):
            bus.emit(FailureDetected(nodes=("n1",)))
        assert obs.registry().snapshot()["counters"]["obs.subscriber_errors"] == 1
