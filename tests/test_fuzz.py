"""The chaos fuzzer: seeded determinism, shrinking, and planted-fault capture.

The load-bearing suite is ``TestPlantedFault`` (the PR's acceptance
criterion): an engine with a deliberately broken packing stage is handed to
the fuzzer, which must find the invariant violation, shrink the failing
program to a minimal schema-v1 reproducer, and that reproducer must
re-trigger the same invariant on replay.
"""

from __future__ import annotations

import pytest

from repro.adaptlab import build_environment
from repro.chaos.fuzz import (
    FuzzConfig,
    drive_trace,
    random_program,
    refail_interleaving,
    replay_reproducer,
    run_fuzz,
    shrink_trace,
)
from repro.core.packing import PackingHeuristic
from repro.traces import NodeFailure, NodeRecovery, Trace
import repro.api as api

NODES = [f"node-{i}" for i in range(16)]


@pytest.fixture(scope="module")
def fuzz_environment():
    return build_environment(node_count=12, n_apps=2, target_utilization=0.6, seed=2025)


class TestProgramGeneration:
    def test_same_seed_is_byte_identical(self):
        a = random_program(NODES, horizon=900.0, seed=11)
        b = random_program(NODES, horizon=900.0, seed=11)
        assert a.dumps() == b.dumps()

    def test_different_seeds_differ(self):
        a = random_program(NODES, horizon=900.0, seed=1)
        b = random_program(NODES, horizon=900.0, seed=2)
        assert a.dumps() != b.dumps()

    @pytest.mark.parametrize("seed", range(6))
    def test_programs_validate_and_end_recovered(self, seed):
        program = random_program(NODES, horizon=900.0, seed=seed)
        program.validate()
        closing = program.events[-1]
        assert isinstance(closing, NodeRecovery)
        assert set(closing.nodes) == set(NODES)
        assert program.metadata["generator"] == "fuzz_program"
        assert 1 <= len(program.metadata["segments"]) <= 3

    def test_case_seed_is_pure(self):
        config = FuzzConfig(seed=7)
        assert config.case_seed(3) == config.case_seed(3)
        assert config.case_seed(3) != config.case_seed(4)
        assert config.case_seed(0) != FuzzConfig(seed=8).case_seed(0)

    def test_refail_interleaving_refails_down_nodes(self):
        trace = refail_interleaving(NODES, horizon=600.0, seed=0)
        trace.validate()
        failed: set[str] = set()
        refailed_while_down = False
        for event in trace.events:
            if isinstance(event, NodeFailure):
                if failed & set(event.nodes):
                    refailed_while_down = True
                failed |= set(event.nodes)
            else:
                failed -= set(event.nodes)
        assert refailed_while_down
        assert not failed  # everything recovers by the end

    def test_refail_interleaving_rejects_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            refail_interleaving(NODES, horizon=0.0)


class TestShrinkTrace:
    def _numbered(self, count: int) -> Trace:
        events = [NodeFailure(time=float(i), nodes=(f"n{i}",)) for i in range(count)]
        return Trace(events=events, metadata={"origin": "unit"})

    def test_shrinks_to_exactly_the_needed_events(self):
        trace = self._numbered(16)

        def predicate(events):
            times = {event.time for event in events}
            return {3.0, 11.0} <= times

        shrunk = shrink_trace(trace, predicate)
        assert [event.time for event in shrunk.events] == [3.0, 11.0]
        assert shrunk.metadata == {"origin": "unit"}

    def test_irreducible_trace_is_unchanged(self):
        trace = self._numbered(4)
        shrunk = shrink_trace(trace, lambda events: len(events) == 4)
        assert [e.time for e in shrunk.events] == [0.0, 1.0, 2.0, 3.0]

    def test_attempt_budget_is_respected(self):
        trace = self._numbered(64)
        calls = 0

        def predicate(events):
            nonlocal calls
            calls += 1
            return True

        shrink_trace(trace, predicate, max_attempts=10)
        assert calls <= 10


class TestDriveTrace:
    def test_stock_engine_is_clean(self, fuzz_environment):
        nodes = list(fuzz_environment.state.nodes)
        program = random_program(nodes, horizon=600.0, seed=0)
        result = drive_trace(
            api.engine("revenue"), fuzz_environment.fresh_state(), program
        )
        assert result.ok
        assert result.steps > 0
        assert result.final_failed_nodes == 0
        assert result.event_kinds

    def test_lockstep_twin_is_clean(self, fuzz_environment):
        nodes = list(fuzz_environment.state.nodes)
        program = random_program(nodes, horizon=600.0, seed=1)
        result = drive_trace(
            api.engine("revenue", incremental=True),
            fuzz_environment.fresh_state(),
            program,
            lockstep_engine=api.engine("revenue", incremental=False),
        )
        assert result.ok


class _LatchedDropPacker:
    """A planted recovery bug: packs correctly until it has ever seen a
    failed node, then silently drops one application's placements.

    Not a ``PackingHeuristic`` subclass on purpose — the engine takes the
    plain (non-incremental-wrapped) packing path, so the fault survives
    exactly as written.
    """

    def __init__(self) -> None:
        self._inner = PackingHeuristic()
        self._latched = False

    def pack(self, state, plan):
        if state.failed_count:
            self._latched = True
        result = self._inner.pack(state, plan)
        if self._latched:
            victim = min(state.applications)
            result.assignment = {
                replica: node
                for replica, node in result.assignment.items()
                if replica.app != victim
            }
        return result


def _broken_engine_factory(config: FuzzConfig):
    return api.engine(config.objective, packer=_LatchedDropPacker())


PLANT_CONFIG = FuzzConfig(
    cases=6,
    node_count=12,
    n_apps=2,
    horizon=600.0,
    seed=0,
    lockstep=False,
    max_shrink_attempts=200,
)


class TestPlantedFault:
    @pytest.fixture(scope="class")
    def report(self, fuzz_environment):
        return run_fuzz(
            PLANT_CONFIG,
            engine_factory=_broken_engine_factory,
            environment=fuzz_environment,
        )

    def test_fuzzer_finds_the_planted_violation(self, report):
        assert report.violation is not None
        assert report.violation.invariant == "full-recovery-availability"
        assert "FAIL" in report.to_text()

    def test_reproducer_is_minimal(self, report):
        violation = report.violation
        # The latched fault needs a failure (to latch) and a full recovery
        # (to make the dropped app visible) — nothing else should survive.
        assert len(violation.reproducer) < violation.events_before_shrink
        assert len(violation.reproducer) <= 3

    def test_reproducer_metadata_is_self_contained(self, report):
        meta = report.violation.reproducer.metadata
        assert meta["generator"] == "fuzz_reproducer"
        assert meta["invariant"] == "full-recovery-availability"
        assert meta["seed"] == report.violation.seed
        assert meta["nodes"] == PLANT_CONFIG.node_count
        assert meta["events_before_shrink"] == report.violation.events_before_shrink

    def test_reproducer_retriggers_same_invariant(self, report, tmp_path, fuzz_environment):
        path = tmp_path / "reproducer.jsonl"
        report.violation.write(path)
        reloaded = Trace.read(path)  # valid schema-v1 JSONL end to end
        violations = replay_reproducer(
            reloaded,
            engine_factory=_broken_engine_factory,
            environment=fuzz_environment,
        )
        assert violations
        assert violations[0][1].invariant == "full-recovery-availability"

    def test_reproducer_is_clean_on_the_stock_engine(self, report, fuzz_environment):
        violations = replay_reproducer(
            report.violation.reproducer,
            config=PLANT_CONFIG,
            environment=fuzz_environment,
        )
        assert violations == []

    def test_fuzz_run_is_deterministic(self, report, fuzz_environment):
        again = run_fuzz(
            PLANT_CONFIG,
            engine_factory=_broken_engine_factory,
            environment=fuzz_environment,
        )
        assert again.violation is not None
        assert again.violation.case == report.violation.case
        assert again.violation.reproducer.dumps() == report.violation.reproducer.dumps()
        assert again.to_text() == report.to_text()


class TestCleanRun:
    def test_stock_engine_survives_the_budget(self, fuzz_environment):
        config = FuzzConfig(cases=2, node_count=12, n_apps=2, horizon=600.0, seed=3)
        report = run_fuzz(config, environment=fuzz_environment)
        assert report.ok
        assert report.cases == 2
        assert "OK" in report.to_text()
