"""Tests for the Phoenix scheduler (action diffing) and apply_schedule."""

import pytest

from repro.cluster import Application, Node, Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import RevenueObjective
from repro.core.plan import ActionKind, ActivationPlan, RankedMicroservice
from repro.core.planner import PhoenixPlanner
from repro.core.scheduler import PhoenixScheduler, apply_schedule

from tests.conftest import make_microservice


def entry(app, ms, cpu):
    return RankedMicroservice(app, ms, cpu)


@pytest.fixture
def scheduler():
    return PhoenixScheduler()


@pytest.fixture
def planner():
    return PhoenixPlanner(RevenueObjective())


class TestDiff:
    def test_fresh_cluster_generates_only_starts(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(8, 8)) for i in range(2)], applications=[simple_app]
        )
        schedule = scheduler.schedule(state, planner.plan(state))
        assert len(schedule.starts) == 4
        assert not schedule.deletions and not schedule.migrations

    def test_running_on_healthy_node_produces_no_action(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8)), Node("n1", Resources(8, 8))],
            applications=[simple_app],
        )
        for ms in ["frontend", "catalog"]:
            state.assign(ReplicaId("shop", ms, 0), "n0")
        for ms in ["ads", "recommend"]:
            state.assign(ReplicaId("shop", ms, 0), "n1")
        schedule = scheduler.schedule(state, planner.plan(state))
        assert len(schedule.ordered_actions()) == 0

    def test_failed_node_replicas_become_starts_not_migrations(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8)), Node("n1", Resources(8, 8))],
            applications=[simple_app],
        )
        state.assign(ReplicaId("shop", "frontend", 0), "n0")
        state.fail_nodes(["n0"])
        schedule = scheduler.schedule(state, planner.plan(state))
        kinds = {a.replica.microservice: a.kind for a in schedule.ordered_actions()}
        assert kinds["frontend"] is ActionKind.START

    def test_deactivated_containers_become_deletions(self, scheduler):
        app = Application.from_microservices(
            "a",
            [make_microservice("keep", criticality=1), make_microservice("drop", criticality=5)],
        )
        state = ClusterState(nodes=[Node("n0", Resources(8, 8))], applications=[app])
        state.assign(ReplicaId("a", "keep", 0), "n0")
        state.assign(ReplicaId("a", "drop", 0), "n0")
        plan = ActivationPlan(
            ranked=[entry("a", "keep", 2), entry("a", "drop", 2)],
            activated=[entry("a", "keep", 2)],
        )
        schedule = scheduler.schedule(state, plan)
        deletions = [a.replica.microservice for a in schedule.deletions]
        assert deletions == ["drop"]

    def test_no_delete_issued_for_pod_on_failed_node(self, scheduler):
        app = Application.from_microservices(
            "a",
            [make_microservice("keep", criticality=1), make_microservice("drop", criticality=5)],
        )
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8)), Node("n1", Resources(8, 8))], applications=[app]
        )
        state.assign(ReplicaId("a", "keep", 0), "n0")
        state.assign(ReplicaId("a", "drop", 0), "n1")
        state.fail_nodes(["n1"])
        plan = ActivationPlan(
            ranked=[entry("a", "keep", 2), entry("a", "drop", 2)],
            activated=[entry("a", "keep", 2)],
        )
        schedule = scheduler.schedule(state, plan)
        assert schedule.deletions == []

    def test_action_order_is_delete_migrate_start(self, scheduler):
        ordered = [ActionKind.DELETE, ActionKind.MIGRATE, ActionKind.START]
        app = Application.from_microservices(
            "a",
            [
                make_microservice("keep", cpu=3, memory=3, criticality=1),
                make_microservice("drop", cpu=2, memory=2, criticality=5),
                make_microservice("new", cpu=2, memory=2, criticality=2),
            ],
        )
        state = ClusterState(
            nodes=[Node("n0", Resources(4, 4)), Node("n1", Resources(4, 4))],
            applications=[app],
        )
        state.assign(ReplicaId("a", "drop", 0), "n0")
        state.assign(ReplicaId("a", "keep", 0), "n1")
        plan = ActivationPlan(
            ranked=[entry("a", "keep", 3), entry("a", "new", 2), entry("a", "drop", 2)],
            activated=[entry("a", "keep", 3), entry("a", "new", 2)],
        )
        schedule = scheduler.schedule(state, plan)
        kinds = [a.kind for a in schedule.ordered_actions()]
        assert kinds == sorted(kinds, key=ordered.index)

    def test_target_assignment_respects_capacity(self, scheduler, planner, simple_app, second_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(4, 4)) for i in range(4)],
            applications=[simple_app, second_app],
        )
        schedule = scheduler.schedule(state, planner.plan(state))
        per_node: dict[str, float] = {}
        for replica, node in schedule.target_assignment.items():
            app = simple_app if replica.app == "shop" else second_app
            per_node[node] = per_node.get(node, 0.0) + app.get(replica.microservice).resources.cpu
        assert all(used <= 4 + 1e-9 for used in per_node.values())


class TestApplySchedule:
    def test_apply_schedule_reaches_target(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(8, 8)) for i in range(2)], applications=[simple_app]
        )
        schedule = scheduler.schedule(state, planner.plan(state))
        apply_schedule(state, schedule)
        assert state.assignments == schedule.target_assignment

    def test_apply_schedule_is_idempotent_on_reschedule(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(8, 8)) for i in range(2)], applications=[simple_app]
        )
        schedule = scheduler.schedule(state, planner.plan(state))
        apply_schedule(state, schedule)
        second = scheduler.schedule(state, planner.plan(state))
        assert len(second.ordered_actions()) == 0

    def test_does_not_mutate_input_state(self, scheduler, planner, simple_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(8, 8)) for i in range(2)], applications=[simple_app]
        )
        scheduler.schedule(state, planner.plan(state))
        assert len(state.assignments) == 0
