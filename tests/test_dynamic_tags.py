"""Tests for dynamic criticality tagging and the runtime tag API (§7)."""

import pytest

from repro.cluster import Application
from repro.core.dynamic_tags import (
    CriticalityTagAPI,
    DynamicTaggingPolicy,
    TagRule,
    TagUpdateRejected,
    TaggingContext,
    business_hours_rule,
    off_hours_rule,
    overload_rule,
)
from repro.criticality import CriticalityTag

from tests.conftest import make_microservice


@pytest.fixture
def reporting_app():
    """An app whose reporting pipeline matters during business hours only."""
    return Application.from_microservices(
        "analytics",
        [
            make_microservice("ingest", criticality=1),
            make_microservice("reports", criticality=6),
            make_microservice("alerts", criticality=2),
        ],
        dependency_edges=[("ingest", "reports"), ("ingest", "alerts")],
    )


class TestTaggingContext:
    def test_invalid_hour_rejected(self):
        with pytest.raises(ValueError):
            TaggingContext(hour_of_day=24.0)

    def test_invalid_day_rejected(self):
        with pytest.raises(ValueError):
            TaggingContext(day_of_week=7)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            TaggingContext(load_factor=-0.1)

    def test_business_hours_detection(self):
        assert TaggingContext(hour_of_day=10, day_of_week=2).is_business_hours
        assert not TaggingContext(hour_of_day=22, day_of_week=2).is_business_hours
        assert not TaggingContext(hour_of_day=10, day_of_week=6).is_business_hours

    def test_weekend_detection(self):
        assert TaggingContext(day_of_week=5).is_weekend
        assert not TaggingContext(day_of_week=4).is_weekend


class TestDynamicTaggingPolicy:
    def test_rule_with_unknown_microservice_rejected(self, reporting_app):
        policy = DynamicTaggingPolicy(reporting_app)
        with pytest.raises(ValueError):
            policy.add_rule(business_hours_rule("bad", {"ghost": 1}))

    def test_no_rules_keeps_static_tags(self, reporting_app):
        policy = DynamicTaggingPolicy(reporting_app)
        context = TaggingContext(hour_of_day=10, day_of_week=1)
        assert policy.tags_for(context) == reporting_app.tags()

    def test_business_hours_promotion(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app, [business_hours_rule("promote-reports", {"reports": 2})]
        )
        day = TaggingContext(hour_of_day=11, day_of_week=1)
        night = TaggingContext(hour_of_day=2, day_of_week=1)
        assert policy.tags_for(day)["reports"] == CriticalityTag(2)
        assert policy.tags_for(night)["reports"] == CriticalityTag(6)

    def test_off_hours_demotion(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app, [off_hours_rule("demote-alerts", {"alerts": 8})]
        )
        night = TaggingContext(hour_of_day=2, day_of_week=1)
        assert policy.tags_for(night)["alerts"] == CriticalityTag(8)

    def test_overload_rule_uses_load_factor(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app, [overload_rule("shed-reports", {"reports": 10}, load_threshold=1.5)]
        )
        calm = TaggingContext(load_factor=1.0)
        overloaded = TaggingContext(load_factor=2.0)
        assert policy.tags_for(calm)["reports"] == CriticalityTag(6)
        assert policy.tags_for(overloaded)["reports"] == CriticalityTag(10)

    def test_later_rules_override_earlier_ones(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app,
            [
                TagRule("first", lambda ctx: True, {"reports": CriticalityTag(3)}),
                TagRule("second", lambda ctx: True, {"reports": CriticalityTag(9)}),
            ],
        )
        assert policy.tags_for(TaggingContext())["reports"] == CriticalityTag(9)

    def test_retagged_returns_new_application(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app, [business_hours_rule("promote", {"reports": 1})]
        )
        retagged = policy.retagged(TaggingContext(hour_of_day=10, day_of_week=0))
        assert retagged.criticality_of("reports") == CriticalityTag(1)
        assert reporting_app.criticality_of("reports") == CriticalityTag(6)

    def test_changed_microservices_reports_old_and_new(self, reporting_app):
        policy = DynamicTaggingPolicy(
            reporting_app, [business_hours_rule("promote", {"reports": 2})]
        )
        changes = policy.changed_microservices(TaggingContext(hour_of_day=10, day_of_week=0))
        assert changes == {"reports": (CriticalityTag(6), CriticalityTag(2))}


class TestCriticalityTagAPI:
    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            CriticalityTagAPI(max_critical_fraction=0.0)

    def test_register_and_lookup(self, reporting_app):
        api = CriticalityTagAPI()
        api.register(reporting_app)
        assert api.application("analytics") is reporting_app
        assert "analytics" in api.applications()

    def test_duplicate_registration_rejected(self, reporting_app):
        api = CriticalityTagAPI()
        api.register(reporting_app)
        with pytest.raises(ValueError):
            api.register(reporting_app)

    def test_update_unknown_app_rejected(self, reporting_app):
        api = CriticalityTagAPI()
        with pytest.raises(KeyError):
            api.update_tags("ghost", {"reports": 1})

    def test_update_unknown_microservice_rejected(self, reporting_app):
        api = CriticalityTagAPI()
        api.register(reporting_app)
        with pytest.raises(TagUpdateRejected):
            api.update_tags("analytics", {"ghost": 1})

    def test_update_applies_and_audits(self, reporting_app):
        api = CriticalityTagAPI()
        api.register(reporting_app)
        updated = api.update_tags("analytics", {"reports": 3})
        assert updated.criticality_of("reports") == CriticalityTag(3)
        assert any(entry[1] == "update" for entry in api.audit_log)

    def test_over_tagging_rejected_by_operator_guard(self, reporting_app):
        api = CriticalityTagAPI(max_critical_fraction=0.5)
        api.register(reporting_app)
        with pytest.raises(TagUpdateRejected):
            api.update_tags("analytics", {"reports": 1, "alerts": 1})

    def test_registration_guard_rejects_all_critical_apps(self):
        everything_critical = Application.from_microservices(
            "greedy",
            [make_microservice("a", criticality=1), make_microservice("b", criticality=1)],
        )
        api = CriticalityTagAPI(max_critical_fraction=0.6)
        with pytest.raises(TagUpdateRejected):
            api.register(everything_critical)

    def test_apply_policy_round_trips_through_api(self, reporting_app):
        api = CriticalityTagAPI()
        api.register(reporting_app)
        policy = DynamicTaggingPolicy(
            reporting_app, [business_hours_rule("promote", {"reports": 2})]
        )
        updated = api.apply_policy(policy, TaggingContext(hour_of_day=10, day_of_week=0))
        assert updated.criticality_of("reports") == CriticalityTag(2)
        # Off hours: no change, no new audit entry beyond the previous update.
        entries_before = len(api.audit_log)
        api.apply_policy(policy, TaggingContext(hour_of_day=2, day_of_week=0))
        assert len(api.audit_log) == entries_before


class TestDynamicTagsDrivePlanning:
    def test_planner_honours_dynamic_tags(self, reporting_app):
        """Promoting a service at runtime changes what Phoenix keeps alive."""
        from repro.cluster import Node, Resources
        from repro.cluster.state import ClusterState
        from repro.core.objectives import RevenueObjective
        from repro.core.planner import PhoenixPlanner

        policy = DynamicTaggingPolicy(
            reporting_app, [business_hours_rule("promote-reports", {"reports": 1, "alerts": 9})]
        )
        planner = PhoenixPlanner(RevenueObjective())

        def plan_with(app):
            state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
            return planner.plan(state).activated_set()

        night_plan = plan_with(policy.retagged(TaggingContext(hour_of_day=2, day_of_week=0)))
        day_plan = plan_with(policy.retagged(TaggingContext(hour_of_day=10, day_of_week=0)))
        # Only 4 CPU: at night ingest+alerts win, during the day ingest+reports.
        assert ("analytics", "alerts") in night_plan
        assert ("analytics", "reports") not in night_plan
        assert ("analytics", "reports") in day_plan
        assert ("analytics", "alerts") not in day_plan
