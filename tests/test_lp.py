"""Tests for the LPCost / LPFair ILP formulations."""

import pytest

from repro.cluster import Node, Resources
from repro.cluster.state import ClusterState
from repro.core.lp import LPCost, LPFair, LPSizeError
from repro.core.scheduler import apply_schedule



@pytest.fixture
def two_app_state(simple_app, second_app):
    nodes = [Node(f"n{i}", Resources(4, 4)) for i in range(4)]
    return ClusterState(nodes=nodes, applications=[simple_app, second_app])


class TestLPCost:
    def test_everything_activated_when_capacity_allows(self, two_app_state):
        solution = LPCost(time_limit=20).solve(two_app_state)
        assert solution.status == "optimal"
        assert len(solution.activated) == 7

    def test_placement_respects_capacity(self, two_app_state):
        solution = LPCost(time_limit=20).solve(two_app_state)
        per_node: dict[str, float] = {}
        for (app, ms), node in solution.placement.items():
            per_node[node] = per_node.get(node, 0.0) + two_app_state.microservice(app, ms).resources.cpu
        assert all(v <= 4 + 1e-6 for v in per_node.values())

    def test_prefers_expensive_app_under_crunch(self, two_app_state):
        two_app_state.fail_nodes(["n0", "n1", "n2"])  # 4 cpu left
        solution = LPCost(time_limit=20).solve(two_app_state)
        activated_apps = {app for app, _ in solution.activated}
        # shop pays 2.0/unit, blog pays 1.0/unit: shop activated first.
        assert "shop" in activated_apps

    def test_criticality_constraint_holds(self, two_app_state):
        two_app_state.fail_nodes(["n0", "n1"])
        solution = LPCost(time_limit=20).solve(two_app_state)
        for app_name, app in two_app_state.applications.items():
            activated_levels = [
                app.criticality_of(ms).level for a, ms in solution.activated if a == app_name
            ]
            skipped_levels = [
                ms.criticality.level
                for ms in app
                if (app_name, ms.name) not in solution.activated
            ]
            # No skipped microservice may be strictly more critical than an
            # activated one of the same app (Eq. 1).
            if activated_levels and skipped_levels:
                assert min(skipped_levels) >= max(activated_levels)

    def test_dependency_constraint_holds(self, simple_app):
        nodes = [Node("n0", Resources(4, 4))]
        state = ClusterState(nodes=nodes, applications=[simple_app])
        solution = LPCost(time_limit=20).solve(state)
        activated = {ms for _, ms in solution.activated}
        for ms in activated:
            preds = simple_app.predecessors(ms)
            assert not preds or any(p in activated for p in preds)

    def test_schedule_plan_applies_cleanly(self, two_app_state):
        solution = LPCost(time_limit=20).solve(two_app_state)
        schedule = solution.to_schedule_plan(two_app_state)
        apply_schedule(two_app_state, schedule)
        assert len(two_app_state.assignments) == len(solution.placement)

    def test_size_guard(self, two_app_state):
        with pytest.raises(LPSizeError):
            LPCost(max_variables=10).solve(two_app_state)

    def test_activation_plan_conversion(self, two_app_state):
        plan = LPCost(time_limit=20).plan(two_app_state)
        assert plan.objective == "lp-cost"
        assert len(plan.activated) == len(plan.ranked)


class TestLPFair:
    def test_fair_lp_respects_fair_share_caps(self, two_app_state):
        two_app_state.fail_nodes(["n0", "n1"])  # 8 cpu left; demands are 8 and 6
        solution = LPFair(time_limit=20).solve(two_app_state)
        usage = {"shop": 0.0, "blog": 0.0}
        for app, ms in solution.activated:
            usage[app] += two_app_state.microservice(app, ms).total_resources.cpu
        # fair shares are 4/4: no app may exceed its share
        assert usage["shop"] <= 4 + 1e-6
        assert usage["blog"] <= 4 + 1e-6

    def test_fair_lp_activates_both_apps(self, two_app_state):
        two_app_state.fail_nodes(["n0", "n1"])
        solution = LPFair(time_limit=20).solve(two_app_state)
        activated_apps = {app for app, _ in solution.activated}
        assert activated_apps == {"shop", "blog"}

    def test_full_capacity_activates_everything(self, two_app_state):
        solution = LPFair(time_limit=20).solve(two_app_state)
        assert len(solution.activated) == 7

    def test_solve_time_recorded(self, two_app_state):
        solution = LPFair(time_limit=20).solve(two_app_state)
        assert solution.solve_time > 0
