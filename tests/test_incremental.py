"""Incremental reconciliation: dirty tracking, byte-identity and fallbacks.

The centerpiece is the churn fuzz suite: randomized seeded traces (mixed
failures/recoveries, recover-then-refail within one round, storm bursts)
drive three engines — incremental, full-recompute and golden-reference —
in lockstep for hundreds of steps, asserting byte-identical plans, target
assignments, action lists and resulting states at every single step.
"""

from __future__ import annotations

import random

import pytest

import repro.api as api
from repro.adaptlab import build_environment
from repro.apps import build_hotel_reservation, build_overleaf
from repro.chaos import check_equivalence, verify_invariants
from repro.cluster import ClusterState, Node, ReplicaId, Resources
from repro.traces import generators
from repro.traces.replayer import TraceReplayer


def _app_cluster(node_count: int = 24, headroom: float = 1.3) -> ClusterState:
    """Uniform cluster hosting the two multi-replica app templates.

    Sized with modest headroom so larger failures force the packer through
    its migration and delete-lower-ranks prongs, not just best-fit.
    """
    apps = [build_overleaf().application, build_hotel_reservation().application]
    demand_cpu = sum(app.total_demand().cpu for app in apps)
    demand_mem = sum(app.total_demand().memory for app in apps)
    largest = max(
        max(ms.resources.cpu for app in apps for ms in app),
        max(ms.resources.memory for app in apps for ms in app),
    )
    per_node = max(
        demand_cpu * headroom / node_count,
        demand_mem * headroom / node_count,
        largest * 1.1,
    )
    nodes = [Node(f"node-{i}", Resources(per_node, per_node)) for i in range(node_count)]
    return ClusterState(nodes=nodes, applications=apps)


def _report_fingerprint(report):
    """Everything observable about one reconcile round, for equality checks."""
    plan = report.plan
    schedule = report.schedule
    return {
        "triggered": report.triggered,
        "failed": report.failed_nodes,
        "recovered": report.recovered_nodes,
        "ranked": None if plan is None else list(plan.ranked),
        "activated": None if plan is None else list(plan.activated),
        "capacity": None if plan is None else plan.capacity,
        "target": None if schedule is None else dict(schedule.target_assignment),
        "actions": None if schedule is None else list(schedule.actions),
        "unplaced": None if schedule is None else list(schedule.unplaced),
        "executed": report.actions_executed,
    }


def _state_fingerprint(state: ClusterState):
    return {
        "assignments": dict(state.assignments),
        "failed": state.failed_names(),
        "active": state.active_microservices(),
        "running": state.running_replica_counts(),
        "summary": state.summary(),
    }


class TestChurnFuzzEquivalence:
    """incremental == full == reference, byte for byte, over long churn."""

    ENGINES = {
        "inc": lambda: api.engine("revenue"),
        "full": lambda: api.engine("revenue", incremental=False),
        "ref": lambda: api.engine("revenue", implementation="reference"),
    }

    def _run_lockstep(self, states, steps, rng, storm_every=37):
        engines = {name: factory() for name, factory in self.ENGINES.items()}
        for name, engine in engines.items():
            engine.reconcile(states[name], force=True)
        probe = states["inc"]
        for step in range(steps):
            healthy = sorted(n.name for n in probe.healthy_nodes())
            failed = sorted(probe.failed_names())
            ops: list[tuple[str, list[str]]] = []
            roll = rng.random()
            if step and step % storm_every == 0 and len(healthy) > 4:
                # Storm burst: enough nodes at once to cross the dirty-node
                # threshold and exercise the full-recompute fallback.
                ops.append(("fail", rng.sample(healthy, max(2, len(healthy) // 2))))
            elif roll < 0.35 and healthy:
                ops.append(("fail", rng.sample(healthy, min(len(healthy), rng.randint(1, 3)))))
            elif roll < 0.65 and failed:
                ops.append(("recover", rng.sample(failed, min(len(failed), rng.randint(1, 3)))))
            elif roll < 0.75 and healthy and failed:
                # Mixed round: recovery and failure land between two observations.
                ops.append(("recover", rng.sample(failed, 1)))
                ops.append(("fail", rng.sample(healthy, 1)))
            elif roll < 0.85 and healthy:
                # Recover-then-refail (and fail-then-recover) within one round.
                victim = rng.choice(healthy)
                ops.append(("fail", [victim]))
                ops.append(("recover", [victim]))
                ops.append(("fail", [victim]))
            # else: a quiet round — the engine must not trigger.

            force = rng.random() < 0.05
            fingerprints = {}
            for name, engine in engines.items():
                state = states[name]
                for kind, nodes in ops:
                    if kind == "fail":
                        state.fail_nodes(nodes)
                    else:
                        state.recover_nodes(nodes)
                report = engine.reconcile(state, force=force)
                fingerprints[name] = _report_fingerprint(report)
            assert fingerprints["inc"] == fingerprints["full"], f"step {step} (vs full)"
            assert fingerprints["inc"] == fingerprints["ref"], f"step {step} (vs reference)"
            inc_state = _state_fingerprint(states["inc"])
            assert inc_state == _state_fingerprint(states["full"]), f"step {step} state"
            assert inc_state == _state_fingerprint(states["ref"]), f"step {step} state"
            if step % 17 == 0:
                # The invariant oracle: states are not just identical, they
                # are *sound* (no overcommit, indexes/counters consistent).
                verify_invariants(states["inc"])
                for other in ("full", "ref"):
                    violations = check_equivalence(
                        states["inc"], states[other], labels=("inc", other)
                    )
                    assert not violations, f"step {step}: {violations}"
        for state in states.values():
            verify_invariants(state)
        return engines

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multi_replica_churn(self, seed):
        rng = random.Random(seed)
        states = {name: _app_cluster() for name in self.ENGINES}
        engines = self._run_lockstep(states, steps=220, rng=rng)
        incremental = engines["inc"].pipeline.incremental
        assert incremental is not None
        assert incremental.fast_rounds > 50, "fast path barely engaged"
        assert incremental.full_rounds > 3, "fallbacks never exercised"

    def test_adaptlab_environment_churn(self):
        rng = random.Random(7)
        states = {
            name: build_environment(node_count=60, n_apps=4, seed=11).fresh_state()
            for name in self.ENGINES
        }
        self._run_lockstep(states, steps=120, rng=rng)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_trace_replay_metrics_identical(self, seed):
        """Full replay pipeline: metrics JSONL identical across all engines."""
        env = build_environment(node_count=80, n_apps=4, seed=5)
        trace = generators.poisson_failures(
            80, horizon=2400.0, mtbf=600.0, mttr=200.0, seed=seed
        )

        def replay(**engine_kwargs):
            engine = api.engine("revenue", **engine_kwargs)
            return TraceReplayer(engine, seed=seed).run(env.fresh_state(), trace).to_jsonl()

        incremental = replay()
        assert incremental == replay(incremental=False)
        assert incremental == replay(implementation="reference")

    def test_storm_trace_replay_identical(self):
        env = build_environment(node_count=60, n_apps=4, seed=5)
        trace = generators.failure_storm(
            60, at=120.0, fraction=0.5, recovery_after=600.0, recovery_steps=3, seed=2
        )
        engine_inc = api.engine("revenue")
        engine_full = api.engine("revenue", incremental=False)
        inc = TraceReplayer(engine_inc, seed=1).run(env.fresh_state(), trace)
        full = TraceReplayer(engine_full, seed=1).run(env.fresh_state(), trace)
        assert inc.to_jsonl() == full.to_jsonl()


class TestDirtyTracking:
    def _small(self):
        state = _app_cluster(node_count=8)
        state.drain_dirty()
        return state

    def test_registration_is_structural(self):
        state = ClusterState()
        dirty = state.drain_dirty()
        assert not dirty
        state.add_node(Node("n1", Resources(4, 4)))
        dirty = state.drain_dirty()
        assert dirty.structural and "n1" in dirty.nodes

    def test_assign_marks_node_and_app(self):
        state = self._small()
        replica = ReplicaId("overleaf", "web", 0)
        state.assign(replica, "node-0")
        dirty = state.drain_dirty()
        assert "node-0" in dirty.nodes and "overleaf" in dirty.apps
        assert not dirty.structural

    def test_fail_and_recover_mark_nodes(self):
        state = self._small()
        state.fail_nodes(["node-1"])
        dirty = state.drain_dirty()
        assert "node-1" in dirty.nodes
        state.recover_nodes(["node-1"])
        assert "node-1" in state.drain_dirty().nodes

    def test_drain_resets_and_chains_generations(self):
        state = self._small()
        first = state.drain_dirty()
        state.fail_nodes(["node-2"])
        second = state.drain_dirty()
        assert second.base_generation == first.end_generation
        assert state.drain_dirty().nodes == frozenset()

    def test_generation_monotonic(self):
        state = self._small()
        before = state.generation
        state.fail_nodes(["node-3"])
        state.recover_nodes(["node-3"])
        assert state.generation > before

    def test_copy_starts_clean(self):
        state = self._small()
        state.fail_nodes(["node-4"])
        clone = state.copy()
        assert not clone.peek_dirty()
        assert clone.failed_names() == {"node-4"}

    def test_failed_registry(self):
        state = self._small()
        assert state.failed_count == 0
        state.fail_nodes(["node-5", "node-6"])
        assert state.failed_count == 2
        assert state.failed_names() == {"node-5", "node-6"}
        assert {n.name for n in state.failed_nodes()} == {"node-5", "node-6"}
        state.recover_nodes(["node-5"])
        assert state.failed_names() == {"node-6"}

    def test_active_microservices_matches_counter_definition(self):
        state = _app_cluster()
        rng = random.Random(3)
        api.engine("revenue").reconcile(state, force=True)
        for _ in range(30):
            healthy = sorted(n.name for n in state.healthy_nodes())
            failed = sorted(state.failed_names())
            if rng.random() < 0.5 and healthy:
                state.fail_nodes(rng.sample(healthy, 1))
            elif failed:
                state.recover_nodes(rng.sample(failed, 1))
            derived = state.active_microservices()
            brute = {
                name: {
                    ms.name
                    for ms in app
                    if state.running_replicas(name, ms.name) >= ms.replicas
                }
                for name, app in state.applications.items()
            }
            assert derived == brute


class TestIncrementalFallbacks:
    def _converged(self):
        """An engine warmed past the post-convergence threshold fallback.

        The initial placement dirties every node, so the round right after
        convergence intentionally recomputes fully; one small warm-up round
        later the fast path engages.  Counters restart at zero.
        """
        state = _app_cluster()
        engine = api.engine("revenue")
        engine.reconcile(state, force=True)
        state.fail_nodes(["node-0"])
        engine.reconcile(state)
        state.recover_nodes(["node-0"])
        engine.reconcile(state)
        inc = engine.pipeline.incremental
        inc.fast_rounds = 0
        inc.full_rounds = 0
        return state, engine, inc

    def test_fast_path_engages(self):
        state, engine, inc = self._converged()
        state.fail_nodes(["node-1"])
        engine.reconcile(state)
        assert inc.fast_rounds == 1 and inc.last_mode == "incremental"

    def test_force_reconcile_recomputes_fully(self):
        state, engine, inc = self._converged()
        engine.reconcile(state, force=True)
        assert inc.fast_rounds == 0 and inc.last_mode == "full"

    def test_structural_change_falls_back(self):
        state, engine, inc = self._converged()
        state.add_node(Node("late-node", Resources(1, 1)))
        state.fail_nodes(["node-2"])
        engine.reconcile(state)
        assert inc.fast_rounds == 0 and inc.last_mode == "full"
        # The round after a structural fallback is incremental again.
        state.fail_nodes(["node-3"])
        engine.reconcile(state)
        assert inc.fast_rounds == 1

    def test_competing_drain_falls_back(self):
        state, engine, inc = self._converged()
        state.fail_nodes(["node-4"])
        state.drain_dirty()  # another consumer steals the accumulated dirt
        engine.reconcile(state)
        assert inc.fast_rounds == 0 and inc.last_mode == "full"


    def test_dirty_threshold_falls_back(self):
        state, engine, inc = self._converged()
        healthy = sorted(n.name for n in state.healthy_nodes())
        state.fail_nodes(healthy[: len(healthy) // 2])  # way past 25%
        engine.reconcile(state)
        assert inc.last_mode == "full"

    def test_different_state_object_falls_back(self):
        state, engine, inc = self._converged()
        other = _app_cluster()
        engine.reset()
        engine.reconcile(other, force=True)
        assert inc.fast_rounds == 0

    def test_invalidate(self):
        state, engine, inc = self._converged()
        inc.invalidate()
        state.fail_nodes(["node-5"])
        engine.reconcile(state)
        assert inc.fast_rounds == 0 and inc.full_rounds == 1

    def test_reference_pipeline_has_no_incremental(self):
        engine = api.engine("revenue", implementation="reference")
        assert engine.pipeline.incremental is None

    def test_incremental_disabled_by_config(self):
        engine = api.engine("revenue", incremental=False)
        assert engine.pipeline.incremental is None


class TestReplayObserverFastPath:
    def _scenario(self):
        env = build_environment(node_count=40, n_apps=3, seed=4)
        trace = generators.failure_storm(
            40, at=60.0, fraction=0.3, recovery_after=300.0, recovery_steps=2, seed=1
        )
        return env, trace

    def test_no_observer_skips_payload_construction(self, monkeypatch):
        from repro.traces import replayer as replayer_module
        from repro.traces.schema import NodeFailure

        env, trace = self._scenario()
        calls = {"event": 0, "step": 0}
        event_to_record = NodeFailure.to_record
        step_to_record = replayer_module.ReplayStep.to_record
        monkeypatch.setattr(
            NodeFailure,
            "to_record",
            lambda self, *a, **k: calls.__setitem__("event", calls["event"] + 1)
            or event_to_record(self, *a, **k),
        )
        monkeypatch.setattr(
            replayer_module.ReplayStep,
            "to_record",
            lambda self, *a, **k: calls.__setitem__("step", calls["step"] + 1)
            or step_to_record(self, *a, **k),
        )
        engine = api.engine("revenue")
        metrics = TraceReplayer(engine, seed=0).run(env.fresh_state(), trace)
        assert len(metrics) > 0
        assert calls == {"event": 0, "step": 0}, "payloads built with no subscribers"

    def test_subscriber_still_sees_hooks(self):
        from repro.api.events import ReplayStepCompleted, TraceEventApplied

        env, trace = self._scenario()
        seen = {"event": 0, "step": 0}
        engine = api.engine("revenue")
        engine.events.subscribe(
            lambda e: seen.__setitem__("event", seen["event"] + 1), TraceEventApplied
        )
        engine.events.subscribe(
            lambda e: seen.__setitem__("step", seen["step"] + 1), ReplayStepCompleted
        )
        metrics = TraceReplayer(engine, seed=0).run(env.fresh_state(), trace)
        assert seen["step"] == len(metrics)
        assert seen["event"] == len(trace.events)
