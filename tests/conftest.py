"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.adaptlab import build_environment, generate_alibaba_applications
from repro.cluster import Application, Microservice, Node, Resources
from repro.cluster.state import ClusterState
from repro.criticality import CriticalityTag


def make_microservice(name, cpu=2.0, memory=2.0, criticality=1, replicas=1, stateful=False):
    """Small helper used across tests."""
    return Microservice(
        name=name,
        resources=Resources(cpu=cpu, memory=memory),
        criticality=CriticalityTag(criticality),
        replicas=replicas,
        stateful=stateful,
    )


@pytest.fixture
def simple_app() -> Application:
    """A 4-microservice app with a dependency graph and mixed criticalities."""
    return Application.from_microservices(
        "shop",
        [
            make_microservice("frontend", 2, 2, 1),
            make_microservice("catalog", 2, 2, 1),
            make_microservice("recommend", 2, 2, 5),
            make_microservice("ads", 2, 2, 3),
        ],
        dependency_edges=[
            ("frontend", "catalog"),
            ("frontend", "recommend"),
            ("frontend", "ads"),
        ],
        price_per_unit=2.0,
        critical_service="catalog",
    )


@pytest.fixture
def second_app() -> Application:
    """A 3-microservice app without a dependency graph."""
    return Application.from_microservices(
        "blog",
        [
            make_microservice("api", 2, 2, 1),
            make_microservice("render", 2, 2, 2),
            make_microservice("analytics", 2, 2, 4),
        ],
        dependency_edges=None,
        price_per_unit=1.0,
        critical_service="api",
    )


@pytest.fixture
def small_cluster(simple_app, second_app) -> ClusterState:
    """Six 4-CPU nodes hosting the two small applications (nothing placed)."""
    nodes = [Node(f"node-{i}", Resources(4, 4)) for i in range(6)]
    return ClusterState(nodes=nodes, applications=[simple_app, second_app])


@pytest.fixture(scope="session")
def traced_apps():
    """A small set of synthetic Alibaba applications (shared across tests)."""
    return generate_alibaba_applications(n_apps=5, seed=7)


@pytest.fixture(scope="session")
def small_environment(traced_apps):
    """A compact AdaptLab environment used by scheme/harness/metrics tests."""
    return build_environment(
        node_count=60,
        n_apps=5,
        applications=traced_apps,
        tagging_scheme="service-p90",
        resource_model="cpm",
        target_utilization=0.7,
        seed=7,
    )
