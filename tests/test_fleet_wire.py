"""Wire codec: round-trips, string interning, versioning and corruption.

The codec carries every fleet IPC payload, so the contract is strict:
``loads(dumps(x))`` must reproduce ``x`` exactly (float bits included),
unknown versions must be refused loudly (never mis-decoded), and truncated
or trailing bytes must raise :class:`~repro.fleet.wire.WireError` rather
than returning a partial object.
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.api.config import EngineConfig
from repro.core.controller import ReconcileReport
from repro.core.plan import ActionKind, ActivationPlan, RankedMicroservice, SchedulePlan, make_action
from repro.fleet import wire
from repro.fleet.spillover import DonorCapacity, MsSpec, SpilloverAssignment
from repro.fleet.summary import CellSummary
from repro.fleet.wire import WireError, dumps, loads, resolve_codec
from repro.traces.schema import CapacityTarget, LoadChange, NodeFailure, NodeRecovery


def roundtrip(obj):
    return loads(dumps(obj))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            63,
            64,
            -65,
            2**40,
            -(2**40),
            2**70,
            0.0,
            1.5,
            -2.25,
            "",
            "node-17",
            "unicode: ✓ ß 日本",
            b"",
            b"\x00\xffraw",
            [],
            (),
            {},
            set(),
            [1, "two", 3.0, None, True],
            ("nested", (1, (2, (3,)))),
            {"key": [1, 2], "other": {"inner": ()}},
            {frozenset, "sets"} - {frozenset},
        ],
    )
    def test_primitives(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_float_bits_survive(self):
        for value in (0.1 + 0.2, -0.0, 1e-308, float("inf"), float("-inf")):
            out = roundtrip(value)
            assert struct.pack("<d", out) == struct.pack("<d", value)
        assert math.isnan(roundtrip(float("nan")))

    def test_dict_order_preserved(self):
        ordered = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(ordered)) == ["z", "a", "m"]

    def test_int_keys_and_tuple_values(self):
        payload = {1: ("a", 2.0), -7: None}
        assert roundtrip(payload) == payload

    def test_string_interning_shrinks_repeats(self):
        """Repeated strings encode as references, not repeated bodies."""
        name = "some-rather-long-node-name-0001"
        once = len(dumps([name]))
        many = len(dumps([name] * 100))
        assert many < once + 100 * 3  # ~2 bytes per reference, not ~30

    def test_actions_and_plans(self):
        actions = [
            make_action(ActionKind.START, ("app", "ms", 0), "node-1", None),
            make_action(ActionKind.MIGRATE, ("app", "ms", 1), "node-2", "node-1"),
            make_action(ActionKind.DELETE, ("app", "ms", 2), None, "node-3"),
        ]
        for action in actions:
            back = roundtrip(action)
            assert back == action
            assert back.kind is action.kind
        ranked = RankedMicroservice("app", "ms", 1.25)
        plan = ActivationPlan(ranked=[ranked], activated=[ranked])
        assert roundtrip(plan) == plan

    def test_reconcile_report(self):
        # Field shapes mirror what the controller actually produces (lists),
        # which is what the decoder normalizes to.
        ranked = RankedMicroservice("app", "front", 2.0)
        plan = ActivationPlan(ranked=[ranked], activated=[ranked])
        schedule = SchedulePlan(
            target_assignment={("app", "front", 0): "node-1"},
            actions=[make_action(ActionKind.START, ("app", "front", 0), "node-1", None)],
            unplaced=[("app", "back")],
        )
        report = ReconcileReport(
            triggered=True,
            failed_nodes=["node-9"],
            recovered_nodes=[],
            plan=plan,
            schedule=schedule,
            planning_seconds=0.125,
            actions_executed=1,
        )
        back = roundtrip(report)
        assert back == report
        assert dict(back.schedule.target_assignment) == dict(
            schedule.target_assignment
        )

    def test_cell_summary(self):
        summary = CellSummary(
            cell="cell-1",
            triggered=True,
            failed_nodes=("n1", "n2"),
            recovered_nodes=(),
            actions=3,
            failed_count=2,
            capacity_cpu=100.0,
            healthy_cpu=80.0,
            healthy_mem=90.0,
            used_cpu=40.0,
            used_mem=45.0,
            free_cpu=40.0,
            free_mem=45.0,
            revenue=0.75,
            reference_revenue=1.0,
            app_count=4,
            missing_critical=(("app", "ms"),),
        )
        assert roundtrip(summary) == summary

    def test_spillover_and_trace_records(self):
        spec = MsSpec("front", 1.0, 2.0, 3, 1, False)
        assignment = SpilloverAssignment("cell-0", "app", "cell-1", 0.5, (spec,), 3.0, 6.0)
        donor = DonorCapacity("cell-1", 10.0, 20.0)
        events = (
            NodeFailure(time=10.0, nodes=("n1",)),
            NodeRecovery(time=20.0, nodes=("n1",)),
            CapacityTarget(time=30.0, available_fraction=0.75),
            LoadChange(time=40.0, multiplier=1.5),
        )
        for record in (spec, assignment, donor, *events):
            assert roundtrip(record) == record

    def test_pickle_escape_for_unknown_types(self):
        """Types outside the schema still travel (resync frames need it)."""
        config = EngineConfig()
        assert roundtrip(config) == config
        assert roundtrip({"mixed": [config, 1, "x"]}) == {"mixed": [config, 1, "x"]}


class TestVersioningAndCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            loads(b"XX" + dumps(1)[2:])

    def test_future_version_rejected(self):
        payload = dumps(["versioned"])
        future = wire.MAGIC + bytes([wire.WIRE_VERSION + 1]) + payload[3:]
        with pytest.raises(WireError, match="version"):
            loads(future)

    def test_truncation_rejected(self):
        payload = dumps({"key": ["value", 1, 2.0]})
        for cut in (4, len(payload) // 2, len(payload) - 1):
            with pytest.raises(WireError):
                loads(payload[:cut])

    def test_trailing_bytes_rejected(self):
        # The checksum covers the exact body, so appended bytes fail the CRC
        # before the decoder could even notice the trailing garbage.
        with pytest.raises(WireError, match="trailing|checksum"):
            loads(dumps([1, 2]) + b"\x00")

    def test_empty_input_rejected(self):
        with pytest.raises(WireError):
            loads(b"")

    def test_checksum_detects_body_bit_flip(self):
        payload = bytearray(dumps({"cells": ["cell-0", "cell-1"], "round": 3}))
        payload[wire.HEADER_SIZE + 2] ^= 0x10
        with pytest.raises(WireError, match="checksum"):
            loads(bytes(payload))


def _corruption_corpus():
    """Small but shape-diverse frames for the exhaustive corruption sweep."""
    ranked = RankedMicroservice("app", "front", 2.0)
    plan = ActivationPlan(ranked=[ranked], activated=[ranked])
    schedule = SchedulePlan(
        target_assignment={("app", "front", 0): "node-1"},
        actions=[make_action(ActionKind.START, ("app", "front", 0), "node-1", None)],
        unplaced=[],
    )
    report = ReconcileReport(
        triggered=True,
        failed_nodes=["node-9"],
        recovered_nodes=[],
        plan=plan,
        schedule=schedule,
        planning_seconds=0.125,
        actions_executed=1,
    )
    return [
        ("round", {"cell-0": ("delta", ("n1",), ("n2",), (1.0, 2.0))}, True),
        ("ok", [(report, {"node-9"})]),
        ("step", {"cell-0": (NodeFailure(time=10.0, nodes=("n1", "n2")),)}, False, True),
        {"nested": [1, "two", 3.5, None, b"\x00\xff", {"k": (1, 2)}]},
        ("pickle-escape", EngineConfig()),
    ]


class TestCorruptionFuzz:
    """Satellite: every single-byte truncation/bit-flip must raise WireError.

    The supervisor treats a corrupt reply frame as a recoverable worker
    fault, which is only safe if *no* corruption can hang the decoder,
    crash it with a non-WireError, or silently decode to a wrong value.
    The CRC-32 header makes this exhaustive sweep tractable: any damaged
    frame fails the checksum (or an earlier header check) outright.
    """

    def test_every_truncation_offset_rejected(self):
        for frame in (dumps(obj) for obj in _corruption_corpus()):
            for cut in range(len(frame)):
                with pytest.raises(WireError):
                    loads(frame[:cut])

    def test_every_single_bit_flip_rejected_or_roundtrips(self):
        rng = random.Random(20260808)
        for obj in _corruption_corpus():
            frame = dumps(obj)
            for offset in range(len(frame)):
                corrupt = bytearray(frame)
                corrupt[offset] ^= 1 << rng.randrange(8)
                with pytest.raises(WireError):
                    loads(bytes(corrupt))

    def test_random_multi_byte_damage_rejected(self):
        rng = random.Random(7)
        frames = [dumps(obj) for obj in _corruption_corpus()]
        for _ in range(200):
            frame = bytearray(rng.choice(frames))
            for _ in range(rng.randrange(1, 4)):
                frame[rng.randrange(len(frame))] ^= rng.randrange(1, 256)
            with pytest.raises(WireError):
                loads(bytes(frame))


class TestResolveCodec:
    def test_known_codecs(self):
        wire_dumps, wire_loads = resolve_codec("wire")
        assert wire_loads(wire_dumps(("ok", 1))) == ("ok", 1)
        pickle_dumps, pickle_loads = resolve_codec("pickle")
        assert pickle_loads(pickle_dumps(("ok", 1))) == ("ok", 1)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            resolve_codec("msgpack")
