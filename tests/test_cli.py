"""Smoke and error-path tests for the ``python -m repro`` command line."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_module(*argv: str) -> subprocess.CompletedProcess:
    """Run ``python -m repro ...`` as a real subprocess."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        timeout=300,
    )


@pytest.fixture
def storm_trace(tmp_path) -> Path:
    path = tmp_path / "storm.jsonl"
    code = main(
        ["trace", "gen", "--kind", "storm", "--nodes", "60", "--seed", "7", "--out", str(path)]
    )
    assert code == 0
    return path


class TestTraceCommands:
    def test_gen_writes_valid_trace(self, storm_trace, capsys):
        assert main(["trace", "validate", str(storm_trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok:")
        assert "failure_storm" in out

    def test_gen_same_seed_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert (
                main(["trace", "gen", "--kind", "poisson", "--nodes", "40", "--seed", "3", "--out", str(path)])
                == 0
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    @pytest.mark.parametrize("kind", ["poisson", "rack", "diurnal", "storm", "alibaba"])
    def test_gen_every_kind_validates(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.jsonl"
        assert main(["trace", "gen", "--kind", kind, "--nodes", "32", "--out", str(path)]) == 0
        assert main(["trace", "validate", str(path)]) == 0

    def test_gen_to_stdout(self, capsys):
        assert main(["trace", "gen", "--kind", "alibaba", "--steps", "4"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith('{"metadata"')

    def test_validate_missing_file_is_one_line_error(self, capsys):
        assert main(["trace", "validate", "/no/such/trace.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_validate_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert main(["trace", "validate", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestReplayCommand:
    def test_replay_is_byte_identical_across_runs(self, storm_trace, tmp_path):
        outputs = []
        for name in ("one.jsonl", "two.jsonl"):
            out = tmp_path / name
            code = main(
                [
                    "replay", "--trace", str(storm_trace),
                    "--nodes", "60", "--apps", "4", "--seed", "42", "--out", str(out),
                ]
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        assert b'"record":"replay"' in outputs[0]
        assert b'"record":"step"' in outputs[0]

    def test_replay_missing_trace_errors(self, capsys):
        assert main(["replay", "--trace", "/no/such.jsonl"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_replay_node_mismatch_errors(self, storm_trace, capsys):
        # The storm was generated for 60 nodes; a 10-node cluster cannot host it.
        assert main(["replay", "--trace", str(storm_trace), "--nodes", "10", "--apps", "4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--nodes" in err

    def test_replay_full_recompute_matches_incremental(self, storm_trace, tmp_path):
        outputs = []
        for flag in ([], ["--full-recompute"]):
            out = tmp_path / f"m{len(flag)}.jsonl"
            code = main(
                ["replay", "--trace", str(storm_trace), "--nodes", "60", "--apps", "4",
                 "--seed", "42", "--out", str(out), *flag]
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]

    def test_replay_workers_output_identical_to_serial(self, storm_trace, tmp_path):
        outputs = []
        for workers in ("1", "3"):
            out = tmp_path / f"w{workers}.jsonl"
            code = main(
                ["replay", "--trace", str(storm_trace), "--trace", str(storm_trace),
                 "--seeds", "0,5", "--nodes", "60", "--apps", "4",
                 "--workers", workers, "--out", str(out)]
            )
            assert code == 0
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        # two traces x two seeds = four replay headers in input order
        assert outputs[0].count(b'"record":"replay"') == 4

    def test_replay_bad_seeds_errors(self, storm_trace, capsys):
        code = main(["replay", "--trace", str(storm_trace), "--seeds", "1,x"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_replay_bad_workers_errors(self, storm_trace, capsys):
        code = main(["replay", "--trace", str(storm_trace), "--workers", "0",
                     "--nodes", "60", "--apps", "4"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestSweepCommand:
    def test_sweep_prints_scheme_rows(self, capsys):
        code = main(
            ["sweep", "--nodes", "60", "--apps", "4", "--levels", "0.5", "--trials", "1",
             "--schemes", "phoenix-cost,default"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phoenix-cost" in out and "default" in out
        assert "availability" in out

    def test_sweep_unknown_scheme_errors(self, capsys):
        assert main(["sweep", "--schemes", "nope"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_sweep_bad_levels_errors(self, capsys):
        assert main(["sweep", "--levels", "abc"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_sweep_workers_output_identical_to_serial(self, capsys):
        outputs = []
        for workers in ("1", "2"):
            code = main(
                ["sweep", "--nodes", "60", "--apps", "4", "--levels", "0.3,0.5",
                 "--schemes", "phoenix-cost,default", "--workers", workers]
            )
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_sweep_bad_workers_errors(self, capsys):
        code = main(["sweep", "--nodes", "60", "--apps", "4", "--levels", "0.5",
                     "--workers", "-1"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestChaosCommand:
    def test_chaos_overleaf_passes(self, capsys):
        assert main(["chaos", "--template", "overleaf"]) == 0
        out = capsys.readouterr().out
        assert "Verdict: PASS" in out
        assert "Engine-driven chaos" in out

    def test_chaos_unknown_template_errors(self, capsys):
        assert main(["chaos", "--template", "nope"]) == 2
        assert "unknown template" in capsys.readouterr().err

    def test_chaos_custom_trace_runs_storm_check(self, tmp_path, capsys):
        trace = tmp_path / "storm.jsonl"
        assert main(
            ["trace", "gen", "--kind", "storm", "--nodes", "12", "--out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["chaos", "--template", "overleaf", "--trace", str(trace)]) == 0
        assert "Storm chaos" in capsys.readouterr().out

    def test_chaos_malformed_trace_is_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"record":"trace","version":1,"metadata":{}}\n{"record":"event","ki',
            encoding="utf-8",
        )
        proc = run_module("chaos", "--template", "overleaf", "--trace", str(bad))
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr

    def test_chaos_missing_trace_file_errors(self, capsys):
        assert main(["chaos", "--trace", "/no/such/trace.jsonl"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_chaos_unknown_event_version_errors(self, tmp_path, capsys):
        bad = tmp_path / "future.jsonl"
        bad.write_text(
            '{"record":"trace","version":1,"metadata":{}}\n'
            '{"record":"event","kind":"node_failure","time":1.0,'
            '"nodes":["node-0"],"version":2}\n',
            encoding="utf-8",
        )
        assert main(["chaos", "--template", "overleaf", "--trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "event version" in err


class TestTraceValidateErrorPaths:
    def test_unknown_event_version_is_one_line_error(self, tmp_path):
        bad = tmp_path / "future.jsonl"
        bad.write_text(
            '{"record":"trace","version":1,"metadata":{}}\n'
            '{"record":"event","kind":"node_failure","time":1.0,'
            '"nodes":["node-0"],"version":7}\n',
            encoding="utf-8",
        )
        proc = run_module("trace", "validate", str(bad))
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "event version" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_truncated_trailing_line_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "cut.jsonl"
        bad.write_text(
            '{"record":"trace","version":1,"metadata":{}}\n'
            '{"record":"event","kind":"node_fail',
            encoding="utf-8",
        )
        assert main(["trace", "validate", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestCorpusCommand:
    def test_corpus_list(self, capsys):
        assert main(["corpus", "--list"]) == 0
        out = capsys.readouterr().out
        assert "poisson-day" in out and "rack-storms" in out

    def test_corpus_unknown_scenario_errors(self, capsys):
        assert main(["corpus", "--only", "meteor-strike"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "available" in err

    def test_corpus_bad_workers_errors(self, capsys):
        assert main(["corpus", "--workers", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_corpus_workers_output_identical_to_serial(self, tmp_path, capsys):
        reports = []
        for workers in ("1", "2"):
            out = tmp_path / f"corpus-{workers}.jsonl"
            code = main(
                ["corpus", "--only", "capacity-dips", "--workers", workers,
                 "--out", str(out)]
            )
            assert code == 0
            reports.append(out.read_bytes())
        assert reports[0] == reports[1]
        assert "corpus: OK" in capsys.readouterr().err


class TestFuzzCommand:
    def test_fuzz_bad_cases_errors(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_fuzz_clean_budget_passes(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--cases", "1", "--nodes", "12", "--apps", "2",
             "--horizon", "300", "--no-lockstep",
             "--reproducer", str(tmp_path / "repro.jsonl")]
        )
        assert code == 0
        assert "fuzz: OK" in capsys.readouterr().out
        assert not (tmp_path / "repro.jsonl").exists()  # only written on FAIL


class TestBenchCommand:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "hotpath" in out

    def test_bench_without_name_errors(self, capsys):
        assert main(["bench"]) == 2
        assert "repro bench --list" in capsys.readouterr().err

    def test_bench_missing_dir_errors(self, tmp_path, capsys):
        assert main(["bench", "fig8a", "--dir", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bench_replay_alias_registered(self, capsys):
        assert main(["bench", "--list"]) == 0
        assert "replay-throughput" in capsys.readouterr().out

    @pytest.fixture
    def tiny_bench_dir(self, tmp_path) -> Path:
        """A benchmarks directory with one instant pytest benchmark."""
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_tiny.py").write_text(
            "def test_tiny_gate():\n"
            "    print('tiny-bench-ran')\n"
            "    assert 1 + 1 == 2\n",
            encoding="utf-8",
        )
        return bench_dir

    def test_bench_json_record(self, tiny_bench_dir, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "bench_tiny.py", "--dir", str(tiny_bench_dir), "--json", str(out)]
        )
        assert code == 0
        record = json.loads(out.read_text(encoding="utf-8"))
        assert record["record"] == "bench"
        assert record["returncode"] == 0
        assert record["duration_seconds"] > 0
        assert "tiny-bench-ran" in record["stdout"]

    def test_bench_json_to_stdout(self, tiny_bench_dir, capsys):
        import json

        code = main(["bench", "bench_tiny.py", "--dir", str(tiny_bench_dir), "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["record"] == "bench" and record["returncode"] == 0

    def test_bench_profile_reports_top_functions(self, tiny_bench_dir, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "bench_tiny.py", "--dir", str(tiny_bench_dir),
             "--json", str(out), "--profile"]
        )
        assert code == 0
        record = json.loads(out.read_text(encoding="utf-8"))
        assert "cumulative" in record.get("profile_top", "")

    def test_bench_failure_forwards_exit_code(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_fail.py").write_text(
            "def test_gate():\n    assert False, 'gate tripped'\n", encoding="utf-8"
        )
        assert main(["bench", "bench_fail.py", "--dir", str(bench_dir), "--json"]) == 1
        # --profile must forward the failure code too (the cProfile CLI
        # would swallow pytest's SystemExit; the driver avoids that).
        assert (
            main(["bench", "bench_fail.py", "--dir", str(bench_dir), "--profile"]) == 1
        )


class TestEntrypoint:
    def test_module_help(self):
        result = run_module("--help")
        assert result.returncode == 0
        assert "sweep" in result.stdout and "replay" in result.stdout

    @pytest.mark.parametrize(
        "argv",
        [
            ("sweep", "--help"),
            ("replay", "--help"),
            ("chaos", "--help"),
            ("bench", "--help"),
            ("trace", "--help"),
            ("trace", "gen", "--help"),
            ("trace", "validate", "--help"),
        ],
    )
    def test_every_subcommand_help(self, argv):
        result = run_module(*argv)
        assert result.returncode == 0
        assert "usage:" in result.stdout

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_trace_without_subcommand_prints_help(self, capsys):
        assert main(["trace"]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_missing_trace_file_has_no_traceback(self):
        result = run_module("replay", "--trace", "/no/such.jsonl")
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert result.stderr.startswith("error:")
        assert len(result.stderr.strip().splitlines()) == 1

    def test_unknown_subcommand_exits_nonzero(self):
        result = run_module("frobnicate")
        assert result.returncode == 2
        assert "Traceback" not in result.stderr

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
