"""Tests for operator objectives and water-filling fair shares."""

import pytest

from repro.core.objectives import (
    FairnessObjective,
    RevenueObjective,
    WeightedObjective,
    criticality_revenue_weight,
    microservice_revenue_rate,
    water_fill_shares,
)



class TestWaterFill:
    def test_paper_example(self):
        # Appendix C example: demands 10/50/90, capacity 100 -> 10/45/45.
        shares = water_fill_shares({"a": 10, "b": 50, "c": 90}, 100)
        assert shares == {"a": 10.0, "b": 45.0, "c": 45.0}

    def test_equal_split_when_demands_exceed_capacity(self):
        shares = water_fill_shares({"a": 100, "b": 100}, 60)
        assert shares["a"] == pytest.approx(30)
        assert shares["b"] == pytest.approx(30)

    def test_all_demands_satisfied_when_capacity_abundant(self):
        shares = water_fill_shares({"a": 10, "b": 20}, 1000)
        assert shares == {"a": 10.0, "b": 20.0}

    def test_zero_capacity(self):
        shares = water_fill_shares({"a": 10, "b": 20}, 0)
        assert shares == {"a": 0.0, "b": 0.0}

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            water_fill_shares({"a": 10}, -1)

    def test_zero_demand_app_gets_zero(self):
        shares = water_fill_shares({"a": 0, "b": 50}, 40)
        assert shares["a"] == 0.0
        assert shares["b"] == pytest.approx(40)

    def test_shares_never_exceed_demand(self):
        demands = {"a": 5, "b": 17, "c": 42, "d": 3}
        shares = water_fill_shares(demands, 50)
        for app, share in shares.items():
            assert share <= demands[app] + 1e-9

    def test_total_share_never_exceeds_capacity(self):
        demands = {"a": 30, "b": 40, "c": 50}
        shares = water_fill_shares(demands, 70)
        assert sum(shares.values()) <= 70 + 1e-9


class TestRevenueObjective:
    def test_weight_decreases_with_level(self):
        assert criticality_revenue_weight(1) > criticality_revenue_weight(5)

    def test_weight_rejects_invalid_level(self):
        with pytest.raises(ValueError):
            criticality_revenue_weight(0)

    def test_score_scales_with_price_and_criticality(self, simple_app, second_app):
        objective = RevenueObjective()
        frontend = simple_app.get("frontend")          # C1, price 2.0
        recommend = simple_app.get("recommend")        # C5, price 2.0
        api = second_app.get("api")                    # C1, price 1.0
        assert objective.score(simple_app, frontend, {}) > objective.score(simple_app, recommend, {})
        assert objective.score(simple_app, frontend, {}) > objective.score(second_app, api, {})

    def test_cheap_critical_beats_expensive_noncritical(self, simple_app, second_app):
        objective = RevenueObjective()
        recommend = simple_app.get("recommend")        # C5 of the pricey app
        api = second_app.get("api")                    # C1 of the cheap app
        assert objective.score(second_app, api, {}) > objective.score(simple_app, recommend, {})

    def test_microservice_revenue_rate(self, simple_app):
        frontend = simple_app.get("frontend")
        assert microservice_revenue_rate(simple_app, frontend) == pytest.approx(2.0 * 2.0 * 1.0)


class TestFairnessObjective:
    def test_prepare_computes_fair_shares(self, simple_app, second_app):
        objective = FairnessObjective()
        objective.prepare({"shop": simple_app, "blog": second_app}, capacity=10)
        shares = objective.fair_shares
        assert shares["shop"] + shares["blog"] <= 10 + 1e-9
        assert shares["blog"] <= second_app.total_demand().cpu + 1e-9

    def test_underserved_app_scores_higher(self, simple_app, second_app):
        objective = FairnessObjective()
        objective.prepare({"shop": simple_app, "blog": second_app}, capacity=12)
        ms_shop = simple_app.get("frontend")
        ms_blog = second_app.get("api")
        # blog already consumed a lot, shop nothing: shop scores higher.
        score_shop = objective.score(simple_app, ms_shop, {"shop": 0.0, "blog": 6.0})
        score_blog = objective.score(second_app, ms_blog, {"shop": 0.0, "blog": 6.0})
        assert score_shop > score_blog


class TestWeightedObjective:
    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            WeightedObjective({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedObjective({RevenueObjective(): -1.0})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedObjective({RevenueObjective(): 0.0})

    def test_single_component_equals_component(self, simple_app):
        revenue = RevenueObjective()
        weighted = WeightedObjective({revenue: 3.0})
        ms = simple_app.get("frontend")
        assert weighted.score(simple_app, ms, {}) == pytest.approx(revenue.score(simple_app, ms, {}))

    def test_blend_prepares_all_components(self, simple_app, second_app):
        fairness = FairnessObjective()
        weighted = WeightedObjective({RevenueObjective(): 0.5, fairness: 0.5})
        weighted.prepare({"shop": simple_app, "blog": second_app}, capacity=10)
        assert fairness.fair_shares  # prepared through the wrapper
