"""Tests for Microservice and Application models."""

import networkx as nx
import pytest

from repro.cluster import Application, Microservice, Resources
from repro.cluster.application import DependencyGraphError
from repro.criticality import CriticalityTag

from tests.conftest import make_microservice


class TestMicroservice:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Microservice(name="", resources=Resources(1, 1))

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            make_microservice("x", replicas=0)

    def test_criticality_is_parsed_from_string(self):
        ms = Microservice(name="x", resources=Resources(1, 1), criticality="C4")
        assert ms.criticality == CriticalityTag(4)

    def test_untagged_defaults_to_highest(self):
        ms = Microservice(name="x", resources=Resources(1, 1))
        assert ms.criticality == CriticalityTag(1)

    def test_total_resources_scales_with_replicas(self):
        ms = make_microservice("x", cpu=2, memory=3, replicas=3)
        assert ms.total_resources == Resources(6, 9)


class TestApplicationConstruction:
    def test_duplicate_microservice_rejected(self):
        with pytest.raises(ValueError):
            Application.from_microservices(
                "app", [make_microservice("a"), make_microservice("a")]
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Application(name="")

    def test_non_positive_price_rejected(self):
        with pytest.raises(ValueError):
            Application.from_microservices("app", [make_microservice("a")], price_per_unit=0)

    def test_graph_with_unknown_node_rejected(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "ghost")
        with pytest.raises(DependencyGraphError):
            Application(name="app", microservices={"a": make_microservice("a")}, dependency_graph=graph)

    def test_microservices_missing_from_graph_become_isolated_nodes(self):
        app = Application.from_microservices(
            "app",
            [make_microservice("a"), make_microservice("b"), make_microservice("lonely")],
            dependency_edges=[("a", "b")],
        )
        assert "lonely" in app.dependency_graph.nodes
        assert "lonely" in app.source_microservices()


class TestApplicationQueries:
    def test_len_iter_contains(self, simple_app):
        assert len(simple_app) == 4
        assert "frontend" in simple_app
        assert {ms.name for ms in simple_app} == {"frontend", "catalog", "recommend", "ads"}

    def test_total_demand(self, simple_app):
        assert simple_app.total_demand() == Resources(8, 8)

    def test_demand_by_criticality(self, simple_app):
        demand = simple_app.demand_by_criticality()
        assert demand[CriticalityTag(1)] == Resources(4, 4)
        assert demand[CriticalityTag(5)] == Resources(2, 2)

    def test_source_microservices_with_graph(self, simple_app):
        assert simple_app.source_microservices() == ["frontend"]

    def test_source_microservices_without_graph(self, second_app):
        assert second_app.source_microservices() == ["analytics", "api", "render"]

    def test_predecessors_and_successors(self, simple_app):
        assert simple_app.predecessors("catalog") == ["frontend"]
        assert simple_app.predecessors("frontend") == []
        assert set(simple_app.successors("frontend")) == {"catalog", "recommend", "ads"}

    def test_predecessors_without_graph_is_empty(self, second_app):
        assert second_app.predecessors("render") == []

    def test_microservices_at_or_above(self, simple_app):
        assert simple_app.microservices_at_or_above(CriticalityTag(1)) == ["catalog", "frontend"]
        assert simple_app.microservices_at_or_above(CriticalityTag(3)) == ["ads", "catalog", "frontend"]

    def test_tags_mapping(self, simple_app):
        tags = simple_app.tags()
        assert tags["recommend"] == CriticalityTag(5)


class TestWithTags:
    def test_with_tags_reassigns_criticality(self, simple_app):
        retagged = simple_app.with_tags({"recommend": CriticalityTag(1)})
        assert retagged.criticality_of("recommend") == CriticalityTag(1)
        # original untouched
        assert simple_app.criticality_of("recommend") == CriticalityTag(5)

    def test_with_tags_preserves_graph_and_price(self, simple_app):
        retagged = simple_app.with_tags({})
        assert retagged.price_per_unit == simple_app.price_per_unit
        assert set(retagged.dependency_graph.edges) == set(simple_app.dependency_graph.edges)
