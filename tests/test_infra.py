"""Infrastructure fault injection: fault plans, supervised recovery, the
infra fuzzer, and durable checkpoints.

The backbone is byte-identity under faults: a supervised parallel fleet
hit with injected worker kills, hangs and corrupt frames must end every
round in exactly the state of a fault-free serial twin — for both shard
protocols (live reconcile with parent-state resync, and journal-replay
workers).  Around it: the FaultPlan data model, the seeded infra fuzzer's
determinism, the planted-supervisor-bug detection gate (the fuzzer must
*find* bugs, not just pass correct code), close() escalation with
force-kill reporting, and checkpoint save/load/restore round-trips.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.adaptlab import build_environment
from repro.chaos.infra import (
    AmnesicRestartPool,
    FaultPlan,
    InfraFuzzConfig,
    InfraFuzzReport,
    InfraViolation,
    WorkerFault,
    random_fault_plan,
    replay_infra_case,
    run_infra_fuzz,
)
from repro.fleet import (
    CheckpointError,
    FleetConfig,
    FleetEngine,
    FleetReplayer,
    ShardDegraded,
    ShardRestarted,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.fleet.pool import ShardPool
from repro.serve import fleet_digest
from repro.traces import fleet_scenario


def _states(cells: int = 3, nodes: int = 10, seed0: int = 91):
    return [
        build_environment(node_count=nodes, n_apps=2, seed=seed0 + index).fresh_state()
        for index in range(cells)
    ]


def _supervised_fleet(*, fault=None, pool_class=None, **config_kwargs) -> FleetEngine:
    config = FleetConfig(cells=3, shard_backoff=0.0, **config_kwargs)
    fleet = FleetEngine(config, states=_states())
    fleet.reconcile(force=True)
    if fault is not None:
        fleet._shard_fault = fault
    if pool_class is not None:
        fleet._pool_class = pool_class
    return fleet


def _churn(*fleets: FleetEngine) -> None:
    """The same small churn applied to every fleet (keeps twins in step)."""
    for fleet in fleets:
        fleet.cells[0].state.fail_nodes(["node-1", "node-3"])
        fleet.cells[1].state.fail_nodes(["node-2"])


# -- the fault-plan data model ---------------------------------------------------


class TestFaultPlan:
    def test_records_roundtrip(self):
        plan = FaultPlan(
            workers=(
                WorkerFault(kind="kill", shard=0, command=2),
                WorkerFault(kind="corrupt", shard=1, command=3, mode="truncate"),
                WorkerFault(kind="kill", shard=1, command=1, incarnations=None),
            ),
            wal_crash_round=4,
            ws_drop_after=7,
        )
        clone = FaultPlan.from_records(plan.to_records())
        assert clone == plan
        json.dumps(plan.to_records())  # reproducers must be JSON-able

    def test_for_shard_filters_by_shard_and_incarnation(self):
        plan = FaultPlan(
            workers=(
                WorkerFault(kind="kill", shard=0, command=2, incarnations=(0,)),
                WorkerFault(kind="hang", shard=1, command=4, incarnations=(1,)),
                WorkerFault(kind="kill", shard=1, command=1, incarnations=None),
            )
        )
        assert plan.for_shard(0, 0) == [("kill", 2, "flip")]
        assert plan.for_shard(0, 1) == []
        assert plan.for_shard(1, 0) == [("kill", 1, "flip")]
        assert plan.for_shard(1, 1) == [("hang", 4, "flip"), ("kill", 1, "flip")]

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            WorkerFault(kind="meteor", shard=0, command=1)
        with pytest.raises(ValueError, match="1-based"):
            WorkerFault(kind="kill", shard=0, command=0)
        with pytest.raises(ValueError, match="unknown corrupt mode"):
            WorkerFault(kind="corrupt", shard=0, command=1, mode="scramble")

    def test_random_fault_plan_is_seed_deterministic(self):
        for seed in range(20):
            first = random_fault_plan(seed, shards=3)
            second = random_fault_plan(seed, shards=3)
            assert first == second
            assert 1 <= len(first.workers) <= 2
            assert sum(1 for f in first.workers if f.kind == "hang") <= 1
        no_hangs = [
            f
            for seed in range(40)
            for f in random_fault_plan(seed, include_hangs=False).workers
        ]
        assert all(f.kind != "hang" for f in no_hangs)


# -- supervised recovery is byte-identical ---------------------------------------


class TestSupervisedRecovery:
    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_corrupt_frame_restart_matches_twin(self, mode):
        """A worker answering with a damaged frame is restarted and the
        round's outcome is byte-identical to a fault-free serial twin."""
        plan = FaultPlan(
            workers=(WorkerFault(kind="corrupt", shard=0, command=1, mode=mode),)
        )
        faulted = _supervised_fleet(fault=plan)
        twin = _supervised_fleet()
        restarts: list[ShardRestarted] = []
        faulted.events.subscribe(restarts.append, ShardRestarted)
        try:
            _churn(faulted, twin)
            faulted.reconcile(workers=2)
            twin.reconcile()
            assert [e.shard for e in restarts] == [0]
            assert "corrupt" in restarts[0].reason
            assert fleet_digest(faulted) == fleet_digest(twin)
        finally:
            faulted.close()
            twin.close()

    def test_hang_restart_matches_twin(self):
        """A hung worker trips the round deadline, is replaced, and the
        fold still matches the serial twin byte for byte."""
        plan = FaultPlan(workers=(WorkerFault(kind="hang", shard=0, command=1),))
        faulted = _supervised_fleet(fault=plan, shard_timeout=1.0)
        twin = _supervised_fleet()
        restarts: list[ShardRestarted] = []
        faulted.events.subscribe(restarts.append, ShardRestarted)
        try:
            _churn(faulted, twin)
            started = time.monotonic()
            faulted.reconcile(workers=2)
            assert time.monotonic() - started < 30.0  # deadline, not a hang
            twin.reconcile()
            assert [e.shard for e in restarts] == [0]
            assert fleet_digest(faulted) == fleet_digest(twin)
        finally:
            faulted.close()
            twin.close()

    def test_external_sigkill_mid_fleet_recovers(self):
        """A real ``kill -9`` on a worker process (not a simulated fault):
        the supervisor replaces it and the next round is exact."""
        faulted = _supervised_fleet()
        twin = _supervised_fleet()
        restarts: list[ShardRestarted] = []
        faulted.events.subscribe(restarts.append, ShardRestarted)
        try:
            _churn(faulted, twin)
            faulted.reconcile(workers=2)
            twin.reconcile()
            assert fleet_digest(faulted) == fleet_digest(twin)

            victim = faulted._pool._shards[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)

            for fleet in (faulted, twin):
                fleet.cells[2].state.fail_nodes(["node-4"])
            faulted.reconcile(workers=2)
            twin.reconcile()
            assert [e.shard for e in restarts] == [0]
            assert fleet_digest(faulted) == fleet_digest(twin)
        finally:
            faulted.close()
            twin.close()

    def test_replay_protocol_restart_matches_serial_jsonl(self):
        """Journal-replay workers: a mid-scenario kill is replayed from the
        shard journal and the metrics JSONL equals the serial replay's."""
        scenario = fleet_scenario(3, 10, horizon=300.0, mtbf=100.0, seed=7)
        serial = _supervised_fleet()
        try:
            reference = FleetReplayer(serial, seed=7).run(scenario).to_jsonl()
        finally:
            serial.close()
        plan = FaultPlan(workers=(WorkerFault(kind="kill", shard=0, command=3),))
        faulted = _supervised_fleet(fault=plan)
        restarts: list[ShardRestarted] = []
        faulted.events.subscribe(restarts.append, ShardRestarted)
        try:
            jsonl = FleetReplayer(faulted, seed=7, workers=2).run(scenario).to_jsonl()
        finally:
            faulted.close()
        assert [e.shard for e in restarts] == [0]
        assert jsonl == reference


# -- replay-journal compaction ---------------------------------------------------


class TestJournalCompaction:
    """The per-shard restart journal is bounded, and restarts from a
    compacted baseline stay byte-identical."""

    @staticmethod
    def _step_event(step: int):
        from repro.traces.schema import parse_event

        kind = "node_failure" if step % 2 == 0 else "node_recovery"
        return parse_event(
            {"record": "event", "kind": kind, "nodes": [f"node-{step % 5}"]},
            default_time=float(step),
        )

    def test_journal_stays_bounded_and_snapshot_becomes_baseline(self, monkeypatch):
        from repro.fleet import SupervisorConfig

        monkeypatch.setattr(ShardPool, "JOURNAL_COMPACT_THRESHOLD", 3)
        fleet = _supervised_fleet()
        pool = ShardPool(
            fleet.cells,
            seed=0,
            workers=2,
            supervisor=SupervisorConfig(backoff_base=0.0),
        )
        try:
            originals = [shard.initial_payload for shard in pool._shards]
            for step in range(10):
                event = self._step_event(step)
                pool.step({name: [event] for name in pool.order}, False, False)
                for shard in pool._shards:
                    assert shard.journal is not None
                    assert len(shard.journal) <= 3
            # Compaction replaced every shard's restart baseline with a
            # worker snapshot (10 journaled steps >> threshold 3).
            assert all(
                shard.initial_payload is not original
                for shard, original in zip(pool._shards, originals)
            )
        finally:
            pool.close()
            fleet.close()

    def test_unsupervised_pool_keeps_no_journal(self):
        fleet = _supervised_fleet()
        pool = ShardPool(fleet.cells, seed=0, workers=2, supervisor=None)
        try:
            pool.step({}, False, False)
            assert all(shard.journal is None for shard in pool._shards)
        finally:
            pool.close()
            fleet.close()

    def test_restart_from_compacted_baseline_matches_serial_jsonl(self, monkeypatch):
        """Kill a worker well after compaction has truncated its journal:
        the restart replays snapshot + journal tail and the metrics JSONL
        still equals the serial replay's, byte for byte."""
        monkeypatch.setattr(ShardPool, "JOURNAL_COMPACT_THRESHOLD", 2)
        scenario = fleet_scenario(3, 10, horizon=600.0, mtbf=60.0, seed=11)
        serial = _supervised_fleet()
        try:
            reference = FleetReplayer(serial, seed=11).run(scenario).to_jsonl()
        finally:
            serial.close()
        plan = FaultPlan(workers=(WorkerFault(kind="kill", shard=0, command=7),))
        faulted = _supervised_fleet(fault=plan)
        restarts: list[ShardRestarted] = []
        faulted.events.subscribe(restarts.append, ShardRestarted)
        try:
            jsonl = FleetReplayer(faulted, seed=11, workers=2).run(scenario).to_jsonl()
        finally:
            faulted.close()
        assert [e.shard for e in restarts] == [0]
        assert jsonl == reference


# -- close() escalation ----------------------------------------------------------


class TestCloseEscalation:
    def test_wedged_worker_is_force_killed_and_reported(self, monkeypatch):
        """A worker that ignores the cooperative stop *and* SIGTERM (here:
        SIGSTOPped, so signals stay pending) is force-killed by close()
        and reported in ``force_killed``."""
        monkeypatch.setattr(ShardPool, "STOP_JOIN_TIMEOUT", 0.3)
        monkeypatch.setattr(ShardPool, "TERMINATE_JOIN_TIMEOUT", 0.3)
        fleet = _supervised_fleet()
        try:
            fleet.reconcile(force=True, workers=2)
            pool = fleet._pool
            victim = pool._shards[1].process
            os.kill(victim.pid, signal.SIGSTOP)
            pool.close()
            assert pool.force_killed == [1]
            assert not victim.is_alive()
        finally:
            fleet.close()

    def test_clean_close_force_kills_nothing(self):
        fleet = _supervised_fleet()
        try:
            fleet.reconcile(force=True, workers=2)
            pool = fleet._pool
            pool.close()
            assert pool.force_killed == []
        finally:
            fleet.close()


# -- durable checkpoints ---------------------------------------------------------


class TestCheckpoint:
    def _converged_fleet(self) -> FleetEngine:
        fleet = FleetEngine(FleetConfig(cells=3), states=_states())
        fleet.reconcile(force=True)
        fleet.cells[0].state.fail_nodes(["node-1", "node-5"])
        fleet.cells[1].state.fail_nodes(["node-2"])
        fleet.reconcile()
        return fleet

    def test_save_restore_roundtrip_is_exact(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        original = self._converged_fleet()
        try:
            save_checkpoint(original, path, extra={"rounds": 2})
            digest = fleet_digest(original)

            clone = FleetEngine(FleetConfig(cells=3), states=_states())
            clone.reconcile(force=True)
            checkpoint = load_checkpoint(path)
            assert checkpoint.extra == {"rounds": 2}
            restore_checkpoint(clone, checkpoint)
            assert fleet_digest(clone) == digest

            # The restored fleet keeps evolving identically, including the
            # detector state and spillover memories the checkpoint carries.
            for fleet in (original, clone):
                fleet.cells[0].state.recover_nodes(["node-1"])
                fleet.cells[2].state.fail_nodes(["node-0"])
                fleet.reconcile()
            assert fleet_digest(clone) == fleet_digest(original)
            clone.close()
        finally:
            original.close()

    def test_corruption_and_truncation_raise(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        fleet = self._converged_fleet()
        try:
            save_checkpoint(fleet, path)
        finally:
            fleet.close()
        blob = path.read_bytes()

        flipped = bytearray(blob)
        flipped[len(flipped) // 2] ^= 0x10
        path.write_bytes(bytes(flipped))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

        path.write_bytes(b"XX" + blob[2:])
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

        path.write_bytes(blob[:2] + bytes([99]) + blob[3:])
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_cell_mismatch_raises(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        fleet = self._converged_fleet()
        try:
            save_checkpoint(fleet, path)
        finally:
            fleet.close()
        other = FleetEngine(
            FleetConfig(cells=2), states=_states(cells=2)
        )
        try:
            with pytest.raises(CheckpointError, match="cell mismatch"):
                restore_checkpoint(other, load_checkpoint(path))
        finally:
            other.close()


# -- the infra fuzzer ------------------------------------------------------------


def _small_campaign(**overrides) -> InfraFuzzConfig:
    defaults = dict(
        cases=2,
        cells=3,
        nodes_per_cell=10,
        rounds=4,
        horizon=240.0,
        shard_timeout=2.0,
        include_hangs=False,  # keep the unit-test budget wall-clock-tight
        seed=0,
    )
    defaults.update(overrides)
    return InfraFuzzConfig(**defaults)


class TestInfraFuzzer:
    def test_campaign_is_deterministic_and_clean(self):
        config = _small_campaign()
        first = run_infra_fuzz(config)
        second = run_infra_fuzz(config)
        assert first.ok and second.ok
        assert first.to_text() == second.to_text()
        assert first.faults_injected == second.faults_injected > 0
        assert first.restarts_observed == second.restarts_observed

    def test_finds_planted_supervisor_bug(self):
        """The oracle's own test: a pool whose restarts drop the recovery
        journal must be caught as a fault-recovery-equivalence violation,
        within a bounded budget, with a working reproducer."""
        config = _small_campaign(cases=4)
        report = run_infra_fuzz(config, pool_class=AmnesicRestartPool)
        assert not report.ok
        violation = report.violation
        assert violation.invariant == "fault-recovery-equivalence"
        assert violation.mode == "replay"  # the bug lives in journal replay
        assert "FAIL" in report.to_text()

        # The reproducer record is self-contained: replaying it re-triggers
        # the violation against the broken pool and passes on the fixed one.
        retriggered = replay_infra_case(
            violation.reproducer, pool_class=AmnesicRestartPool
        )
        assert not retriggered.ok
        assert retriggered.violation.invariant == "fault-recovery-equivalence"
        fixed = replay_infra_case(violation.reproducer)
        assert fixed.ok

    def test_reproducer_write_is_json(self, tmp_path):
        violation = InfraViolation(
            case=1,
            seed=1,
            mode="replay",
            invariant="fault-recovery-equivalence",
            message="diverged",
            reproducer={"generator": "infra_fuzz_reproducer", "case": 1},
        )
        path = tmp_path / "repro.json"
        violation.write(path)
        assert json.loads(path.read_text())["case"] == 1

    def test_report_text_shapes(self):
        report = InfraFuzzReport(config=_small_campaign(), cases=2, faults_injected=3)
        assert report.ok
        assert "OK" in report.to_text()
        assert "3 fault(s)" in report.to_text()
