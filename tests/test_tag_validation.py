"""Tests for static criticality-tag validation (§7, adversarial/incorrect tags)."""

import pytest

from repro.apps import build_hotel_reservation, build_overleaf
from repro.chaos.validation import AnomalyKind, validate_tags
from repro.cluster import Application

from tests.conftest import make_microservice


class TestInvertedDependencies:
    def test_detects_critical_caller_of_non_critical_only_callee(self):
        app = Application.from_microservices(
            "inverted",
            [
                make_microservice("gateway", criticality=1),
                make_microservice("backend", criticality=7),
            ],
            dependency_edges=[("gateway", "backend")],
        )
        report = validate_tags(app)
        findings = report.of_kind(AnomalyKind.INVERTED_DEPENDENCY)
        assert findings and findings[0].microservice == "gateway"
        # advisory: the caller may tolerate the missing callee (chaos tests decide)
        assert report.ok and findings[0] in report.warnings

    def test_fan_out_callers_are_not_flagged(self):
        app = Application.from_microservices(
            "fanout",
            [
                make_microservice("gateway", criticality=1),
                make_microservice("core", criticality=1),
                make_microservice("extras", criticality=7),
            ],
            dependency_edges=[("gateway", "core"), ("gateway", "extras")],
        )
        report = validate_tags(app)
        assert report.of_kind(AnomalyKind.INVERTED_DEPENDENCY) == []


class TestUnreachableCritical:
    def test_detects_critical_service_behind_non_critical_caller(self):
        app = Application.from_microservices(
            "unreachable",
            [
                make_microservice("frontend", criticality=5),
                make_microservice("payments", criticality=1),
            ],
            dependency_edges=[("frontend", "payments")],
        )
        report = validate_tags(app)
        findings = report.of_kind(AnomalyKind.UNREACHABLE_CRITICAL)
        assert findings and findings[0].microservice == "payments"
        assert not report.ok
        assert findings[0] in report.errors

    def test_critical_root_is_fine(self, simple_app):
        report = validate_tags(simple_app)
        assert report.of_kind(AnomalyKind.UNREACHABLE_CRITICAL) == []


class TestOverTagging:
    def test_everything_critical_is_flagged(self):
        app = Application.from_microservices(
            "greedy",
            [make_microservice("a", criticality=1), make_microservice("b", criticality=1)],
        )
        report = validate_tags(app, max_critical_fraction=0.6)
        assert report.of_kind(AnomalyKind.OVER_TAGGED)
        # over-tagging is advisory, not an error
        assert report.ok

    def test_threshold_validation(self, simple_app):
        with pytest.raises(ValueError):
            validate_tags(simple_app, max_critical_fraction=0.0)


class TestDowngradeCandidates:
    def test_single_upstream_critical_leaf_is_flagged(self):
        app = Application.from_microservices(
            "stubby",
            [
                make_microservice("api", criticality=3),
                make_microservice("thumbnailer", criticality=1),
            ],
            dependency_edges=[("api", "thumbnailer")],
        )
        report = validate_tags(app)
        findings = report.of_kind(AnomalyKind.DOWNGRADE_CANDIDATE)
        assert findings and findings[0].microservice == "thumbnailer"


class TestRealApplications:
    def test_overleaf_tags_have_no_errors(self):
        report = validate_tags(build_overleaf().application)
        assert report.ok, report.to_text()

    def test_hotel_reservation_tags_have_no_errors(self):
        report = validate_tags(build_hotel_reservation().application)
        assert report.ok, report.to_text()
        # The validator surfaces the paper's §5 observation: reservation's only
        # downstream call (user) is less critical, which HR tolerates thanks to
        # the error handling added for diagonal-scaling compliance.
        inverted = report.of_kind(AnomalyKind.INVERTED_DEPENDENCY)
        assert any(a.microservice == "reservation" for a in inverted)

    def test_report_text_lists_kind_and_verdict(self):
        report = validate_tags(build_overleaf().application)
        text = report.to_text()
        assert "Tag validation for overleaf" in text
        assert "OK" in text
