"""Tests for failure/recovery events and the event timeline."""

import pytest

from repro.cluster.events import EventTimeline, FailureEvent, RecoveryEvent


class TestEvents:
    def test_failure_event_freezes_nodes_as_tuple(self):
        event = FailureEvent(time=10.0, nodes=["a", "b"])
        assert event.nodes == ("a", "b")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(time=-1.0, nodes=["a"])
        with pytest.raises(ValueError):
            RecoveryEvent(time=-0.5, nodes=["a"])

    def test_cause_recorded(self):
        event = FailureEvent(time=1.0, nodes=["a"], cause="power")
        assert event.cause == "power"


class TestTimeline:
    def test_events_kept_sorted(self):
        timeline = EventTimeline()
        timeline.add(FailureEvent(time=50, nodes=["a"]))
        timeline.add(RecoveryEvent(time=10, nodes=["a"]))
        assert [e.time for e in timeline] == [10, 50]

    def test_between_uses_half_open_interval(self):
        timeline = EventTimeline()
        timeline.add(FailureEvent(time=10, nodes=["a"]))
        timeline.add(FailureEvent(time=20, nodes=["b"]))
        assert [e.time for e in timeline.between(10, 20)] == [20]
        assert [e.time for e in timeline.between(0, 10)] == [10]

    def test_horizon(self):
        timeline = EventTimeline()
        assert timeline.horizon() == 0.0
        timeline.add(FailureEvent(time=99, nodes=["a"]))
        assert timeline.horizon() == 99

    def test_len(self):
        timeline = EventTimeline()
        timeline.add(FailureEvent(time=1, nodes=["a"]))
        assert len(timeline) == 1
