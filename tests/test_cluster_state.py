"""Tests for Node, ClusterState and the assignment bookkeeping."""

import pytest

from repro.cluster import Node, Resources, build_uniform_cluster
from repro.cluster.state import ClusterState, ReplicaId, SchedulingError

from tests.conftest import make_microservice
from repro.cluster.application import Application


class TestNode:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node("", Resources(1, 1))

    def test_fail_and_recover(self):
        node = Node("n1", Resources(4, 4))
        assert node.is_healthy
        node.fail()
        assert node.failed and not node.is_healthy
        node.recover()
        assert node.is_healthy

    def test_equality_by_name(self):
        assert Node("n1", Resources(1, 1)) == Node("n1", Resources(9, 9))
        assert Node("n1", Resources(1, 1)) != Node("n2", Resources(1, 1))


class TestRegistration:
    def test_duplicate_node_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.add_node(Node("node-0", Resources(4, 4)))

    def test_duplicate_application_rejected(self, small_cluster, simple_app):
        with pytest.raises(ValueError):
            small_cluster.add_application(simple_app)

    def test_remove_application_unassigns_replicas(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-0")
        small_cluster.remove_application("shop")
        assert "shop" not in small_cluster.applications
        assert small_cluster.used_on("node-0").is_zero()

    def test_remove_unknown_application_raises(self, small_cluster):
        with pytest.raises(KeyError):
            small_cluster.remove_application("nope")


class TestAssignment:
    def test_assign_updates_usage(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        assert small_cluster.used_on("node-0") == Resources(2, 2)
        assert small_cluster.free_on("node-0") == Resources(2, 2)

    def test_assign_unknown_app_rejected(self, small_cluster):
        with pytest.raises(SchedulingError):
            small_cluster.assign(ReplicaId("ghost", "x", 0), "node-0")

    def test_assign_unknown_microservice_rejected(self, small_cluster):
        with pytest.raises(SchedulingError):
            small_cluster.assign(ReplicaId("shop", "ghost", 0), "node-0")

    def test_assign_unknown_node_rejected(self, small_cluster):
        with pytest.raises(SchedulingError):
            small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-99")

    def test_double_assign_rejected(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-0")
        with pytest.raises(SchedulingError):
            small_cluster.assign(replica, "node-1")

    def test_capacity_enforced(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.assign(ReplicaId("shop", "catalog", 0), "node-0")
        with pytest.raises(SchedulingError):
            small_cluster.assign(ReplicaId("shop", "ads", 0), "node-0")

    def test_capacity_enforcement_can_be_disabled(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.assign(ReplicaId("shop", "catalog", 0), "node-0")
        small_cluster.assign(ReplicaId("shop", "ads", 0), "node-0", enforce_capacity=False)
        assert small_cluster.used_on("node-0").cpu == 6

    def test_assign_to_failed_node_rejected(self, small_cluster):
        small_cluster.fail_nodes(["node-0"])
        with pytest.raises(SchedulingError):
            small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")

    def test_unassign_returns_node_and_frees_capacity(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-2")
        assert small_cluster.unassign(replica) == "node-2"
        assert small_cluster.used_on("node-2").is_zero()

    def test_unassign_unknown_replica_rejected(self, small_cluster):
        with pytest.raises(SchedulingError):
            small_cluster.unassign(ReplicaId("shop", "frontend", 0))

    def test_replicas_on_reverse_index(self, small_cluster):
        r1 = ReplicaId("shop", "frontend", 0)
        r2 = ReplicaId("blog", "api", 0)
        small_cluster.assign(r1, "node-0")
        small_cluster.assign(r2, "node-0")
        assert set(small_cluster.replicas_on("node-0")) == {r1, r2}
        small_cluster.unassign(r1)
        assert small_cluster.replicas_on("node-0") == [r2]


class TestActivity:
    def test_is_active_requires_all_replicas(self):
        app = Application.from_microservices(
            "multi", [make_microservice("web", 1, 1, 1, replicas=2)]
        )
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        state.assign(ReplicaId("multi", "web", 0), "n0")
        assert not state.is_active("multi", "web")
        state.assign(ReplicaId("multi", "web", 1), "n0")
        assert state.is_active("multi", "web")

    def test_active_microservices_matches_is_active(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.assign(ReplicaId("blog", "api", 0), "node-1")
        active = small_cluster.active_microservices()
        assert active["shop"] == {"frontend"}
        assert active["blog"] == {"api"}

    def test_activity_ignores_failed_nodes(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.fail_nodes(["node-0"])
        assert not small_cluster.is_active("shop", "frontend")
        assert small_cluster.active_microservices()["shop"] == set()

    def test_running_replica_counts_single_pass(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.assign(ReplicaId("shop", "catalog", 0), "node-1")
        counts = small_cluster.running_replica_counts()
        assert counts[("shop", "frontend")] == 1
        assert counts[("shop", "catalog")] == 1

    def test_app_resource_usage(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        small_cluster.assign(ReplicaId("shop", "catalog", 0), "node-1")
        small_cluster.assign(ReplicaId("blog", "api", 0), "node-2")
        usage = small_cluster.app_resource_usage()
        assert usage["shop"] == 4
        assert usage["blog"] == 2


class TestFailures:
    def test_fail_nodes_reports_impacted_replicas(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-0")
        impacted = small_cluster.fail_nodes(["node-0", "node-1"])
        assert impacted == [replica]
        assert small_cluster.node("node-0").failed

    def test_fail_already_failed_node_is_noop(self, small_cluster):
        small_cluster.fail_nodes(["node-0"])
        assert small_cluster.fail_nodes(["node-0"]) == []

    def test_evict_from_failed_nodes(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-0")
        small_cluster.fail_nodes(["node-0"])
        evicted = small_cluster.evict_from_failed_nodes()
        assert evicted == [replica]
        assert small_cluster.node_of(replica) is None

    def test_recover_nodes(self, small_cluster):
        small_cluster.fail_nodes(["node-0"])
        small_cluster.recover_nodes(["node-0"])
        assert small_cluster.node("node-0").is_healthy

    def test_failed_capacity_excluded(self, small_cluster):
        before = small_cluster.total_capacity().cpu
        small_cluster.fail_nodes(["node-0"])
        assert small_cluster.total_capacity().cpu == before - 4
        assert small_cluster.total_capacity(healthy_only=False).cpu == before

    def test_free_on_failed_node_is_zero(self, small_cluster):
        small_cluster.fail_nodes(["node-3"])
        assert small_cluster.free_on("node-3").is_zero()


class TestCopyAndSummary:
    def test_copy_is_independent(self, small_cluster):
        replica = ReplicaId("shop", "frontend", 0)
        small_cluster.assign(replica, "node-0")
        clone = small_cluster.copy()
        clone.unassign(replica)
        clone.fail_nodes(["node-1"])
        assert small_cluster.node_of(replica) == "node-0"
        assert small_cluster.node("node-1").is_healthy

    def test_copy_preserves_usage(self, small_cluster):
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        clone = small_cluster.copy()
        assert clone.used_on("node-0") == Resources(2, 2)

    def test_summary_fields(self, small_cluster):
        summary = small_cluster.summary()
        assert summary["nodes"] == 6
        assert summary["applications"] == 2
        assert summary["assigned_replicas"] == 0

    def test_utilization(self, small_cluster):
        assert small_cluster.utilization() == 0.0
        small_cluster.assign(ReplicaId("shop", "frontend", 0), "node-0")
        assert small_cluster.utilization() == pytest.approx(2 / 24)


class TestBuildUniformCluster:
    def test_scalar_capacity_accepted(self):
        state = build_uniform_cluster(3, 8.0)
        assert len(state.nodes) == 3
        assert state.node("node-0").capacity == Resources(8, 8)

    def test_resources_capacity_accepted(self, simple_app):
        state = build_uniform_cluster(2, Resources(16, 32), [simple_app])
        assert state.node("node-1").capacity == Resources(16, 32)
        assert "shop" in state.applications
