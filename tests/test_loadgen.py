"""Tests for the load generator, utility accounting and CloudLab workload."""

import pytest

from repro.apps import (
    LoadGenerator,
    MultiAppLoadRecorder,
    ThroughputTimeline,
    build_hotel_reservation,
    build_overleaf,
    cloudlab_workload,
)


@pytest.fixture
def overleaf():
    return build_overleaf()


@pytest.fixture
def hotel():
    return build_hotel_reservation()


class TestRequestEvaluation:
    def test_full_service_serves_nominal_rate(self, overleaf):
        generator = LoadGenerator(overleaf)
        all_ms = set(overleaf.application.microservices)
        report = generator.report(all_ms)
        edits = report.sample("document-edits")
        assert edits.served_rps == edits.offered_rps
        assert edits.utility == 1.0
        assert edits.success_ratio == 1.0

    def test_missing_required_microservice_drops_request(self, overleaf):
        generator = LoadGenerator(overleaf)
        serving = set(overleaf.application.microservices) - {"clsi"}
        report = generator.report(serving)
        assert report.sample("compile").served_rps == 0.0
        assert report.sample("compile").utility == 0.0
        assert report.sample("compile").p95_latency_ms is None

    def test_missing_optional_microservice_degrades_utility(self, hotel):
        generator = LoadGenerator(hotel)
        serving = set(hotel.application.microservices) - {"user"}
        report = generator.report(serving)
        reserve = report.sample("reserve")
        assert reserve.served_rps == reserve.offered_rps
        assert reserve.utility == pytest.approx(0.8)

    def test_fail_fast_reduces_latency_when_optional_pruned(self, hotel):
        generator = LoadGenerator(hotel)
        full = generator.report(set(hotel.application.microservices))
        pruned = generator.report(set(hotel.application.microservices) - {"user"})
        assert pruned.sample("reserve").p95_latency_ms < full.sample("reserve").p95_latency_ms

    def test_critical_service_availability_flag(self, overleaf):
        generator = LoadGenerator(overleaf)
        up = generator.report({"web", "real-time", "document-updater", "docstore"})
        down = generator.report({"web", "spelling"})
        assert up.critical_service_available("document-edits")
        assert not down.critical_service_available("document-edits")

    def test_total_utility_rate_counts_only_served(self, overleaf):
        generator = LoadGenerator(overleaf)
        partial = generator.report({"web", "real-time", "document-updater", "docstore"})
        full = generator.report(set(overleaf.application.microservices))
        assert 0 < partial.total_utility_rate < full.total_utility_rate


class TestTimeline:
    def test_series_and_downtime(self, overleaf):
        generator = LoadGenerator(overleaf)
        timeline = ThroughputTimeline(app="overleaf")
        all_ms = set(overleaf.application.microservices)
        critical = {"web", "real-time", "document-updater", "docstore"}
        for t, serving in [(0, all_ms), (30, set()), (60, set()), (90, critical), (120, all_ms)]:
            timeline.record(generator.report(serving, time=t))
        rps = dict(timeline.series("document-edits"))
        assert rps[0] > 0 and rps[30] == 0 and rps[90] > 0
        assert timeline.downtime("document-edits") == pytest.approx(60)

    def test_utility_series(self, hotel):
        generator = LoadGenerator(hotel)
        timeline = ThroughputTimeline(app="hr")
        timeline.record(generator.report(set(hotel.application.microservices), time=0))
        timeline.record(generator.report(set(hotel.application.microservices) - {"user"}, time=30))
        utilities = dict(timeline.utility_series("reserve"))
        assert utilities[0] == 1.0
        assert utilities[30] == pytest.approx(0.8)


class TestMultiAppRecorder:
    def test_observe_and_goal_counting(self):
        workload = cloudlab_workload()
        recorder = MultiAppLoadRecorder(workload)
        all_up = {name: set(t.application.microservices) for name, t in workload.items()}
        recorder.observe(0.0, lambda name: all_up[name])
        assert recorder.apps_meeting_goal() == len(workload)
        nothing_up = {name: set() for name in workload}
        recorder.observe(30.0, lambda name: nothing_up[name])
        assert recorder.apps_meeting_goal() == 0


class TestCloudLabWorkload:
    def test_five_instances(self):
        workload = cloudlab_workload()
        assert set(workload) == {"overleaf0", "overleaf1", "overleaf2", "hr0", "hr1"}

    def test_total_demand_is_about_seventy_percent(self):
        workload = cloudlab_workload(total_capacity_cpu=200.0)
        total = sum(t.application.total_demand().cpu for t in workload.values())
        assert total == pytest.approx(140.0, rel=0.05)

    def test_each_instance_has_distinct_critical_service(self):
        workload = cloudlab_workload()
        criticals = {name: t.critical_request().name for name, t in workload.items()}
        assert criticals["overleaf0"] == "document-edits"
        assert criticals["overleaf1"] == "versions"
        assert criticals["overleaf2"] == "downloads"
        assert criticals["hr0"] == "search"
        assert criticals["hr1"] == "reserve"

    def test_critical_services_are_tagged_c1(self):
        workload = cloudlab_workload()
        for template in workload.values():
            for ms in template.critical_request().microservices:
                assert template.application.criticality_of(ms).level == 1

    def test_prices_differ_across_instances(self):
        workload = cloudlab_workload()
        prices = {t.application.price_per_unit for t in workload.values()}
        assert len(prices) >= 3
