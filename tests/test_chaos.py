"""Tests for the chaos-testing service."""

import pytest

from repro.apps import build_hotel_reservation, build_overleaf
from repro.chaos import ChaosInjector, ChaosTestingService, DegradationScenario, verify_tagging


@pytest.fixture
def overleaf():
    return build_overleaf()


class TestInjector:
    def test_criticality_level_scenarios_cover_levels(self, overleaf):
        injector = ChaosInjector(overleaf)
        scenarios = list(injector.criticality_level_scenarios())
        assert scenarios  # at least one level below the highest exists
        # The C1 scenario disables everything that is not C1.
        c1_scenario = scenarios[0]
        disabled = set(c1_scenario.disabled)
        for ms in overleaf.application.microservices:
            level = overleaf.application.criticality_of(ms).level
            assert (ms in disabled) == (level > 1)

    def test_single_service_scenarios_skip_critical(self, overleaf):
        injector = ChaosInjector(overleaf)
        for scenario in injector.single_service_scenarios():
            (name,) = scenario.disabled
            assert overleaf.application.criticality_of(name).level > 1

    def test_pairwise_scenarios_respect_limit(self, overleaf):
        injector = ChaosInjector(overleaf)
        assert len(list(injector.pairwise_scenarios(limit=5))) == 5

    def test_random_scenarios_protect_critical_by_default(self, overleaf):
        injector = ChaosInjector(overleaf, seed=3)
        for scenario in injector.random_scenarios(0.5, count=5):
            for name in scenario.disabled:
                assert overleaf.application.criticality_of(name).level > 1

    def test_random_scenario_degree_validation(self, overleaf):
        injector = ChaosInjector(overleaf)
        with pytest.raises(ValueError):
            list(injector.random_scenarios(1.5))

    def test_serving_set_is_complement_of_disabled(self, overleaf):
        scenario = DegradationScenario(disabled=("chat", "tags"))
        serving = scenario.serving_set(overleaf)
        assert "chat" not in serving and "tags" not in serving
        assert "web" in serving


class TestChaosService:
    def test_overleaf_is_diagonal_scaling_compliant(self, overleaf):
        report = verify_tagging(overleaf)
        assert report.passed
        assert report.summary()["failed"] == 0

    def test_hotel_reservation_is_compliant_after_error_handling(self):
        report = verify_tagging(build_hotel_reservation())
        assert report.passed

    def test_bad_tagging_is_detected(self, overleaf):
        # Mis-tag the real-time edit pipeline as non-critical: turning it off
        # must break the critical document-edits service and fail the test.
        from repro.apps.base import AppTemplate
        from repro.criticality import CriticalityTag

        bad_app = overleaf.application.with_tags({"real-time": CriticalityTag(9)})
        bad_template = AppTemplate(application=bad_app, request_types=dict(overleaf.request_types))
        report = verify_tagging(bad_template)
        assert not report.passed
        assert report.failures

    def test_min_utility_floor_enforced(self, overleaf):
        service = ChaosTestingService(overleaf, min_utility=0.99)
        scenario = DegradationScenario(disabled=("spelling",), description="drop spelling")
        result = service.run_scenario(scenario)
        # critical service still fine, but utility dropped below the floor
        assert result.critical_service_available
        assert not result.passed

    def test_report_text_contains_verdict(self, overleaf):
        report = verify_tagging(overleaf)
        assert "Verdict: PASS" in report.to_text()

    def test_custom_scenarios_run_verbatim(self, overleaf):
        service = ChaosTestingService(overleaf)
        report = service.run(scenarios=[DegradationScenario(disabled=("chat",), description="only chat")])
        assert len(report.results) == 1
        assert report.results[0].description == "only chat"


class TestEngineDrivenClusterCheck:
    """The engine-backed chaos check (repro.chaos.cluster_check)."""

    def test_well_tagged_templates_pass(self):
        from repro.chaos import verify_tagging_on_cluster

        for template in (build_overleaf(), build_hotel_reservation()):
            report = verify_tagging_on_cluster(template)
            assert report.passed, report.to_text()
            assert report.critical_microservices
            assert len(report.results) == 3

    def test_bad_tagging_is_caught_through_the_engine(self):
        from repro.apps.base import AppTemplate
        from repro.chaos import verify_tagging_on_cluster
        from repro.criticality import CriticalityTag

        overleaf = build_overleaf()
        bad_app = overleaf.application.with_tags({"real-time": CriticalityTag(9)})
        template = AppTemplate(
            application=bad_app, request_types=dict(overleaf.request_types)
        )
        report = verify_tagging_on_cluster(template)
        assert not report.passed
        # The engine legitimately turned off the mis-tagged critical-path
        # service while capacity for it still existed.
        assert any("real-time" in r.critical_missing for r in report.failures)

    def test_scenarios_report_fit_information(self):
        from repro.chaos import verify_tagging_on_cluster

        report = verify_tagging_on_cluster(build_overleaf())
        for result in report.results:
            assert result.surviving_cpu >= 0
            assert result.critical_demand_cpu > 0
        # At 75% failure the critical set cannot be guaranteed to pack.
        assert not report.results[-1].critical_fits

    def test_parameter_validation(self):
        from repro.chaos import verify_tagging_on_cluster

        with pytest.raises(ValueError):
            verify_tagging_on_cluster(build_overleaf(), node_count=1)
        with pytest.raises(ValueError):
            verify_tagging_on_cluster(build_overleaf(), headroom=0.5)
        with pytest.raises(ValueError):
            verify_tagging_on_cluster(build_overleaf(), packing_slack=0.0)
        with pytest.raises(ValueError):
            verify_tagging_on_cluster(build_overleaf(), failure_fractions=(1.0,))

    def test_text_report_mentions_each_level(self):
        from repro.chaos import verify_tagging_on_cluster

        report = verify_tagging_on_cluster(build_overleaf())
        text = report.to_text()
        assert "fail 25%" in text and "fail 50%" in text and "fail 75%" in text
