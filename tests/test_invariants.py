"""The invariant oracle: holds on healthy states, catches planted corruption."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.apps import build_hotel_reservation, build_overleaf
from repro.chaos import (
    INVARIANTS,
    InvariantError,
    check_capacity,
    check_equivalence,
    check_fleet,
    check_full_recovery,
    check_identity,
    check_invariants,
    check_placement,
    check_spillover_conservation,
    check_state,
    verify_invariants,
)
from repro.cluster import ClusterState, Node, Resources
from repro.cluster.state import ReplicaId
from repro.fleet import FleetConfig, FleetEngine
from repro.traces import failure_storm, TraceReplayer


def _names(violations) -> set[str]:
    return {violation.invariant for violation in violations}


@pytest.fixture
def reconciled_state(small_environment) -> ClusterState:
    state = small_environment.fresh_state()
    api.engine("revenue").reconcile(state, force=True)
    return state


class TestOracleOnHealthyStates:
    def test_reconciled_state_passes_every_invariant(self, reconciled_state):
        assert check_state(reconciled_state, recovered=True) == []
        verify_invariants(reconciled_state, recovered=True)

    def test_state_passes_mid_failure(self, small_environment):
        state = small_environment.fresh_state()
        eng = api.engine("revenue")
        eng.reconcile(state, force=True)
        state.fail_nodes(list(state.nodes)[:3])
        eng.reconcile(state)
        # recovered=True is safe mid-failure: the recovery check is vacuous.
        assert check_state(state, recovered=True) == []

    def test_storm_replay_ends_clean(self, small_environment):
        state = small_environment.fresh_state()
        eng = api.engine("revenue")
        trace = failure_storm(list(state.nodes), fraction=0.4, seed=3)
        TraceReplayer(eng).run(state, trace)
        verify_invariants(state, recovered=True)

    def test_fleet_passes(self):
        states = [
            _template_cell(build_overleaf),
            _template_cell(build_hotel_reservation),
        ]
        fleet = FleetEngine(FleetConfig(cells=2), states=states)
        fleet.reconcile(force=True)
        assert check_fleet(fleet, recovered=True) == []
        verify_invariants(fleet, recovered=True)


class TestOracleCatchesCorruption:
    def test_capacity_overcommit(self, reconciled_state):
        state = reconciled_state
        replica = next(iter(state.assignments))
        target = next(iter(state.nodes))
        # Cram every replica of the app onto one node, bypassing the guard.
        for other in list(state.assignments):
            if state.assignments[other] != target:
                state.unassign(other)
                state.assign(other, target, enforce_capacity=False)
        assert replica in state.assignments
        assert "capacity-overcommit" in _names(check_capacity(state))

    def test_double_placement(self, reconciled_state):
        state = reconciled_state
        replica, home = next(iter(state.assignments.items()))
        other = next(name for name in state.nodes if name != home)
        state._owned_replicas(other).add(replica)  # corrupt the reverse index
        found = check_placement(state)
        assert "placement-consistency" in _names(found)
        assert any("both" in violation.message for violation in found)

    def test_usage_counter_drift(self, reconciled_state):
        state = reconciled_state
        name = next(iter(state.nodes))
        state._used[name] = (state._used[name][0] + 5.0, state._used[name][1])
        assert "placement-consistency" in _names(check_placement(state))

    def test_running_counter_drift(self, reconciled_state):
        state = reconciled_state
        key = next(iter(state.running_replica_counts()))
        state._running[key] += 1
        found = check_placement(state)
        assert any("running-replica" in violation.message for violation in found)

    def test_unknown_application(self, reconciled_state):
        state = reconciled_state
        node = next(iter(state.nodes))
        state._assignments[ReplicaId("ghost-app", "web", 0)] = node
        assert "identity-consistency" in _names(check_identity(state))

    def test_out_of_range_replica_index(self, reconciled_state):
        state = reconciled_state
        replica, node = next(iter(state.assignments.items()))
        bogus = ReplicaId(replica.app, replica.microservice, 10_000)
        state._assignments[bogus] = node
        found = check_identity(state)
        assert any("out of range" in violation.message for violation in found)

    def test_full_recovery_catches_stranded_work(self, reconciled_state):
        state = reconciled_state
        assert check_full_recovery(state) == []
        # Delete one app's replicas with zero failed nodes: availability < 1.
        app = next(iter(state.applications))
        for replica in [r for r in state.assignments if r.app == app]:
            state.unassign(replica)
        assert "full-recovery-availability" in _names(check_full_recovery(state))

    def test_full_recovery_vacuous_while_failed(self, reconciled_state):
        state = reconciled_state
        state.fail_nodes(list(state.nodes)[:1])
        assert check_full_recovery(state) == []

    def test_equivalence_flags_divergence(self, reconciled_state):
        twin = reconciled_state.copy()
        assert check_equivalence(reconciled_state, twin) == []
        replica, home = next(iter(twin.assignments.items()))
        other = next(
            name
            for name in twin.nodes
            if name != home and twin.free_on(name).cpu > 1.0
        )
        twin.unassign(replica)
        twin.assign(replica, other, enforce_capacity=False)
        found = check_equivalence(reconciled_state, twin)
        assert _names(found) == {"incremental-equivalence"}

    def test_equivalence_flags_failed_set_drift(self, reconciled_state):
        twin = reconciled_state.copy()
        twin.fail_nodes(list(twin.nodes)[:1])
        found = check_equivalence(reconciled_state, twin)
        assert any("failed sets" in violation.message for violation in found)


class TestSpilloverConservation:
    def test_active_spillover_is_conserved(self):
        fleet = _spillover_fleet()
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        fleet.reconcile()
        assert fleet.spillovers  # the scenario actually planned a clone
        assert check_spillover_conservation(fleet) == []
        assert check_fleet(fleet) == []

    def test_clone_without_ledger_entry_is_flagged(self):
        fleet = _spillover_fleet()
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        fleet.reconcile()
        key = next(iter(fleet.spillovers))
        fleet._ledger.pop(key)  # corrupt the ledger: clone now orphaned
        found = check_spillover_conservation(fleet)
        assert _names(found) == {"spillover-conservation"}
        assert any("without a ledger entry" in v.message for v in found)

    def test_ledger_entry_without_clone_is_flagged(self):
        fleet = _spillover_fleet()
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        fleet.reconcile()
        (key, entry), *_ = fleet.spillovers.items()
        donor = fleet.cell(entry.donor)
        from repro.fleet.summary import clone_name

        donor.state.remove_application(clone_name(key[1], key[0]))
        found = check_spillover_conservation(fleet)
        assert any("no hosted clone" in v.message for v in found)


class TestDispatch:
    def test_dispatch_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot check invariants"):
            check_invariants(object())

    def test_verify_raises_with_violations_attached(self, reconciled_state):
        state = reconciled_state
        node = next(iter(state.nodes))
        state._assignments[ReplicaId("ghost-app", "web", 0)] = node
        with pytest.raises(InvariantError) as excinfo:
            verify_invariants(state)
        assert excinfo.value.violations
        assert all(v.invariant in INVARIANTS for v in excinfo.value.violations)


def _template_cell(builder, nodes=10, headroom=1.5) -> ClusterState:
    app = builder().application
    demand = app.total_demand()
    per_cpu = max(
        demand.cpu * headroom / nodes, max(ms.resources.cpu for ms in app) * 1.2
    )
    per_mem = max(
        demand.memory * headroom / nodes,
        max(ms.resources.memory for ms in app) * 1.2,
        1.0,
    )
    return ClusterState(
        nodes=[Node(f"node-{i}", Resources(per_cpu, per_mem)) for i in range(nodes)],
        applications=[app],
    )


def _spillover_fleet() -> FleetEngine:
    states = [
        _template_cell(build_overleaf),
        _template_cell(build_hotel_reservation),
        _template_cell(build_overleaf),
    ]
    return FleetEngine(FleetConfig(cells=3), states=states)
