"""Tests for the Overleaf and HotelReservation application models."""

import pytest

from repro.apps import (
    AppTemplate,
    RequestType,
    build_hotel_reservation,
    build_overleaf,
    resource_breakdown,
    retag_for_critical_service,
)
from repro.criticality import CriticalityTag


class TestRequestType:
    def test_requires_at_least_one_microservice(self):
        with pytest.raises(ValueError):
            RequestType(name="x", microservices=())

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RequestType(name="x", microservices=("a",), rate=-1)


class TestOverleaf:
    def test_has_fourteen_microservices(self):
        overleaf = build_overleaf()
        assert len(overleaf.application) == 14

    def test_edit_path_is_most_critical(self):
        overleaf = build_overleaf()
        for ms in ("web", "real-time", "document-updater", "docstore"):
            assert overleaf.application.criticality_of(ms) == CriticalityTag(1)

    def test_chat_and_tags_are_good_to_have(self):
        overleaf = build_overleaf()
        assert overleaf.application.criticality_of("chat") == CriticalityTag(5)
        assert overleaf.application.criticality_of("tags") == CriticalityTag(5)

    def test_dependency_graph_rooted_at_web(self):
        overleaf = build_overleaf()
        assert overleaf.application.source_microservices() == ["web"]

    def test_request_types_reference_known_microservices(self):
        overleaf = build_overleaf()
        for request in overleaf.request_types.values():
            for ms in (*request.microservices, *request.optional_microservices):
                assert ms in overleaf.application

    def test_scale_multiplies_resources(self):
        small = build_overleaf(scale=1.0)
        big = build_overleaf(scale=2.0)
        assert big.application.total_demand().cpu == pytest.approx(
            2 * small.application.total_demand().cpu
        )

    def test_critical_request_follows_constructor_argument(self):
        overleaf = build_overleaf(critical_service="versions")
        assert overleaf.critical_request().name == "versions"

    def test_unknown_request_reference_rejected(self):
        overleaf = build_overleaf()
        with pytest.raises(ValueError):
            AppTemplate(
                application=overleaf.application,
                request_types={"bad": RequestType(name="bad", microservices=("nope",))},
            )


class TestHotelReservation:
    def test_has_eight_microservices(self):
        hr = build_hotel_reservation()
        assert len(hr.application) == 8

    def test_frontend_and_search_are_critical(self):
        hr = build_hotel_reservation()
        assert hr.application.criticality_of("frontend") == CriticalityTag(1)
        assert hr.application.criticality_of("search") == CriticalityTag(1)

    def test_recommendation_is_least_critical(self):
        hr = build_hotel_reservation()
        assert hr.application.criticality_of("recommendation") == CriticalityTag(5)

    def test_reserve_degrades_without_user_service(self):
        hr = build_hotel_reservation()
        reserve = hr.request("reserve")
        assert "user" in reserve.optional_microservices
        assert reserve.degraded_utility == pytest.approx(0.8)

    def test_p95_latencies_match_table1(self):
        hr = build_hotel_reservation()
        assert hr.request("reserve").latency_ms == pytest.approx(55.33)
        assert hr.request("search").latency_ms == pytest.approx(53.26)
        assert hr.request("login").latency_ms == pytest.approx(41.8)


class TestTemplateHelpers:
    def test_rename_creates_independent_instance(self):
        overleaf = build_overleaf()
        clone = overleaf.rename("overleaf7", price_per_unit=9.0)
        assert clone.name == "overleaf7"
        assert clone.application.price_per_unit == 9.0
        assert overleaf.name == "overleaf"

    def test_with_critical_service(self):
        overleaf = build_overleaf()
        changed = overleaf.with_critical_service("compile")
        assert changed.critical_request().name == "compile"
        with pytest.raises(KeyError):
            overleaf.with_critical_service("nope")

    def test_retag_promotes_critical_request_services(self):
        overleaf = build_overleaf(critical_service="downloads")
        retagged = retag_for_critical_service(overleaf)
        for ms in retagged.critical_request().microservices:
            assert retagged.application.criticality_of(ms) == CriticalityTag(1)

    def test_retag_demotes_unrelated_c1_services(self):
        overleaf = build_overleaf(critical_service="spell-check")
        retagged = retag_for_critical_service(overleaf)
        # real-time is C1 in the stock template but unrelated to spell-check
        assert retagged.application.criticality_of("real-time") == CriticalityTag(2)

    def test_microservices_for_union(self):
        overleaf = build_overleaf()
        needed = overleaf.microservices_for(["chat", "spell-check"])
        assert needed == {"web", "chat", "spelling"}

    def test_resource_breakdown_sums_to_total(self):
        templates = {"o": build_overleaf(), "h": build_hotel_reservation()}
        breakdown = resource_breakdown(templates)
        total = sum(breakdown.values())
        expected = sum(t.application.total_demand().cpu for t in templates.values())
        assert total == pytest.approx(expected)
