"""Integration tests: the CloudLab-style scenario end to end.

These tests exercise the full stack — application models deployed on the
Kubernetes-like simulator, Phoenix reacting to a capacity crunch, load
generators measuring critical-service throughput — and assert the paper's
headline qualitative claims on a scaled-down cluster.
"""

import pytest

from repro.apps import LoadGenerator, MultiAppLoadRecorder, cloudlab_workload
from repro.cluster.resources import Resources
from repro.core import FairnessObjective, PhoenixController, RevenueObjective
from repro.kubesim import KubeCluster, KubeClusterConfig, PhoenixKubeBackend


def build_cloudlab_cluster(node_count=25, cpu_per_node=8.0):
    """A 25-node / 200-CPU cluster running the five paper app instances."""
    cluster = KubeCluster(
        KubeClusterConfig(
            node_count=node_count,
            node_capacity=Resources(cpu=cpu_per_node, memory=cpu_per_node * 2),
            pod_startup_seconds=10,
            pod_termination_seconds=5,
        )
    )
    workload = cloudlab_workload(total_capacity_cpu=node_count * cpu_per_node)
    for template in workload.values():
        cluster.deploy_application(template.application)
    return cluster, workload


@pytest.fixture(scope="module")
def steady_cluster():
    cluster, workload = build_cloudlab_cluster()
    cluster.step(120)
    return cluster, workload


class TestSteadyState:
    def test_all_applications_fully_serving(self, steady_cluster):
        cluster, workload = steady_cluster
        for name, template in workload.items():
            serving = cluster.serving_microservices(name)
            assert serving == set(template.application.microservices)

    def test_all_critical_service_goals_met(self, steady_cluster):
        cluster, workload = steady_cluster
        recorder = MultiAppLoadRecorder(workload)
        recorder.observe(cluster.now, cluster.serving_microservices)
        assert recorder.apps_meeting_goal() == len(workload)


class TestPhoenixUnderFailure:
    """Reduce capacity to ~42 % (the paper's breaking point) and recover."""

    def _run_failure_scenario(self, objective):
        cluster, workload = build_cloudlab_cluster()
        cluster.step(120)
        backend = PhoenixKubeBackend(cluster)
        controller = PhoenixController(backend, objective)
        controller.reconcile()

        # Fail 14 of 25 nodes -> 44 % of capacity remains.
        failed = [f"node-{i}" for i in range(14)]
        cluster.fail_nodes(failed)
        cluster.step(180)          # detection + eviction
        controller.reconcile()
        cluster.step(120)          # pods start on surviving nodes

        recorder = MultiAppLoadRecorder(workload)
        recorder.observe(cluster.now, cluster.serving_microservices)
        goals_met = recorder.apps_meeting_goal()

        # Nodes come back; Phoenix restores non-critical services.
        cluster.recover_nodes(failed)
        cluster.step(180)
        controller.reconcile()
        cluster.step(180)
        recorder.observe(cluster.now, cluster.serving_microservices)
        return cluster, workload, goals_met, recorder

    def test_phoenix_cost_keeps_critical_services_alive(self):
        cluster, workload, goals_met, _ = self._run_failure_scenario(RevenueObjective())
        # Paper: Phoenix retains critical-service availability for 5/5 apps
        # while Default manages only 2/5; we require a clear majority here.
        assert goals_met >= 4

    def test_phoenix_fair_keeps_critical_services_alive(self):
        _, _, goals_met, _ = self._run_failure_scenario(FairnessObjective())
        assert goals_met >= 4

    def test_full_recovery_after_nodes_return(self):
        cluster, workload, _, recorder = self._run_failure_scenario(RevenueObjective())
        for name, template in workload.items():
            assert cluster.serving_microservices(name) == set(template.application.microservices)
        assert recorder.apps_meeting_goal() == len(workload)

    def test_default_kubernetes_misses_goals_under_crunch(self):
        cluster, workload = build_cloudlab_cluster()
        cluster.step(120)
        failed = [f"node-{i}" for i in range(14)]
        cluster.fail_nodes(failed)
        cluster.step(600)  # give the default control loops plenty of time
        recorder = MultiAppLoadRecorder(workload)
        recorder.observe(cluster.now, cluster.serving_microservices)
        default_goals = recorder.apps_meeting_goal()
        assert default_goals < len(workload)

    def test_phoenix_beats_default_on_goals_met(self):
        _, _, phoenix_goals, _ = self._run_failure_scenario(RevenueObjective())

        cluster, workload = build_cloudlab_cluster()
        cluster.step(120)
        cluster.fail_nodes([f"node-{i}" for i in range(14)])
        cluster.step(600)
        recorder = MultiAppLoadRecorder(workload)
        recorder.observe(cluster.now, cluster.serving_microservices)
        default_goals = recorder.apps_meeting_goal()

        assert phoenix_goals > default_goals


class TestDiagonalScalingUtility:
    def test_overleaf_utility_preserved_for_edits_only(self):
        """Figure 6d: edits keep full utility, spell-check/versions drop to 0."""
        workload = cloudlab_workload()
        overleaf = workload["overleaf0"]
        generator = LoadGenerator(overleaf)
        critical_only = set(overleaf.critical_request().microservices)
        report = generator.report(critical_only)
        assert report.sample("document-edits").utility >= 0.9
        assert report.sample("spell-check").utility == 0.0
        assert report.sample("versions").utility == 0.0

    def test_hr_reserve_utility_drops_to_point_eight(self):
        """Figure 6f: reserve keeps serving as guest with utility 0.8."""
        workload = cloudlab_workload()
        hr = workload["hr1"]
        generator = LoadGenerator(hr)
        serving = set(hr.application.microservices) - {"user"}
        report = generator.report(serving)
        assert report.sample("reserve").served_rps > 0
        assert report.sample("reserve").utility == pytest.approx(0.8)
