"""Golden-equivalence suite: optimized plan → pack → diff vs. the naive seed.

The optimized hot path (lazy-rescore heap ranker, blocked node index,
incremental victim index, trusted state mutators, cached differ) must
produce **byte-identical** output to the naive reference implementations
retained in :mod:`repro.core.reference`.  This suite generates randomized
cluster/failure scenarios — heterogeneous nodes, memory-constrained
microservices, dependency graphs, stateful pinning, multi-replica services,
over-committed plans that force migration and delete-lower-ranks — and
asserts equality of:

* the activation plan (``ranked``/``activated``, order included),
* the packing result (assignment *including insertion order*, unplaced,
  deleted and migrated, order included), and
* the scheduler's action list.

It also cross-checks the state's incremental running-replica index against a
brute-force recount after every scenario.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import FairnessObjective, RevenueObjective
from repro.core.packing import PackingHeuristic
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.planner import PhoenixPlanner, PriorityEstimator
from repro.core.reference import (
    ReferencePackingHeuristic,
    reference_diff,
    reference_rank,
)
from repro.core.scheduler import PhoenixScheduler
from repro.criticality import CriticalityTag

SEEDS = list(range(12))


# -- scenario generation ---------------------------------------------------------


def _random_application(rng: random.Random, index: int) -> Application:
    """An app with random criticalities, resources, replicas and (maybe) a DG."""
    n_ms = rng.randint(3, 9)
    microservices = []
    for j in range(n_ms):
        memory_heavy = rng.random() < 0.3
        microservices.append(
            Microservice(
                name=f"ms{j}",
                resources=Resources(
                    cpu=rng.choice([0.5, 1.0, 1.5, 2.0, 3.0]),
                    # Occasionally memory-dominant, to exercise the node
                    # index's per-block memory pruning.
                    memory=rng.choice([4.0, 6.0]) if memory_heavy else rng.choice([0.0, 0.5, 1.0, 2.0]),
                ),
                criticality=CriticalityTag(rng.randint(1, 5)),
                replicas=rng.choice([1, 1, 1, 2, 3]),
                stateful=rng.random() < 0.15,
            )
        )
    edges = None
    if rng.random() < 0.6:  # dependency-graph case
        edges = []
        for j in range(1, n_ms):
            # Random DAG: every node gets at least one earlier predecessor.
            for _ in range(rng.randint(1, 2)):
                edges.append((f"ms{rng.randint(0, j - 1)}", f"ms{j}"))
        if rng.random() < 0.3 and n_ms >= 4:
            edges.append((f"ms{n_ms - 1}", f"ms{n_ms - 2}"))  # cycle case
    return Application.from_microservices(
        f"app{index}",
        microservices,
        dependency_edges=edges,
        price_per_unit=rng.choice([1.0, 2.0, 3.0, 5.0]),
    )


def _random_state(rng: random.Random) -> ClusterState:
    apps = [_random_application(rng, i) for i in range(rng.randint(2, 5))]
    nodes = [
        Node(
            f"n{i}",
            Resources(
                cpu=rng.choice([4.0, 6.0, 8.0, 12.0]),
                memory=rng.choice([4.0, 6.0, 8.0, 12.0]),
            ),
        )
        for i in range(rng.randint(6, 24))
    ]
    state = ClusterState(nodes=nodes, applications=apps)
    # Random initial placement: first-fit in shuffled order, best effort.
    replicas = [
        replica
        for app in apps
        for ms in app
        for replica in state.iter_replicas(app.name, ms.name)
    ]
    rng.shuffle(replicas)
    node_names = [n.name for n in nodes]
    for replica in replicas:
        if rng.random() < 0.2:
            continue  # leave some replicas unplaced
        rng.shuffle(node_names)
        demand = state.demand_of(replica.app, replica.microservice)
        for name in node_names:
            if demand.fits_within(state.free_on(name)):
                state.assign(replica, name)
                break
    return state


def _fail_some_nodes(rng: random.Random, state: ClusterState) -> None:
    names = list(state.nodes)
    count = rng.randint(1, max(1, len(names) // 2))
    state.fail_nodes(rng.sample(names, count))


def _objective_for(kind: str):
    return RevenueObjective() if kind == "revenue" else FairnessObjective()


def reference_plan(state: ClusterState, objective) -> ActivationPlan:
    """The seed's ``PhoenixPlanner.plan`` logic on top of ``reference_rank``."""
    estimator = PriorityEstimator()
    applications = state.applications
    capacity = state.total_capacity().cpu

    pinned = 0.0
    degradable: dict[str, Application] = {}
    pinned_entries: list[RankedMicroservice] = []
    for name, app in applications.items():
        stateless = [ms for ms in app if not ms.stateful]
        stateful = [ms for ms in app if ms.stateful]
        pinned += sum(ms.total_resources.cpu for ms in stateful)
        pinned_entries.extend(
            RankedMicroservice(name, ms.name, ms.total_resources.cpu) for ms in stateful
        )
        if stateful:
            degradable[name] = Application(
                name=app.name,
                microservices={ms.name: ms for ms in stateless},
                dependency_graph=(
                    app.dependency_graph.subgraph(ms.name for ms in stateless).copy()
                    if app.dependency_graph is not None
                    else None
                ),
                price_per_unit=app.price_per_unit,
                critical_service=app.critical_service,
            )
        else:
            degradable[name] = app

    available = max(0.0, capacity - pinned)
    app_rank = {name: estimator.rank(app) for name, app in degradable.items()}
    plan = reference_rank(objective, degradable, app_rank, available)
    plan.activated = pinned_entries + plan.activated
    plan.ranked = pinned_entries + plan.ranked
    plan.capacity = capacity
    return plan


def assert_packing_equal(optimized, reference) -> None:
    assert list(optimized.assignment.items()) == list(reference.assignment.items())
    assert optimized.unplaced == reference.unplaced
    assert optimized.deleted == reference.deleted
    assert list(optimized.migrated.items()) == list(reference.migrated.items())


def assert_running_index_consistent(state: ClusterState) -> None:
    """The incremental running counters must match a brute-force recount."""
    expected: dict[tuple[str, str], int] = {}
    for replica, node_name in state.assignments.items():
        if state.node(node_name).is_healthy:
            key = (replica.app, replica.microservice)
            expected[key] = expected.get(key, 0) + 1
    assert state.running_replica_counts() == expected


# -- the suite -------------------------------------------------------------------


@pytest.mark.parametrize("objective_kind", ["revenue", "fairness"])
@pytest.mark.parametrize("seed", SEEDS)
class TestGoldenEquivalence:
    """>= 24 randomized scenarios (12 seeds x 2 objectives)."""

    def test_plan_pack_diff_identical(self, seed, objective_kind):
        rng = random.Random(seed)
        state = _random_state(rng)
        _fail_some_nodes(rng, state)

        planner = PhoenixPlanner(_objective_for(objective_kind))
        plan_opt = planner.plan(state)
        plan_ref = reference_plan(state, _objective_for(objective_kind))
        assert plan_opt.ranked == plan_ref.ranked
        assert plan_opt.activated == plan_ref.activated
        assert plan_opt.capacity == plan_ref.capacity
        # Warm split-cache path must be identical to the cold one.
        plan_again = planner.plan(state)
        assert plan_again.ranked == plan_opt.ranked
        assert plan_again.activated == plan_opt.activated

        packing_opt = PackingHeuristic().pack(state.copy(), plan_opt)
        packing_ref = ReferencePackingHeuristic().pack(state.copy(), plan_ref)
        assert_packing_equal(packing_opt, packing_ref)

        actions_opt = PhoenixScheduler._diff(state, packing_opt)
        actions_ref = reference_diff(state, packing_ref)
        assert actions_opt == actions_ref

        # Full-stack: schedule() against the reference pipeline.
        schedule = PhoenixScheduler().schedule(state, plan_opt)
        assert schedule.actions == actions_ref
        assert schedule.target_assignment == packing_ref.assignment

        assert_running_index_consistent(state)

    def test_overcommitted_plan_forces_migration_and_deletion(self, seed, objective_kind):
        """Activate the full ranked list regardless of capacity.

        This drives the packer deep into the repack and delete-lower-ranks
        strategies, exercising the victim index against the per-call re-sort.
        """
        rng = random.Random(10_000 + seed)
        state = _random_state(rng)
        _fail_some_nodes(rng, state)

        planner = PhoenixPlanner(_objective_for(objective_kind))
        plan = planner.plan(state)
        overcommitted = ActivationPlan(
            ranked=list(plan.ranked),
            activated=list(plan.ranked),  # everything, capacity ignored
            capacity=plan.capacity,
            objective=plan.objective,
        )
        reference_copy = ActivationPlan(
            ranked=list(plan.ranked),
            activated=list(plan.ranked),
            capacity=plan.capacity,
            objective=plan.objective,
        )

        packing_opt = PackingHeuristic().pack(state.copy(), overcommitted)
        packing_ref = ReferencePackingHeuristic().pack(state.copy(), reference_copy)
        assert_packing_equal(packing_opt, packing_ref)
        assert PhoenixScheduler._diff(state, packing_opt) == reference_diff(state, packing_ref)

    def test_packing_without_migration_or_deletion(self, seed, objective_kind):
        rng = random.Random(20_000 + seed)
        state = _random_state(rng)
        _fail_some_nodes(rng, state)
        plan = PhoenixPlanner(_objective_for(objective_kind)).plan(state)
        for kwargs in (
            {"allow_migration": False, "allow_deletion": False},
            {"allow_migration": True, "allow_deletion": False},
            {"allow_migration": False, "allow_deletion": True},
        ):
            packing_opt = PackingHeuristic(**kwargs).pack(state.copy(), plan)
            packing_ref = ReferencePackingHeuristic(**kwargs).pack(state.copy(), plan)
            assert_packing_equal(packing_opt, packing_ref)


class TestTargetedEquivalence:
    """Deterministic cases the random generator might under-sample."""

    def test_stateful_pinning_case(self):
        app = Application.from_microservices(
            "pinned",
            [
                Microservice("api", Resources(2, 2), CriticalityTag(1)),
                Microservice("db", Resources(3, 3), CriticalityTag(4), stateful=True),
                Microservice("cache", Resources(1, 1), CriticalityTag(2), stateful=True),
                Microservice("batch", Resources(2, 2), CriticalityTag(5)),
            ],
            dependency_edges=[("api", "db"), ("api", "cache"), ("api", "batch")],
        )
        state = ClusterState(nodes=[Node(f"n{i}", Resources(5, 5)) for i in range(3)], applications=[app])
        state.assign(ReplicaId("pinned", "db", 0), "n0")
        state.fail_nodes(["n2"])
        for objective in (RevenueObjective(), FairnessObjective()):
            plan_opt = PhoenixPlanner(objective).plan(state)
            plan_ref = reference_plan(state, type(objective)())
            assert plan_opt.ranked == plan_ref.ranked
            assert plan_opt.activated == plan_ref.activated
            packing_opt = PackingHeuristic().pack(state.copy(), plan_opt)
            packing_ref = ReferencePackingHeuristic().pack(state.copy(), plan_ref)
            assert_packing_equal(packing_opt, packing_ref)

    def test_memory_constrained_best_fit(self):
        """CPU fits but memory does not: the block-pruned index must agree."""
        rng = random.Random(777)
        apps = [
            Application.from_microservices(
                "memheavy",
                [
                    Microservice("wide", Resources(1.0, 7.0), CriticalityTag(1), replicas=4),
                    Microservice("thin", Resources(2.0, 0.5), CriticalityTag(2), replicas=6),
                ],
            )
        ]
        nodes = [Node(f"n{i}", Resources(rng.choice([4.0, 8.0]), rng.choice([1.0, 8.0]))) for i in range(16)]
        state = ClusterState(nodes=nodes, applications=apps)
        state.fail_nodes(["n3", "n7"])
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        packing_opt = PackingHeuristic().pack(state.copy(), plan)
        packing_ref = ReferencePackingHeuristic().pack(state.copy(), plan)
        assert_packing_equal(packing_opt, packing_ref)

    def test_weighted_objective_uses_heap_and_matches_reference(self):
        from repro.core.objectives import WeightedObjective

        objective = WeightedObjective({RevenueObjective(): 0.5, FairnessObjective(): 0.5})
        assert objective.independent_scores
        rng = random.Random(42)
        state = _random_state(rng)
        _fail_some_nodes(rng, state)
        plan_opt = PhoenixPlanner(objective).plan(state)
        plan_ref = reference_plan(
            state, WeightedObjective({RevenueObjective(): 0.5, FairnessObjective(): 0.5})
        )
        assert plan_opt.ranked == plan_ref.ranked
        assert plan_opt.activated == plan_ref.activated

    def test_coupled_objective_falls_back_to_reference_loop(self):
        """``independent_scores = False`` objectives take the exact path."""

        class CoupledObjective(RevenueObjective):
            independent_scores = False

            def score(self, app, microservice, allocated):
                # Depends on *other* apps' allocations: illegal for the heap.
                return super().score(app, microservice, allocated) - 0.01 * sum(allocated.values())

        rng = random.Random(7)
        state = _random_state(rng)
        _fail_some_nodes(rng, state)
        plan_opt = PhoenixPlanner(CoupledObjective()).plan(state)
        plan_ref = reference_plan(state, CoupledObjective())
        assert plan_opt.ranked == plan_ref.ranked
        assert plan_opt.activated == plan_ref.activated
