"""Tests for the packing heuristic (Algorithm 2)."""

from repro.cluster import Application, Node, Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import RevenueObjective
from repro.core.packing import PackingHeuristic
from repro.core.plan import ActivationPlan, RankedMicroservice
from repro.core.planner import PhoenixPlanner

from tests.conftest import make_microservice


def plan_for(state):
    return PhoenixPlanner(RevenueObjective()).plan(state)


def entry(app, ms, cpu):
    return RankedMicroservice(app, ms, cpu)


class TestBestFit:
    def test_places_on_tightest_node(self):
        app = Application.from_microservices("a", [make_microservice("m", cpu=2, memory=2)])
        state = ClusterState(
            nodes=[Node("big", Resources(10, 10)), Node("small", Resources(3, 3))],
            applications=[app],
        )
        plan = ActivationPlan(ranked=[entry("a", "m", 2)], activated=[entry("a", "m", 2)])
        result = PackingHeuristic().pack(state.copy(), plan)
        assert result.assignment[ReplicaId("a", "m", 0)] == "small"

    def test_keeps_already_running_replicas_in_place(self, simple_app):
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8)), Node("n1", Resources(8, 8))],
            applications=[simple_app],
        )
        state.assign(ReplicaId("shop", "frontend", 0), "n1")
        plan = plan_for(state)
        result = PackingHeuristic().pack(state.copy(), plan)
        assert result.assignment[ReplicaId("shop", "frontend", 0)] == "n1"

    def test_unplaced_when_nothing_fits(self):
        app = Application.from_microservices("a", [make_microservice("huge", cpu=10, memory=10)])
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        plan = ActivationPlan(ranked=[entry("a", "huge", 10)], activated=[entry("a", "huge", 10)])
        result = PackingHeuristic().pack(state.copy(), plan)
        assert ("a", "huge") in result.unplaced
        assert ReplicaId("a", "huge", 0) not in result.assignment


class TestDiagonalScaling:
    def test_non_activated_running_containers_are_deleted(self, simple_app):
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8))],
            applications=[simple_app],
        )
        state.assign(ReplicaId("shop", "recommend", 0), "n0")
        plan = ActivationPlan(
            ranked=[entry("shop", "frontend", 2)],
            activated=[entry("shop", "frontend", 2)],
        )
        result = PackingHeuristic().pack(state.copy(), plan)
        assert ReplicaId("shop", "recommend", 0) in result.deleted
        assert ReplicaId("shop", "recommend", 0) not in result.assignment

    def test_replicas_on_failed_nodes_are_rescheduled(self, simple_app):
        state = ClusterState(
            nodes=[Node("n0", Resources(8, 8)), Node("n1", Resources(8, 8))],
            applications=[simple_app],
        )
        state.assign(ReplicaId("shop", "frontend", 0), "n0")
        state.fail_nodes(["n0"])
        plan = plan_for(state)
        result = PackingHeuristic().pack(state.copy(), plan)
        assert result.assignment[ReplicaId("shop", "frontend", 0)] == "n1"


class TestMigration:
    def _fragmented_state(self):
        """Two nodes, each half full, so a large container needs migration.

        Each node has 6 CPU with a 3-CPU filler on it: 3 CPU free per node,
        while the new container needs 5 — only consolidating the fillers
        onto one node makes room.
        """
        filler0 = make_microservice("filler0", cpu=3, memory=3, criticality=2)
        filler1 = make_microservice("filler1", cpu=3, memory=3, criticality=2)
        big = make_microservice("big", cpu=5, memory=5, criticality=1)
        app = Application.from_microservices("a", [filler0, filler1, big])
        state = ClusterState(
            nodes=[Node("n0", Resources(6, 6)), Node("n1", Resources(6, 6))],
            applications=[app],
        )
        state.assign(ReplicaId("a", "filler0", 0), "n0")
        state.assign(ReplicaId("a", "filler1", 0), "n1")
        return state

    def test_migration_frees_a_node(self):
        state = self._fragmented_state()
        plan = ActivationPlan(
            ranked=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
            activated=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
        )
        result = PackingHeuristic().pack(state.copy(), plan)
        assert ReplicaId("a", "big", 0) in result.assignment
        assert result.migrated  # something moved to make room

    def test_migration_disabled_falls_back_to_deletion_or_unplaced(self):
        state = self._fragmented_state()
        plan = ActivationPlan(
            ranked=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
            activated=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
        )
        result = PackingHeuristic(allow_migration=False, allow_deletion=False).pack(state.copy(), plan)
        assert ("a", "big") in result.unplaced

    def test_capacity_invariant_after_migration(self):
        state = self._fragmented_state()
        plan = ActivationPlan(
            ranked=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
            activated=[entry("a", "filler0", 3), entry("a", "filler1", 3), entry("a", "big", 5)],
        )
        working = state.copy()
        PackingHeuristic().pack(working, plan)
        for node in working.nodes.values():
            assert working.used_on(node.name).fits_within(node.capacity)


class TestDeletion:
    def test_lower_ranked_deleted_for_higher_ranked(self):
        low = make_microservice("low", cpu=4, memory=4, criticality=5)
        high = make_microservice("high", cpu=4, memory=4, criticality=1)
        app = Application.from_microservices("a", [high, low])
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        state.assign(ReplicaId("a", "low", 0), "n0")
        plan = ActivationPlan(
            ranked=[entry("a", "high", 4), entry("a", "low", 4)],
            activated=[entry("a", "high", 4), entry("a", "low", 4)],
        )
        result = PackingHeuristic().pack(state.copy(), plan)
        assert result.assignment.get(ReplicaId("a", "high", 0)) == "n0"
        assert ReplicaId("a", "low", 0) in result.deleted

    def test_deletion_disabled_keeps_lower_ranked(self):
        low = make_microservice("low", cpu=4, memory=4, criticality=5)
        high = make_microservice("high", cpu=4, memory=4, criticality=1)
        app = Application.from_microservices("a", [high, low])
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        state.assign(ReplicaId("a", "low", 0), "n0")
        plan = ActivationPlan(
            ranked=[entry("a", "high", 4), entry("a", "low", 4)],
            activated=[entry("a", "high", 4), entry("a", "low", 4)],
        )
        result = PackingHeuristic(allow_migration=False, allow_deletion=False).pack(state.copy(), plan)
        assert ReplicaId("a", "low", 0) in result.assignment
        assert ("a", "high") in result.unplaced

    def test_higher_ranked_never_deleted_for_lower_ranked(self):
        high = make_microservice("high", cpu=4, memory=4, criticality=1)
        low = make_microservice("low", cpu=4, memory=4, criticality=5)
        app = Application.from_microservices("a", [high, low])
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        state.assign(ReplicaId("a", "high", 0), "n0")
        plan = ActivationPlan(
            ranked=[entry("a", "high", 4), entry("a", "low", 4)],
            activated=[entry("a", "high", 4), entry("a", "low", 4)],
        )
        result = PackingHeuristic().pack(state.copy(), plan)
        assert result.assignment.get(ReplicaId("a", "high", 0)) == "n0"
        assert ReplicaId("a", "high", 0) not in result.deleted


class TestReplicas:
    def test_all_replicas_placed_or_none(self):
        app = Application.from_microservices(
            "a", [make_microservice("web", cpu=3, memory=3, replicas=3)]
        )
        # Only two 4-cpu nodes: the third replica cannot fit anywhere.
        state = ClusterState(
            nodes=[Node("n0", Resources(4, 4)), Node("n1", Resources(4, 4))],
            applications=[app],
        )
        plan = ActivationPlan(ranked=[entry("a", "web", 9)], activated=[entry("a", "web", 9)])
        result = PackingHeuristic().pack(state.copy(), plan)
        assert ("a", "web") in result.unplaced
        assert not any(r.app == "a" for r in result.assignment)

    def test_multiple_replicas_spread_across_nodes(self):
        app = Application.from_microservices(
            "a", [make_microservice("web", cpu=3, memory=3, replicas=2)]
        )
        state = ClusterState(
            nodes=[Node("n0", Resources(4, 4)), Node("n1", Resources(4, 4))],
            applications=[app],
        )
        plan = ActivationPlan(ranked=[entry("a", "web", 6)], activated=[entry("a", "web", 6)])
        result = PackingHeuristic().pack(state.copy(), plan)
        nodes_used = {result.assignment[ReplicaId("a", "web", i)] for i in range(2)}
        assert nodes_used == {"n0", "n1"}
