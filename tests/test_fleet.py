"""Fleet layer: partitioner determinism, facade equivalence, spillover,
parallel byte-identity and the fleet CLI.

The two load-bearing suites mirror the acceptance criteria:

* ``TestSingleCellEquivalence`` — a one-cell ``FleetEngine`` is
  byte-identical to a bare ``PhoenixEngine`` over long churn (the facade
  adds no drift);
* ``TestWorkerEquivalence`` — ``reconcile(workers=4)`` and the sharded
  fleet replayer produce byte-identical output to serial runs (lockstep
  fuzz in the style of ``tests/test_incremental.py``).
"""

from __future__ import annotations

import random
import subprocess
import sys
from pathlib import Path

import pytest

import repro.api as api
from repro.adaptlab import build_environment
from repro.apps import build_hotel_reservation, build_overleaf
from repro.chaos import check_equivalence, run_cell_outage_check, verify_invariants
from repro.cluster import ClusterState, Node, Resources
from repro.fleet import (
    CellDegraded,
    FleetConfig,
    FleetEngine,
    FleetReplayer,
    HashPartitioner,
    NoSpillover,
    RackAwarePartitioner,
    SpilloverPlanned,
    SpilloverReleased,
    partition_state,
    stable_cell,
)
from repro.fleet.summary import is_clone
from repro.traces import TraceReplayer, fleet_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def _template_cell(builder, nodes=10, headroom=1.5) -> ClusterState:
    """One cell hosting one template application with spare headroom."""
    app = builder().application
    demand = app.total_demand()
    per_cpu = max(
        demand.cpu * headroom / nodes, max(ms.resources.cpu for ms in app) * 1.2
    )
    per_mem = max(
        demand.memory * headroom / nodes,
        max(ms.resources.memory for ms in app) * 1.2,
        1.0,
    )
    return ClusterState(
        nodes=[Node(f"node-{i}", Resources(per_cpu, per_mem)) for i in range(nodes)],
        applications=[app],
    )


def _three_cell_fleet(**config_kwargs) -> FleetEngine:
    states = [
        _template_cell(build_overleaf),
        _template_cell(build_hotel_reservation),
        _template_cell(build_overleaf),
    ]
    return FleetEngine(FleetConfig(cells=3, **config_kwargs), states=states)


def _report_fingerprint(report):
    """Everything observable about one engine round (no wall-clock fields)."""
    plan = report.plan
    schedule = report.schedule
    return {
        "triggered": report.triggered,
        "failed": report.failed_nodes,
        "recovered": report.recovered_nodes,
        "ranked": None if plan is None else list(plan.ranked),
        "activated": None if plan is None else list(plan.activated),
        "target": None if schedule is None else dict(schedule.target_assignment),
        "actions": None if schedule is None else list(schedule.actions),
        "unplaced": None if schedule is None else list(schedule.unplaced),
        "executed": report.actions_executed,
    }


def _fleet_fingerprint(report):
    return {
        "cells": {k: _report_fingerprint(v) for k, v in report.cell_reports.items()},
        "spill": {k: _report_fingerprint(v) for k, v in report.spillover_reports.items()},
        "planned": report.planned,
        "released": report.released,
        "unplaced": report.unplaced,
        "degraded": report.degraded_cells,
        "availability": report.availability,
        "revenue": report.revenue,
        "utilization": report.utilization,
    }


def _state_fingerprint(state: ClusterState):
    return {
        "assignments": dict(state.assignments),
        "failed": state.failed_names(),
        "apps": sorted(state.applications),
        "summary": state.summary(),
    }


# -- partitioners ---------------------------------------------------------------


class TestPartitionerDeterminism:
    def test_stable_cell_is_stable(self):
        assert stable_cell("node-17", 8, seed=3) == stable_cell("node-17", 8, seed=3)
        assert stable_cell("node-17", 8, seed=3) != stable_cell("node-17", 8, seed=4) or True
        # Different tokens spread (not all in one cell for a real population).
        cells = {stable_cell(f"node-{i}", 8, seed=0) for i in range(256)}
        assert len(cells) == 8

    def test_stable_across_processes_and_hashseed(self):
        """Same node set + seed ⇒ byte-identical assignment across processes.

        Runs the partition in subprocesses with *different* PYTHONHASHSEED
        values — the built-in ``hash`` would shuffle, ``stable_cell`` must
        not.
        """
        script = (
            "from repro.fleet import HashPartitioner, RackAwarePartitioner\n"
            "from repro.cluster import Node, Resources\n"
            "nodes = [Node(f'node-{i}', Resources(1, 1), labels={'rack': f'r{i // 4}'})"
            " for i in range(64)]\n"
            "hp, rp = HashPartitioner(seed=7), RackAwarePartitioner(seed=7)\n"
            "print([hp.cell_of_node(n, 5) for n in nodes])\n"
            "print([rp.cell_of_node(n, 5) for n in nodes])\n"
        )
        outputs = []
        for hashseed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": hashseed},
            )
            assert result.returncode == 0, result.stderr
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]

    def test_rack_partitioner_keeps_racks_together(self):
        nodes = [
            Node(f"node-{i}", Resources(1, 1), labels={"rack": f"rack-{i // 8}"})
            for i in range(80)
        ]
        partitioner = RackAwarePartitioner(seed=0)
        for rack_start in range(0, 80, 8):
            cells = {partitioner.cell_of_node(n, 4) for n in nodes[rack_start : rack_start + 8]}
            assert len(cells) == 1, "a rack was split across cells"

    def test_unlabeled_nodes_fall_back_to_name_hash(self):
        node = Node("node-3", Resources(1, 1))
        rack = RackAwarePartitioner(seed=11)
        plain = HashPartitioner(seed=11)
        assert rack.cell_of_node(node, 6) == plain.cell_of_node(node, 6)

    def test_partition_state_preserves_colocated_assignments(self):
        env = build_environment(node_count=40, n_apps=4, seed=9)
        state = env.fresh_state()
        parts = partition_state(state, 3, "hash", seed=2)
        assert sum(len(p.nodes) for p in parts) == 40
        assert sum(len(p.applications) for p in parts) == len(state.applications)
        total_preserved = sum(len(p.assignments) for p in parts)
        assert 0 < total_preserved <= len(state.assignments)
        for part in parts:
            for replica, node_name in part.assignments.items():
                assert state.assignments[replica] == node_name

    def test_partition_state_is_deterministic(self):
        env = build_environment(node_count=30, n_apps=3, seed=4)
        first = partition_state(env.fresh_state(), 4, "hash", seed=1)
        second = partition_state(env.fresh_state(), 4, "hash", seed=1)
        for a, b in zip(first, second):
            assert sorted(a.nodes) == sorted(b.nodes)
            assert sorted(a.applications) == sorted(b.applications)
            assert dict(a.assignments) == dict(b.assignments)

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            FleetConfig(cells=2, partitioner="bogus")


# -- config ---------------------------------------------------------------------


class TestFleetConfig:
    def test_cell_names_default_and_explicit(self):
        assert FleetConfig(cells=3).resolved_cell_names() == ("cell-0", "cell-1", "cell-2")
        config = FleetConfig(cells=2, cell_names=("east", "west"))
        assert config.resolved_cell_names() == ("east", "west")
        with pytest.raises(ValueError, match="cell_names"):
            FleetConfig(cells=2, cell_names=("only-one",))

    def test_per_cell_overrides(self):
        config = FleetConfig(
            cells=2,
            objective="revenue",
            cell_overrides={"cell-1": {"implementation": "reference", "incremental": False}},
        )
        assert config.engine_config_for("cell-0").implementation == "fast"
        ref = config.engine_config_for("cell-1")
        assert ref.implementation == "reference"
        assert ref.incremental is False
        # Index keys work too.
        by_index = FleetConfig(cells=2, cell_overrides={1: {"allow_deletion": False}})
        assert by_index.engine_config_for(1).allow_deletion is False

    def test_unknown_override_field_rejected(self):
        with pytest.raises(ValueError, match="unknown EngineConfig"):
            FleetConfig(cells=2, cell_overrides={"cell-0": {"bogus_field": 1}})

    def test_engine_validation_still_applies(self):
        with pytest.raises(ValueError):
            FleetConfig(cells=0)
        with pytest.raises(ValueError):
            FleetConfig(workers=0)
        with pytest.raises(ValueError):
            FleetConfig(objective="bogus")


# -- facade equivalence ----------------------------------------------------------


class TestSingleCellEquivalence:
    """A one-cell fleet is byte-identical to the bare engine: no drift."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_lockstep_churn(self, seed):
        rng = random.Random(seed)
        bare_state = _template_cell(build_overleaf, nodes=16)
        fleet_state = _template_cell(build_overleaf, nodes=16)
        engine = api.engine("revenue")
        fleet = FleetEngine(FleetConfig(cells=1), states=[fleet_state])
        reports = (
            engine.reconcile(bare_state, force=True),
            fleet.reconcile(force=True),
        )
        assert _report_fingerprint(reports[0]) == _report_fingerprint(
            reports[1].cell_reports["cell-0"]
        )
        for step in range(120):
            healthy = sorted(n for n, node in bare_state.nodes.items() if not node.failed)
            failed = sorted(bare_state.failed_names())
            roll = rng.random()
            if roll < 0.4 and healthy:
                picked = rng.sample(healthy, min(len(healthy), rng.randint(1, 3)))
                bare_state.fail_nodes(picked)
                fleet_state.fail_nodes(picked)
            elif roll < 0.8 and failed:
                picked = rng.sample(failed, 1)
                bare_state.recover_nodes(picked)
                fleet_state.recover_nodes(picked)
            force = rng.random() < 0.05
            bare_report = engine.reconcile(bare_state, force=force)
            fleet_report = fleet.reconcile(force=force)
            assert _report_fingerprint(bare_report) == _report_fingerprint(
                fleet_report.cell_reports["cell-0"]
            ), f"step {step}"
            assert not fleet_report.planned and not fleet_report.released
            assert _state_fingerprint(bare_state) == _state_fingerprint(fleet_state), (
                f"step {step} state"
            )


# -- parallel byte-identity ------------------------------------------------------


def _tiny_app(name: str):
    from repro.cluster import Application, Microservice
    from repro.criticality import CriticalityTag

    return Application.from_microservices(
        name, [Microservice("svc", Resources(0.05, 0.05), CriticalityTag(3))]
    )


class TestWorkerEquivalence:
    """workers=4 == workers=1, byte for byte, reports and states.

    The persistent shard pool only ships per-round health deltas, so the
    fuzz also injects structural mutations (``add_application`` between
    rounds) to exercise the full-resync guard, and interleaves a serial
    round mid-run to exercise the competing-dirty-consumer guard.
    """

    @pytest.mark.parametrize(
        "seed,executor,codec",
        [
            (0, "process", "wire"),
            (1, "process", "wire"),
            (0, "process", "pickle"),
            (0, "thread", "wire"),
        ],
    )
    def test_reconcile_lockstep_fuzz(self, seed, executor, codec):
        rng = random.Random(seed)
        serial = _three_cell_fleet()
        parallel = _three_cell_fleet(executor=executor, codec=codec)
        try:
            serial.reconcile(force=True)
            parallel.reconcile(force=True, workers=4)
            for step in range(30):
                for index in range(3):
                    probe = serial.cells[index].state
                    shadow = parallel.cells[index].state
                    healthy = sorted(
                        n for n, node in probe.nodes.items() if not node.failed
                    )
                    failed = sorted(probe.failed_names())
                    roll = rng.random()
                    if roll < 0.4 and healthy:
                        picked = rng.sample(healthy, min(len(healthy), rng.randint(1, 4)))
                        probe.fail_nodes(picked)
                        shadow.fail_nodes(picked)
                    elif roll < 0.7 and failed:
                        picked = rng.sample(failed, 1)
                        probe.recover_nodes(picked)
                        shadow.recover_nodes(picked)
                if step in (10, 20):
                    # Structural dirt a health delta cannot express: the
                    # pooled round must fall back to a full state resync.
                    app = _tiny_app(f"fuzz-extra-{step}")
                    serial.cells[step % 3].state.add_application(app)
                    parallel.cells[step % 3].state.add_application(
                        _tiny_app(f"fuzz-extra-{step}")
                    )
                if step == 15:
                    # A serial round drains the dirty sets behind the pool's
                    # back; the generation token must force a resync.
                    a = serial.reconcile()
                    b = parallel.reconcile(workers=1)
                    assert _fleet_fingerprint(a) == _fleet_fingerprint(b)
                force = rng.random() < 0.1
                serial_report = serial.reconcile(force=force)
                parallel_report = parallel.reconcile(force=force, workers=4)
                assert _fleet_fingerprint(serial_report) == _fleet_fingerprint(
                    parallel_report
                ), f"step {step}"
                for a, b in zip(serial.cells, parallel.cells):
                    assert _state_fingerprint(a.state) == _state_fingerprint(b.state), (
                        f"step {step} cell {a.name}"
                    )
                    # Fingerprint equality says serial == parallel; the oracle
                    # says both are *internally* sound and identical per round.
                    violations = check_equivalence(
                        a.state, b.state, labels=("serial", "parallel")
                    )
                    assert not violations, f"step {step} cell {a.name}: {violations}"
                if step % 7 == 0:
                    verify_invariants(serial)
            verify_invariants(serial)
            verify_invariants(parallel)
        finally:
            serial.close()
            parallel.close()

    @pytest.mark.parametrize(
        "executor,codec,batch_steps",
        [
            ("process", "wire", 0),  # auto-tuned batching (the default)
            ("process", "wire", 1),  # batching off
            ("process", "wire", 3),  # fixed small batches
            ("process", "pickle", 0),
            ("thread", "wire", 0),
        ],
    )
    def test_replayer_serial_equals_sharded(self, executor, codec, batch_steps):
        scenario = fleet_scenario(
            3,
            24,
            horizon=1500.0,
            mtbf=500.0,
            mttr=250.0,
            storm_at=400.0,
            storm_cells=2,
            outage_cell=2,
            outage_at=800.0,
            outage_recovery_after=400.0,
            seed=6,
        )

        def run(workers, **kwargs):
            states = [
                build_environment(node_count=24, n_apps=3, seed=21 + i).fresh_state()
                for i in range(3)
            ]
            fleet = FleetEngine(FleetConfig(cells=3), states=states)
            fleet.reconcile(force=True)
            try:
                return FleetReplayer(fleet, seed=2, workers=workers, **kwargs).run(
                    scenario
                )
            finally:
                fleet.close()

        serial = run(1)
        sharded = run(
            3, executor=executor, codec=codec, batch_steps=batch_steps
        )
        assert serial.to_jsonl() == sharded.to_jsonl()
        assert len(serial) > 0


# -- worker-shard failure --------------------------------------------------------


class TestShardFailure:
    """Worker faults: fail-fast without supervision, self-healing with it.

    The all-replies-before-fold contract is load-bearing either way — an
    unsupervised pool raises before any partial fold-back; a supervised one
    restarts the worker and re-executes the in-flight command, so the
    eventual fold is byte-identical to a fault-free round.  Deeper fault
    coverage (hangs, corrupt frames, journal restarts, degraded adoption)
    lives in ``tests/test_infra.py``.
    """

    def test_unsupervised_worker_death_is_atomic(self):
        from repro.fleet.pool import ShardFailure

        fleet = _three_cell_fleet(supervise=False)
        try:
            fleet._shard_fault = (0, 2)  # shard 0 dies on its 2nd command
            fleet.reconcile(force=True, workers=2)  # command 1: survives
            before = [_state_fingerprint(cell.state) for cell in fleet.cells]
            with pytest.raises(ShardFailure, match="died mid-round"):
                fleet.reconcile(workers=2)
            after = [_state_fingerprint(cell.state) for cell in fleet.cells]
            assert after == before, "failed round mutated fleet state"
            # The next parallel round rebuilds the pool and completes.
            fleet._shard_fault = None
            report = fleet.reconcile(workers=2)
            assert set(report.cell_reports) == set(fleet.cell_names)
        finally:
            fleet.close()

    def test_unsupervised_replay_worker_death_raises_cleanly(self):
        from repro.fleet.pool import ShardFailure

        scenario = fleet_scenario(3, 16, horizon=1500.0, mtbf=300.0, seed=4)
        states = [
            build_environment(node_count=16, n_apps=2, seed=61 + i).fresh_state()
            for i in range(3)
        ]
        fleet = FleetEngine(FleetConfig(cells=3, supervise=False), states=states)
        fleet.reconcile(force=True)
        fleet._shard_fault = (0, 3)
        try:
            with pytest.raises(ShardFailure, match="died mid-round|pipe closed"):
                FleetReplayer(fleet, seed=2, workers=2).run(scenario)
        finally:
            fleet.close()

    def test_supervised_restart_mid_round_is_byte_identical(self):
        """Kill a worker mid-round: the supervisor restarts it and the round
        lands byte-identically to a fault-free serial twin's."""
        from repro.fleet import ShardRestarted

        fleet = _three_cell_fleet(shard_backoff=0.0)
        twin = _three_cell_fleet()
        restarts = []
        fleet.events.subscribe(restarts.append, ShardRestarted)
        try:
            fleet._shard_fault = (0, 2)  # shard 0 dies on its 2nd command
            fleet.reconcile(force=True, workers=2)
            twin.reconcile(force=True)
            for target in (fleet, twin):
                target.cells[0].state.fail_nodes(["node-1", "node-3"])
                target.cells[1].state.fail_nodes(["node-2"])
            report = fleet.reconcile(workers=2)  # command 2: worker dies here
            twin_report = twin.reconcile()
            assert restarts and restarts[0].shard == 0, (
                "expected a ShardRestarted event for shard 0"
            )
            assert _fleet_fingerprint(report) == _fleet_fingerprint(twin_report)
            assert [_state_fingerprint(c.state) for c in fleet.cells] == [
                _state_fingerprint(c.state) for c in twin.cells
            ]
        finally:
            fleet.close()
            twin.close()

    def test_supervised_crash_loop_degrades_instead_of_raising(self):
        """A shard that dies on every incarnation exhausts its restart budget
        and degrades — the round still completes, matching the serial twin."""
        from repro.fleet import ShardDegraded, ShardRestarted

        fleet = _three_cell_fleet(shard_backoff=0.0, max_shard_restarts=1)
        twin = _three_cell_fleet()
        restarts, degraded = [], []
        fleet.events.subscribe(restarts.append, ShardRestarted)
        fleet.events.subscribe(degraded.append, ShardDegraded)
        try:
            # The legacy fault kills on the Nth command of *every*
            # incarnation, so shard 0 can never complete a round remotely.
            fleet._shard_fault = (0, 1)
            report = fleet.reconcile(force=True, workers=2)
            twin_report = twin.reconcile(force=True)
            assert len(restarts) == 1, "one restart before the budget ran out"
            assert degraded and degraded[0].shard == 0
            assert set(degraded[0].cells) <= set(fleet.cell_names)
            assert _fleet_fingerprint(report) == _fleet_fingerprint(twin_report)
            # Subsequent rounds keep working (cells re-homed to survivors).
            for target in (fleet, twin):
                target.cells[2].state.fail_nodes(["node-4"])
            assert _fleet_fingerprint(fleet.reconcile(workers=2)) == _fleet_fingerprint(
                twin.reconcile()
            )
        finally:
            fleet.close()
            twin.close()

    def test_pool_fault_hook_targets_one_shard(self):
        from repro.fleet.pool import ShardFailure, ShardPool

        fleet = _three_cell_fleet()
        fleet.reconcile(force=True)
        pool = ShardPool(fleet.cells, workers=2, fault=(1, 1))
        try:
            deltas = {
                cell.name: ("delta", (), (), cell.state.health_aggregates())
                for cell in fleet.cells
            }
            with pytest.raises(ShardFailure, match="died mid-round"):
                pool.round(deltas, False)
        finally:
            pool.close()
            fleet.close()


# -- spillover -------------------------------------------------------------------


class TestSpillover:
    def test_cell_outage_recovers_and_releases(self):
        fleet = _three_cell_fleet()
        planned, released, degraded = [], [], []
        fleet.events.subscribe(planned.append, SpilloverPlanned)
        fleet.events.subscribe(released.append, SpilloverReleased)
        fleet.events.subscribe(degraded.append, CellDegraded)
        fleet.reconcile(force=True)
        assert fleet.availability() == pytest.approx(1.0)

        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        report = fleet.reconcile()
        assert degraded and degraded[0].cell == "cell-0"
        assert planned, "no spillover planned for the dark cell"
        assert report.availability == pytest.approx(1.0)
        donor = fleet.cell(planned[0].donor_cell)
        assert any(is_clone(name) for name in donor.state.applications)
        # Donor never exceeds per-node capacity (two-phase apply contract).
        for cell in fleet.cells:
            for name, node in cell.state.nodes.items():
                used = cell.state.used_on(name)
                assert used.cpu <= node.capacity.cpu + 1e-6
                assert used.memory <= node.capacity.memory + 1e-6

        victim.state.recover_nodes(list(victim.state.nodes))
        report = fleet.reconcile()
        assert released, "spillover never released after recovery"
        assert report.availability == pytest.approx(1.0)
        assert not any(
            is_clone(name) for cell in fleet.cells for name in cell.state.applications
        )
        assert not fleet.spillovers

    def test_no_spillover_policy_stays_degraded(self):
        fleet = _three_cell_fleet(spillover="none")
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        report = fleet.reconcile()
        assert isinstance(fleet.policy, NoSpillover)
        assert not report.planned
        assert report.availability < 1.0
        assert report.unplaced  # residual demand reported, nowhere to go

    def test_degraded_event_fires_once_per_residual_change(self):
        fleet = _three_cell_fleet(spillover="none")
        events = []
        fleet.events.subscribe(events.append, CellDegraded)
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        fleet.reconcile()
        count_after_outage = len(events)
        assert count_after_outage >= 1
        fleet.reconcile(force=True)  # same residual again: no new event
        assert len(events) == count_after_outage

    def test_fragmented_donor_rolls_back_and_retries_on_capacity(self):
        """Aggregate capacity fits but no node does: the clone must be
        rolled back (not stranded), reported unplaced, and retried once the
        donor's capacity actually improves."""
        from repro.cluster import Application, Microservice
        from repro.criticality import CriticalityTag

        big_app = Application.from_microservices(
            "big",
            [Microservice("core", Resources(2.0, 2.0), CriticalityTag(1))],
        )
        source = ClusterState(
            nodes=[Node("src-node", Resources(2.5, 2.5))], applications=[big_app]
        )
        donors = []
        for index in (1, 2):
            tiny = Application.from_microservices(
                f"tiny{index}",
                [Microservice("svc", Resources(0.1, 0.1), CriticalityTag(1))],
            )
            nodes = [Node(f"n{index}{j}", Resources(1.1, 1.1)) for j in range(4)]
            if index == 1:
                nodes.append(Node("big-node", Resources(3.0, 3.0), failed=True))
            donors.append(ClusterState(nodes=nodes, applications=[tiny]))
        fleet = FleetEngine(FleetConfig(cells=3), states=[source, *donors])
        fleet.reconcile(force=True)

        fleet.cell("cell-0").state.fail_nodes(["src-node"])
        report = fleet.reconcile()
        # Fleet-level plan picked a donor, but 2.0-cpu does not fit any
        # 1.1-cpu node: the clone is rolled back, visibly unplaced.
        assert not report.planned
        assert ("cell-0", "big") in report.unplaced
        assert not fleet.spillovers
        assert not any(
            is_clone(name) for cell in fleet.cells for name in cell.state.applications
        )
        # Subsequent rounds exclude no-better donors; still unplaced, never
        # stranded, availability honestly degraded.
        report = fleet.reconcile()
        assert not report.planned and ("cell-0", "big") in report.unplaced
        assert report.availability < 1.0

        # A capable node recovers: the failure record is beaten and the
        # residual finally lands.
        fleet.cell("cell-1").state.recover_nodes(["big-node"])
        report = fleet.reconcile()
        assert report.planned and report.planned[0].donor_cell == "cell-1"
        assert report.availability == pytest.approx(1.0)
        assert ("cell-0", "big") in fleet.spillovers

    def test_cascading_donor_failure_rehomes_spillover(self):
        """The donor dies too: the clone is superseded and re-planned."""
        fleet = _three_cell_fleet()
        fleet.reconcile(force=True)
        victim = fleet.cell("cell-0")
        victim.state.fail_nodes(list(victim.state.nodes))
        report = fleet.reconcile()
        assert report.planned
        first_donor = report.planned[0].donor_cell
        donor = fleet.cell(first_donor)
        donor.state.fail_nodes(list(donor.state.nodes))
        report = fleet.reconcile()
        # The stranded clone was released; both cells' residuals re-planned
        # onto the one remaining healthy cell (or honestly unplaced).
        assert any(a.source_cell == "cell-0" for a in report.released)
        for key, entry in fleet.spillovers.items():
            assert entry.donor != first_donor, f"{key} still on the dark donor"

    def test_cell_outage_chaos_check(self):
        for builder in (build_overleaf, build_hotel_reservation):
            report = run_cell_outage_check(builder())
            assert report.passed, report.problems
            assert report.spillovers_planned >= 1
            assert report.spillovers_released >= 1
            assert report.capacity_respected and report.clones_released

    def test_chaos_check_fails_without_donor_capacity(self):
        """With headroom ~1.0 the donors cannot host the refugees."""
        report = run_cell_outage_check(build_overleaf(), cells=2, headroom=1.01)
        assert not report.passed
        assert any("availability" in problem for problem in report.problems)


# -- fleet replay ---------------------------------------------------------------


class TestFleetReplay:
    def test_scenario_same_seed_is_byte_identical(self):
        first = fleet_scenario(3, 20, storm_at=300.0, seed=9)
        second = fleet_scenario(3, 20, storm_at=300.0, seed=9)
        assert sorted(first) == sorted(second)
        for cell in first:
            assert first[cell].dumps() == second[cell].dumps()
        third = fleet_scenario(3, 20, storm_at=300.0, seed=10)
        assert any(first[c].dumps() != third[c].dumps() for c in first)

    def test_outage_scenario_dips_and_recovers(self):
        scenario = fleet_scenario(
            3, 20, mtbf=None, outage_cell=0, outage_at=100.0,
            outage_recovery_after=500.0, seed=1,
        )
        states = [
            build_environment(node_count=20, n_apps=2, seed=31 + i).fresh_state()
            for i in range(3)
        ]
        fleet = FleetEngine(FleetConfig(cells=3), states=states)
        fleet.reconcile(force=True)
        metrics = FleetReplayer(fleet, seed=0).run(scenario)
        assert metrics.final().failed_nodes == 0
        assert metrics.final().spillovers_active == 0
        outage_step = metrics.steps[0]
        assert outage_step.spillovers_planned >= 1
        assert metrics.min("available_fraction") < 1.0

    def test_trace_replayer_dispatches_fleet_drivers(self):
        scenario = fleet_scenario(2, 16, mtbf=None, outage_cell=1, seed=3)
        states = [
            build_environment(node_count=16, n_apps=2, seed=41 + i).fresh_state()
            for i in range(2)
        ]
        fleet = FleetEngine(FleetConfig(cells=2), states=states)
        fleet.reconcile(force=True)
        metrics = TraceReplayer(fleet, seed=5).run(None, scenario)
        assert len(metrics) == len(
            {e.time for trace in scenario.values() for e in trace.events}
        )
        with pytest.raises(TypeError, match="fleet drivers own"):
            TraceReplayer(fleet, seed=5).run(states[0], scenario)

    def test_observer_fast_path_keeps_output_and_events(self):
        """No subscribers: node-name payloads are skipped, output unchanged.

        With a subscriber the sharded replay must still deliver named
        failure events — the fast path may only drop work nobody observes.
        """
        from repro.api.events import FailureDetected
        from repro.fleet.events import CellEvent

        scenario = fleet_scenario(
            2, 16, horizon=1200.0, mtbf=None, outage_cell=1, outage_at=300.0, seed=8
        )

        def run(workers, subscribe):
            states = [
                build_environment(node_count=16, n_apps=2, seed=71 + i).fresh_state()
                for i in range(2)
            ]
            fleet = FleetEngine(FleetConfig(cells=2), states=states)
            fleet.reconcile(force=True)
            captured = []
            if subscribe:
                fleet.events.subscribe(captured.append, CellEvent)
            try:
                metrics = FleetReplayer(fleet, seed=2, workers=workers).run(scenario)
            finally:
                fleet.close()
            return metrics.to_jsonl(), captured

        quiet, none_captured = run(2, subscribe=False)
        observed, captured = run(2, subscribe=True)
        assert quiet == observed  # metrics never depend on the event payloads
        assert not none_captured
        failures = [
            event for event in captured if isinstance(event.event, FailureDetected)
        ]
        assert failures and all(event.event.nodes for event in failures)

    def test_unknown_cell_in_scenario_rejected(self):
        from repro.traces.schema import TraceError

        states = [
            build_environment(node_count=16, n_apps=2, seed=51).fresh_state(),
        ]
        fleet = FleetEngine(FleetConfig(cells=1), states=states)
        scenario = fleet_scenario(["not-a-cell"], 16, mtbf=900.0, seed=0)
        with pytest.raises(TraceError, match="unknown cells"):
            FleetReplayer(fleet).run(scenario)


# -- CLI ------------------------------------------------------------------------


class TestFleetCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_fleet_help_paths(self, capsys):
        assert self._run("fleet") == 0
        assert "replay" in capsys.readouterr().out

    def test_fleet_replay_deterministic_across_workers(self, tmp_path, capsys):
        base = [
            "fleet", "replay", "--cells", "2", "--nodes-per-cell", "16",
            "--apps", "2", "--scenario", "outage", "--outage-cell", "1", "--seed", "3",
        ]
        first = tmp_path / "serial.jsonl"
        second = tmp_path / "sharded.jsonl"
        assert self._run(*base, "--out", str(first)) == 0
        assert self._run(*base, "--workers", "2", "--out", str(second)) == 0
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().startswith('{"metadata"')

    def test_fleet_sweep_table(self, capsys):
        code = self._run(
            "fleet", "sweep", "--cells", "2", "--nodes-per-cell", "12", "--apps", "2",
            "--lost", "0,1", "--policies", "packed,none",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "availability" in out
        assert len([line for line in out.splitlines() if line.strip()]) == 5

    def test_fleet_usage_errors(self, capsys):
        assert self._run("fleet", "sweep", "--cells", "2", "--lost", "oops") == 2
        assert "error:" in capsys.readouterr().err
        assert self._run("fleet", "sweep", "--cells", "2", "--lost", "5") == 2
        assert self._run(
            "fleet", "replay", "--cells", "2", "--scenario", "outage", "--outage-cell", "7"
        ) == 2

    def test_chaos_cell_outage_flag(self, capsys):
        assert self._run(
            "chaos", "--template", "overleaf", "--cell-outage", "--nodes", "8"
        ) == 0
        assert "Cell-outage chaos" in capsys.readouterr().out
