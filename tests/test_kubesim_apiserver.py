"""Tests for the kubesim API server and API objects."""

import pytest

from repro.cluster.resources import Resources
from repro.kubesim import (
    ApiError,
    ApiServer,
    Deployment,
    KubeNode,
    Namespace,
    Pod,
    PodPhase,
    PodSpec,
)
from repro.kubesim.objects import APP_LABEL, CRITICALITY_LABEL, MICROSERVICE_LABEL


@pytest.fixture
def api():
    server = ApiServer()
    server.create_namespace(Namespace(name="demo", labels={"phoenix": "enabled"}))
    server.register_node(KubeNode(name="n0", capacity=Resources(4, 4)))
    server.register_node(KubeNode(name="n1", capacity=Resources(4, 4)))
    return server


def make_spec(ms="web", cpu=1.0, criticality="C1"):
    return PodSpec(app="demo", microservice=ms, resources=Resources(cpu, cpu), criticality_label=criticality)


class TestNamespacesAndNodes:
    def test_duplicate_namespace_rejected(self, api):
        with pytest.raises(ApiError):
            api.create_namespace(Namespace(name="demo"))

    def test_missing_namespace_raises(self, api):
        with pytest.raises(ApiError):
            api.get_namespace("ghost")

    def test_phoenix_enabled_label(self, api):
        assert api.get_namespace("demo").phoenix_enabled

    def test_duplicate_node_rejected(self, api):
        with pytest.raises(ApiError):
            api.register_node(KubeNode(name="n0", capacity=Resources(1, 1)))

    def test_list_nodes_ready_only(self, api):
        from repro.kubesim.objects import NodeCondition

        api.get_node("n1").condition = NodeCondition.NOT_READY
        assert [n.name for n in api.list_nodes(ready_only=True)] == ["n0"]


class TestDeployments:
    def test_create_requires_namespace(self, api):
        with pytest.raises(ApiError):
            api.create_deployment(Deployment(name="web", namespace="ghost", spec=make_spec()))

    def test_labels_derived_from_spec(self, api):
        deployment = api.create_deployment(Deployment(name="web", namespace="demo", spec=make_spec()))
        assert deployment.labels[APP_LABEL] == "demo"
        assert deployment.labels[MICROSERVICE_LABEL] == "web"
        assert deployment.labels[CRITICALITY_LABEL] == "C1"

    def test_negative_replicas_rejected(self, api):
        with pytest.raises(ValueError):
            Deployment(name="web", namespace="demo", spec=make_spec(), replicas=-1)

    def test_scale_deployment(self, api):
        api.create_deployment(Deployment(name="web", namespace="demo", spec=make_spec(), replicas=1))
        api.scale_deployment("demo", "web", 3)
        assert api.get_deployment("demo", "web").replicas == 3

    def test_scale_negative_rejected(self, api):
        api.create_deployment(Deployment(name="web", namespace="demo", spec=make_spec()))
        with pytest.raises(ValueError):
            api.scale_deployment("demo", "web", -2)

    def test_list_by_selector(self, api):
        api.create_deployment(Deployment(name="web", namespace="demo", spec=make_spec("web")))
        api.create_deployment(Deployment(name="db", namespace="demo", spec=make_spec("db")))
        found = api.list_deployments(selector={MICROSERVICE_LABEL: "db"})
        assert [d.name for d in found] == ["db"]


class TestPods:
    def test_pod_names_are_unique(self, api):
        pods = [Pod.from_spec("demo", make_spec()) for _ in range(3)]
        assert len({p.name for p in pods}) == 3

    def test_create_and_list_by_phase(self, api):
        pod = Pod.from_spec("demo", make_spec())
        api.create_pod(pod)
        assert api.list_pods(phases=[PodPhase.PENDING]) == [pod]
        assert api.list_pods(phases=[PodPhase.RUNNING]) == []

    def test_graceful_delete_marks_terminating(self, api):
        pod = Pod.from_spec("demo", make_spec())
        pod.phase = PodPhase.RUNNING
        pod.node_name = "n0"
        api.create_pod(pod)
        api.delete_pod("demo", pod.name)
        assert pod.phase is PodPhase.TERMINATING

    def test_delete_pending_pod_removes_immediately(self, api):
        pod = Pod.from_spec("demo", make_spec())
        api.create_pod(pod)
        api.delete_pod("demo", pod.name)
        assert api.list_pods() == []

    def test_node_allocated_counts_active_pods_only(self, api):
        running = Pod.from_spec("demo", make_spec(cpu=2.0))
        running.phase = PodPhase.RUNNING
        running.node_name = "n0"
        pending = Pod.from_spec("demo", make_spec(cpu=2.0))
        api.create_pod(running)
        api.create_pod(pending)
        assert api.node_allocated("n0").cpu == 2.0
        assert api.node_free("n0").cpu == 2.0

    def test_events_recorded(self, api):
        pod = Pod.from_spec("demo", make_spec())
        api.create_pod(pod)
        assert api.events_of("PodCreated")
