"""Observation neutrality: obs fully on vs fully off is byte-identical.

The observability plane's core contract is that it only *watches*:
enabling the registry and tracer must never change a digest, a metrics
JSONL byte, a step record, or any float accumulation — across the serial
engine path, the parallel sharded fleet path (spans crossing IPC), the
supervised-restart path, and the serve WAL-resume path.  Each test here
runs the same workload twice — obs off, then obs on — and compares the
complete observable output for equality.

The file also carries the acceptance check for span IPC: one
``reconcile(workers=2)`` round yields a single merged span tree
containing both parent and worker spans shipped over the wire codec.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.adaptlab import build_environment
from repro.fleet import FleetConfig, FleetEngine, FleetReplayer
from repro.serve import (
    ControlPlane,
    HttpConnection,
    WriteAheadLog,
    build_fleet,
    fleet_digest,
    resume_control_plane,
)
from repro.traces import TraceReplayer, fleet_scenario, generators

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


@pytest.fixture(autouse=True)
def _clean_default_obs():
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    obs.tracer().prefix = ""
    yield
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    obs.tracer().prefix = ""


def _run_twice(workload):
    """Run ``workload()`` with obs off, then fully on; return both results."""
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    off = workload()
    obs.enable()
    try:
        on = workload()
    finally:
        obs.disable()
    return off, on


# -- serial engine replay ------------------------------------------------------


def _engine_replay() -> str:
    import repro.api as api

    env = build_environment(node_count=60, n_apps=3, seed=11)
    trace = generators.poisson_failures(60, horizon=1800.0, mtbf=600.0, mttr=120.0, seed=5)
    engine = api.engine("revenue")
    metrics = TraceReplayer(engine, seed=3).run(env.fresh_state(), trace)
    return metrics.to_jsonl()


def test_serial_engine_replay_is_lockstep():
    off, on = _run_twice(_engine_replay)
    assert off == on


# -- parallel sharded fleet replay ---------------------------------------------


def _build_fleet(cells: int = 3, nodes_per_cell: int = 12, **config_kwargs) -> FleetEngine:
    states = [
        build_environment(node_count=nodes_per_cell, n_apps=2, seed=21 + i).fresh_state()
        for i in range(cells)
    ]
    return FleetEngine(FleetConfig(cells=cells, **config_kwargs), states=states)


def _fleet_state_fingerprint(fleet: FleetEngine) -> list:
    return [
        {
            "assignments": dict(cell.state.assignments),
            "failed": cell.state.failed_names(),
        }
        for cell in fleet.cells
    ]


def _fleet_parallel_replay() -> tuple[str, list]:
    fleet = _build_fleet()
    scenario = fleet_scenario(
        3,
        12,
        horizon=1800.0,
        mtbf=900.0,
        mttr=300.0,
        outage_cell=0,
        outage_at=600.0,
        outage_recovery_after=900.0,
        seed=4,
    )
    try:
        metrics = FleetReplayer(fleet, seed=2, workers=2).run(scenario)
        return metrics.to_jsonl(), _fleet_state_fingerprint(fleet)
    finally:
        fleet.close()


def test_parallel_fleet_replay_is_lockstep():
    off, on = _run_twice(_fleet_parallel_replay)
    assert off == on


# -- supervised restart --------------------------------------------------------


def _supervised_restart_rounds() -> list:
    """Two rounds with shard 0 dying on its second command (supervisor
    restarts it mid-round) — the recovery path must stay untraced-compatible."""
    fleet = _build_fleet(shard_backoff=0.0)
    try:
        fleet._shard_fault = (0, 2)
        fleet.reconcile(force=True, workers=2)
        for cell in (0, 1):
            fleet.cells[cell].state.fail_nodes([f"node-{cell + 1}"])
        report = fleet.reconcile(workers=2)  # the worker dies here
        return [
            report.planned,
            report.released,
            report.degraded_cells,
            round(report.availability, 12),
            round(report.revenue, 12),
            _fleet_state_fingerprint(fleet),
        ]
    finally:
        fleet.close()


def test_supervised_restart_is_lockstep():
    off, on = _run_twice(_supervised_restart_rounds)
    assert off == on


# -- serve with WAL resume -----------------------------------------------------


SERVE_PARAMS = dict(cells=2, nodes_per_cell=10, apps=2)


def _mutation(cell: str, kind: str, **fields) -> dict:
    return {"cell": cell, "event": {"record": "event", "kind": kind, **fields}}


SERVE_MUTATIONS = [
    _mutation("cell-0", "node_failure", nodes=["node-0", "node-1"]),
    _mutation("cell-1", "node_failure", nodes=["node-2"]),
    _mutation("cell-0", "node_recovery", nodes=["node-0"]),
]


def _serve_resume_session(wal_path: Path) -> tuple:
    async def post(conn, payload):
        status, _, body = await conn.request("POST", "/mutations", body=json.dumps(payload))
        assert status == 200, body
        return json.loads(body)

    async def run():
        fleet = build_fleet(**SERVE_PARAMS)
        wal = WriteAheadLog(
            wal_path,
            header={
                "fleet": SERVE_PARAMS,
                "seed": 0,
                "force_each_step": False,
                "queue_limit": 64,
            },
        )
        plane = ControlPlane(fleet, fleet_params=SERVE_PARAMS, wal=wal, queue_limit=64)
        host, port = await plane.start()
        try:
            async with HttpConnection(host, port) as conn:
                for payload in SERVE_MUTATIONS[:2]:
                    await post(conn, payload)
        finally:
            await plane.shutdown()

        resumed = resume_control_plane(wal_path)
        host, port = await resumed.start()
        try:
            async with HttpConnection(host, port) as conn:
                result = await post(conn, SERVE_MUTATIONS[2])
                assert result["round"] == 2  # continues where the journal ended
            digest = fleet_digest(resumed.fleet)
            steps = [step.to_record() for step in resumed.steps]
            trace = resumed.recorder.traces_jsonl()
        finally:
            await resumed.shutdown()
        return digest, steps, trace

    return asyncio.run(run())


def test_serve_resume_is_lockstep(tmp_path):
    off, on = _run_twice(
        lambda: _serve_resume_session(
            tmp_path / f"session-{'on' if obs.enabled() else 'off'}.wal"
        )
    )
    assert off == on


# -- the merged span tree (acceptance criterion) --------------------------------


def test_parallel_reconcile_produces_one_merged_span_tree():
    fleet = _build_fleet()
    obs.enable()
    try:
        obs.tracer().clear()
        fleet.cells[0].state.fail_nodes(["node-1"])
        fleet.reconcile(force=True, workers=2)
    finally:
        obs.disable()
        fleet.close()
    spans = list(obs.tracer().finished)
    by_id = {span.span_id: span for span in spans}
    worker_spans = [s for s in spans if s.span_id.startswith("w")]
    assert worker_spans, "no worker spans were shipped over the wire codec"
    # The shard wrapper span plus the engine's own spans from inside the
    # worker process, all shipped home over the wire codec.
    assert {"shard.round", "reconcile.round"} <= {s.name for s in worker_spans}
    # Every span chains to a root that lives in the same buffer: one tree.
    roots = set()
    for span in spans:
        node = span
        seen = set()
        while node.parent_id:
            assert node.parent_id in by_id, (node.span_id, node.parent_id)
            assert node.span_id not in seen
            seen.add(node.span_id)
            node = by_id[node.parent_id]
        roots.add(node.span_id)
    assert len(roots) == 1, f"expected one merged tree, got roots {roots}"
    assert by_id[next(iter(roots))].name == "fleet.round"
    # Shard wrapper spans hang off the parent's ship spans, per the IPC
    # protocol; deeper worker spans nest under their shard wrapper.
    for span in worker_spans:
        if span.name == "shard.round":
            assert by_id[span.parent_id].name == "fleet.ship"
        else:
            assert span.parent_id.startswith("w")


# -- CLI --metrics-out subprocess determinism ----------------------------------


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env["REPRO_OBS_CLOCK"] = "tick"  # deterministic span/registry clock
    env.pop("REPRO_OBS", None)
    return env


def _run_cli(args: list[str], cwd: Path) -> None:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=_cli_env(),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_cli_fleet_replay_metrics_out_is_deterministic(tmp_path):
    outputs = []
    for run in (1, 2):
        out = tmp_path / f"metrics-{run}.jsonl"
        _run_cli(
            [
                "fleet",
                "replay",
                "--cells",
                "2",
                "--nodes-per-cell",
                "10",
                "--horizon",
                "600",
                "--out",
                str(tmp_path / f"steps-{run}.jsonl"),
                "--metrics-out",
                str(out),
            ],
            cwd=tmp_path,
        )
        outputs.append(out.read_bytes())
    assert outputs[0] == outputs[1]
    records = [json.loads(line) for line in outputs[0].decode().splitlines()]
    names = {record["metric"] for record in records}
    assert "engine.rounds" in names
    assert "fleet.replay.steps" in names
    # histograms carry counts only: wall-clock fields ride behind --timing
    for record in records:
        if record["type"] == "histogram":
            assert set(record) == {"metric", "type", "count"}


def test_cli_replay_metrics_out_is_deterministic(tmp_path):
    trace_path = tmp_path / "churn.jsonl"
    trace = generators.poisson_failures(40, horizon=1200.0, mtbf=600.0, mttr=120.0, seed=9)
    trace_path.write_text(trace.dumps(), encoding="utf-8")
    outputs = []
    for run in (1, 2):
        out = tmp_path / f"metrics-{run}.jsonl"
        _run_cli(
            [
                "replay",
                "--trace",
                str(trace_path),
                "--nodes",
                "40",
                "--out",
                str(tmp_path / f"steps-{run}.jsonl"),
                "--metrics-out",
                str(out),
            ],
            cwd=tmp_path,
        )
        outputs.append(out.read_bytes())
    assert outputs[0] == outputs[1]
    assert b'"metric":"engine.rounds"' in outputs[0]
