"""Tests for the plan data model and assorted cross-module edge cases."""

import pytest

from repro.cluster import Application, Node, Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.objectives import FairnessObjective, RevenueObjective, WeightedObjective
from repro.core.plan import (
    Action,
    ActionKind,
    ActivationPlan,
    RankedMicroservice,
    SchedulePlan,
    merge_action_lists,
)
from repro.core.planner import PhoenixPlanner
from repro.core.scheduler import PhoenixScheduler, apply_schedule
from repro.criticality import HIGHEST_CRITICALITY

from tests.conftest import make_microservice


class TestActionModel:
    def test_start_requires_target_node(self):
        with pytest.raises(ValueError):
            Action(ActionKind.START, ReplicaId("a", "m", 0))

    def test_migrate_requires_target_node(self):
        with pytest.raises(ValueError):
            Action(ActionKind.MIGRATE, ReplicaId("a", "m", 0), source_node="n0")

    def test_delete_must_not_have_target(self):
        with pytest.raises(ValueError):
            Action(ActionKind.DELETE, ReplicaId("a", "m", 0), target_node="n1")

    def test_valid_actions_construct(self):
        Action(ActionKind.DELETE, ReplicaId("a", "m", 0), source_node="n0")
        Action(ActionKind.START, ReplicaId("a", "m", 0), target_node="n1")
        Action(ActionKind.MIGRATE, ReplicaId("a", "m", 0), source_node="n0", target_node="n1")


class TestSchedulePlanModel:
    def _plan(self):
        plan = SchedulePlan()
        plan.actions = [
            Action(ActionKind.START, ReplicaId("a", "x", 0), target_node="n0"),
            Action(ActionKind.DELETE, ReplicaId("a", "y", 0), source_node="n1"),
            Action(ActionKind.MIGRATE, ReplicaId("a", "z", 0), source_node="n1", target_node="n0"),
        ]
        return plan

    def test_actions_grouped_by_kind(self):
        plan = self._plan()
        assert len(plan.starts) == 1
        assert len(plan.deletions) == 1
        assert len(plan.migrations) == 1

    def test_ordered_actions_delete_first_start_last(self):
        kinds = [a.kind for a in self._plan().ordered_actions()]
        assert kinds == [ActionKind.DELETE, ActionKind.MIGRATE, ActionKind.START]

    def test_len_counts_actions(self):
        assert len(self._plan()) == 3

    def test_merge_action_lists(self):
        merged = merge_action_lists([self._plan(), self._plan()])
        assert len(merged) == 6


class TestActivationPlanModel:
    def test_activated_set_and_per_app_lookup(self):
        plan = ActivationPlan(
            ranked=[RankedMicroservice("a", "x", 1), RankedMicroservice("b", "y", 2)],
            activated=[RankedMicroservice("a", "x", 1)],
        )
        assert plan.activated_set() == {("a", "x")}
        assert plan.activated_for("a") == ["x"]
        assert plan.activated_for("b") == []
        assert len(plan) == 1
        assert [e.microservice for e in plan] == ["x"]


class TestPartialTagging:
    def test_untagged_microservices_treated_as_most_critical(self):
        app = Application.from_microservices(
            "partial",
            [
                make_microservice("tagged-low", criticality=8),
                # Explicitly construct without a tag: defaults to C1.
                make_microservice("untagged"),
            ],
        )
        assert app.criticality_of("untagged") == HIGHEST_CRITICALITY
        state = ClusterState(nodes=[Node("n0", Resources(2, 2))], applications=[app])
        plan = PhoenixPlanner(RevenueObjective()).plan(state)
        # Only 2 cpu available: the untagged (implicitly critical) one wins.
        assert plan.activated_set() == {("partial", "untagged")}


class TestWeightedObjectivePlanning:
    def test_weighted_objective_produces_valid_plan(self, simple_app, second_app):
        state = ClusterState(
            nodes=[Node(f"n{i}", Resources(4, 4)) for i in range(3)],
            applications=[simple_app, second_app],
        )
        objective = WeightedObjective({RevenueObjective(): 0.5, FairnessObjective(): 0.5})
        plan = PhoenixPlanner(objective).plan(state)
        assert sum(e.cpu for e in plan.activated) <= state.total_capacity().cpu + 1e-9
        assert plan.objective == "weighted"


class TestStatefulEndToEnd:
    def test_stateful_service_survives_scheduling(self):
        app = Application.from_microservices(
            "mixed",
            [
                make_microservice("api", criticality=1),
                make_microservice("cache", criticality=6),
                make_microservice("db", criticality=9, stateful=True),
            ],
        )
        state = ClusterState(
            nodes=[Node("n0", Resources(4, 4)), Node("n1", Resources(4, 4))],
            applications=[app],
        )
        planner = PhoenixPlanner(RevenueObjective())
        scheduler = PhoenixScheduler()
        schedule = scheduler.schedule(state, planner.plan(state))
        apply_schedule(state, schedule)
        # Everything fits pre-failure, including the stateful db.
        assert state.is_active("mixed", "db")

        state.fail_nodes(["n1"])
        schedule = scheduler.schedule(state, planner.plan(state))
        apply_schedule(state, schedule)
        active = state.active_microservices()["mixed"]
        # Under the crunch the stateful db is never diagonally scaled away,
        # the critical api stays, and the low-criticality cache is dropped.
        assert "db" in active
        assert "api" in active
        assert "cache" not in active


class TestSchedulerUnplacedReporting:
    def test_unplaced_microservices_surface_in_schedule(self):
        app = Application.from_microservices(
            "big", [make_microservice("huge", cpu=10, memory=10, criticality=1)]
        )
        state = ClusterState(nodes=[Node("n0", Resources(4, 4))], applications=[app])
        planner = PhoenixPlanner(RevenueObjective())
        plan = planner.plan(state)
        # The planner will not activate something beyond aggregate capacity,
        # so force it in to exercise the scheduler's unplaced reporting.
        plan.activated = list(plan.ranked)
        schedule = PhoenixScheduler().schedule(state, plan)
        assert ("big", "huge") in schedule.unplaced
