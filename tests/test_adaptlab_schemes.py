"""Tests for resilience schemes, the sweep harness, replay and analysis."""

import pytest

from repro.adaptlab import (
    CapacityTrace,
    DefaultScheme,
    FairScheme,
    LPCostScheme,
    LPFairScheme,
    NoDegradationScheme,
    PhoenixCostScheme,
    PhoenixFairScheme,
    PriorityScheme,
    application_summaries,
    call_graph_size_cdf,
    coverage_curve,
    critical_service_availability,
    default_scheme_suite,
    evaluate_state,
    inject_capacity_failure,
    replay_capacity_trace,
    requests_vs_microservice_fraction,
    run_failure_sweep,
    summarize,
)


@pytest.fixture(scope="module")
def failed_state(small_environment):
    state = small_environment.fresh_state()
    inject_capacity_failure(state, 0.5, seed=13)
    return state


class TestSchemeBasics:
    @pytest.mark.parametrize(
        "scheme_cls",
        [PhoenixCostScheme, PhoenixFairScheme, PriorityScheme, FairScheme, DefaultScheme, NoDegradationScheme],
    )
    def test_respond_does_not_mutate_input(self, scheme_cls, failed_state):
        before = dict(failed_state.assignments)
        scheme_cls().respond(failed_state)
        assert failed_state.assignments == before

    @pytest.mark.parametrize(
        "scheme_cls",
        [PhoenixCostScheme, PhoenixFairScheme, PriorityScheme, FairScheme, DefaultScheme],
    )
    def test_resulting_state_respects_capacity(self, scheme_cls, failed_state):
        new_state, _ = scheme_cls().respond(failed_state)
        for node in new_state.nodes.values():
            assert new_state.used_on(node.name).fits_within(node.capacity)

    @pytest.mark.parametrize(
        "scheme_cls",
        [PhoenixCostScheme, PhoenixFairScheme, PriorityScheme, FairScheme, DefaultScheme],
    )
    def test_no_replicas_left_on_failed_nodes(self, scheme_cls, failed_state):
        new_state, _ = scheme_cls().respond(failed_state)
        for node in new_state.failed_nodes():
            assert new_state.replicas_on(node.name) == []

    def test_planning_time_reported(self, failed_state):
        _, seconds = PhoenixCostScheme().respond(failed_state)
        assert seconds > 0

    def test_default_scheme_suite_contains_five(self):
        assert len(default_scheme_suite()) == 5
        names = {s.name for s in default_scheme_suite()}
        assert names == {"phoenix-cost", "phoenix-fair", "priority", "fair", "default"}


class TestSchemeShapes:
    """The qualitative relationships the paper's Figure 7 reports."""

    def test_phoenix_beats_default_on_availability(self, small_environment, failed_state):
        phoenix_state, _ = PhoenixFairScheme().respond(failed_state)
        default_state, _ = DefaultScheme().respond(failed_state)
        phoenix_avail, _ = critical_service_availability(phoenix_state)
        default_avail, _ = critical_service_availability(default_state)
        assert phoenix_avail >= default_avail

    def test_phoenix_cost_maximizes_revenue(self, small_environment, failed_state):
        reference = small_environment.state
        revenues = {}
        for scheme in default_scheme_suite():
            state, _ = scheme.respond(failed_state)
            revenues[scheme.name] = evaluate_state(state, reference=reference).normalized_revenue
        assert revenues["phoenix-cost"] >= max(
            v for k, v in revenues.items() if k != "phoenix-cost"
        ) - 1e-9

    def test_phoenix_fair_minimizes_fairness_deviation(self, small_environment, failed_state):
        deviations = {}
        for scheme in default_scheme_suite():
            state, _ = scheme.respond(failed_state)
            metrics = evaluate_state(state, reference=small_environment.state)
            deviations[scheme.name] = metrics.fairness.total
        assert deviations["phoenix-fair"] <= deviations["priority"] + 1e-9
        assert deviations["phoenix-fair"] <= deviations["default"] + 1e-9

    def test_no_degradation_is_all_or_nothing(self, failed_state):
        new_state, _ = NoDegradationScheme().respond(failed_state)
        active = new_state.active_microservices()
        for name, app in new_state.applications.items():
            fully_up = active[name] == set(app.microservices)
            fully_down = len(active[name]) == 0
            assert fully_up or fully_down


class TestLPSchemes:
    def test_lp_schemes_work_on_tiny_clusters(self, simple_app, second_app):
        from repro.cluster import Node, Resources
        from repro.cluster.state import ClusterState

        nodes = [Node(f"n{i}", Resources(4, 4)) for i in range(3)]
        state = ClusterState(nodes=nodes, applications=[simple_app, second_app])
        state.fail_nodes(["n0"])
        for scheme in (LPCostScheme(time_limit=20), LPFairScheme(time_limit=20)):
            new_state, seconds = scheme.respond(state)
            assert seconds > 0
            for node in new_state.nodes.values():
                assert new_state.used_on(node.name).fits_within(node.capacity)


class TestHarness:
    def test_sweep_produces_every_point(self, small_environment):
        result = run_failure_sweep(
            small_environment,
            schemes=[PhoenixCostScheme(), DefaultScheme()],
            failure_levels=[0.0, 0.6],
            trials=1,
        )
        assert len(result.points) == 4
        assert result.schemes() == ["default", "phoenix-cost"]

    def test_sweep_availability_not_increasing_with_failures(self, small_environment):
        result = run_failure_sweep(
            small_environment,
            schemes=[PhoenixFairScheme()],
            failure_levels=[0.0, 0.5, 0.9],
            trials=1,
        )
        series = dict(result.series("phoenix-fair", "availability"))
        assert series[0.0] >= series[0.5] >= series[0.9]

    def test_sweep_phoenix_dominates_default(self, small_environment):
        result = run_failure_sweep(
            small_environment,
            schemes=[PhoenixFairScheme(), DefaultScheme()],
            failure_levels=[0.5, 0.7],
            trials=2,
        )
        for level in (0.5, 0.7):
            assert (
                result.point("phoenix-fair", level).availability
                >= result.point("default", level).availability
            )

    def test_point_lookup_raises_for_missing(self, small_environment):
        result = run_failure_sweep(
            small_environment, schemes=[DefaultScheme()], failure_levels=[0.2], trials=1
        )
        with pytest.raises(KeyError):
            result.point("default", 0.9)

    def test_summarize_and_rows(self, small_environment):
        result = run_failure_sweep(
            small_environment, schemes=[DefaultScheme()], failure_levels=[0.0], trials=1
        )
        assert "default" in summarize(result)
        rows = result.to_rows()
        assert rows and "availability" in rows[0]


class TestReplay:
    def test_replay_records_every_step_per_scheme(self, small_environment):
        trace = CapacityTrace.from_fractions([1.0, 0.5, 1.0])
        result = replay_capacity_trace(
            small_environment, [PhoenixCostScheme(), DefaultScheme()], trace=trace
        )
        assert len(result.series("phoenix-cost")) == 3
        assert len(result.series("default")) == 3

    def test_phoenix_serves_at_least_as_many_requests(self, small_environment):
        trace = CapacityTrace.from_fractions([1.0, 0.6, 0.35, 0.35, 0.7, 1.0])
        result = replay_capacity_trace(
            small_environment, [PhoenixCostScheme(), DefaultScheme()], trace=trace
        )
        assert result.improvement("phoenix-cost", "default") >= 1.0

    def test_paper_profile_shape(self):
        trace = CapacityTrace.paper_profile(steps=20)
        fractions = [p.available_fraction for p in trace]
        assert len(trace) == 20
        assert min(fractions) < 0.5 < max(fractions)


class TestAnalysis:
    def test_application_summaries(self, traced_apps):
        summaries = application_summaries(traced_apps)
        assert len(summaries) == len(traced_apps)
        assert all(s.microservices > 0 and s.requests > 0 for s in summaries)

    def test_call_graph_cdf_monotone_and_bounded(self, traced_apps):
        cdf = call_graph_size_cdf(traced_apps[0], max_size=15)
        values = [v for _, v in cdf]
        assert all(0 <= v <= 1 for v in values)
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_requests_vs_microservice_fraction_increases(self, traced_apps):
        points = requests_vs_microservice_fraction(traced_apps[0], fractions=(0.01, 0.05, 0.1))
        coverages = [c for _, c in points]
        assert coverages == sorted(coverages)

    def test_coverage_curve_ends_at_full_coverage(self, traced_apps):
        curve = coverage_curve(traced_apps[1])
        assert curve[-1][1] == pytest.approx(1.0)
