"""Tests for criticality tags."""

import pytest

from repro.criticality import (
    DEFAULT_LEVELS,
    HIGHEST_CRITICALITY,
    LOWEST_DEFAULT_CRITICALITY,
    CriticalityTag,
    criticality_breakdown,
    normalize_tags,
)


class TestConstruction:
    def test_level_one_is_valid(self):
        assert CriticalityTag(1).level == 1

    def test_zero_level_rejected(self):
        with pytest.raises(ValueError):
            CriticalityTag(0)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            CriticalityTag(-3)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            CriticalityTag(1.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            CriticalityTag(True)

    def test_str_representation(self):
        assert str(CriticalityTag(3)) == "C3"


class TestParse:
    def test_parse_int(self):
        assert CriticalityTag.parse(2) == CriticalityTag(2)

    def test_parse_upper_string(self):
        assert CriticalityTag.parse("C4") == CriticalityTag(4)

    def test_parse_lower_string(self):
        assert CriticalityTag.parse("c7") == CriticalityTag(7)

    def test_parse_digit_string(self):
        assert CriticalityTag.parse("5") == CriticalityTag(5)

    def test_parse_existing_tag_is_identity(self):
        tag = CriticalityTag(2)
        assert CriticalityTag.parse(tag) is tag

    def test_parse_garbage_rejected(self):
        with pytest.raises(ValueError):
            CriticalityTag.parse("critical")

    def test_parse_roundtrip_through_str(self):
        for level in range(1, 12):
            assert CriticalityTag.parse(str(CriticalityTag(level))).level == level


class TestOrdering:
    def test_lower_level_sorts_first(self):
        assert CriticalityTag(1) < CriticalityTag(2)

    def test_is_more_critical_than(self):
        assert CriticalityTag(1).is_more_critical_than(CriticalityTag(5))
        assert not CriticalityTag(5).is_more_critical_than(CriticalityTag(1))

    def test_sorting_tags(self):
        tags = [CriticalityTag(5), CriticalityTag(1), CriticalityTag(3)]
        assert sorted(tags) == [CriticalityTag(1), CriticalityTag(3), CriticalityTag(5)]

    def test_constants(self):
        assert HIGHEST_CRITICALITY.level == 1
        assert LOWEST_DEFAULT_CRITICALITY.level == DEFAULT_LEVELS


class TestNormalizeTags:
    def test_missing_entries_default_to_highest(self):
        result = normalize_tags({"a": "C3"}, ["a", "b"])
        assert result["a"] == CriticalityTag(3)
        assert result["b"] == HIGHEST_CRITICALITY

    def test_none_mapping_defaults_everything(self):
        result = normalize_tags(None, ["x", "y"])
        assert all(tag == HIGHEST_CRITICALITY for tag in result.values())

    def test_mixed_input_types(self):
        result = normalize_tags({"a": 2, "b": "C4", "c": CriticalityTag(6)}, ["a", "b", "c"])
        assert [result[k].level for k in "abc"] == [2, 4, 6]


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = criticality_breakdown({CriticalityTag(1): 60.0, CriticalityTag(5): 40.0})
        assert breakdown["C1"] == pytest.approx(0.6)
        assert breakdown["C5"] == pytest.approx(0.4)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_empty_total_gives_zeros(self):
        breakdown = criticality_breakdown({CriticalityTag(1): 0.0})
        assert breakdown["C1"] == 0.0
