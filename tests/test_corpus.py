"""The scenario corpus: library shapes, runner determinism, coverage report."""

from __future__ import annotations

import json

import pytest

from repro.corpus import (
    CORPUS_REPORT_VERSION,
    ENGINE_CONFIGS,
    SCENARIOS,
    SCHEMES,
    build_jobs,
    get_scenario,
    run_corpus,
    scenario_names,
)
from repro.traces import NodeRecovery

NODES = [f"node-{i}" for i in range(24)]


class TestScenarioLibrary:
    def test_names_are_unique_and_resolvable(self):
        names = scenario_names()
        assert len(names) == len(set(names)) == len(SCENARIOS)
        for name in names:
            assert get_scenario(name).name == name

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("meteor-strike")

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_builders_are_deterministic(self, scenario):
        nodes = [f"node-{i}" for i in range(scenario.node_count)]
        assert scenario.build(nodes, 5).dumps() == scenario.build(nodes, 5).dumps()
        assert scenario.build(nodes, 5).dumps() != scenario.build(nodes, 6).dumps()

    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_scenarios_validate_and_end_recovered(self, scenario):
        nodes = [f"node-{i}" for i in range(scenario.node_count)]
        trace = scenario.build(nodes, 0)
        trace.validate()
        closing = trace.events[-1]
        assert isinstance(closing, NodeRecovery)
        assert set(closing.nodes) == set(nodes)
        assert trace.metadata["scenario"] == scenario.name

    def test_every_event_kind_is_covered_by_the_library(self):
        kinds: set[str] = set()
        for scenario in SCENARIOS:
            nodes = [f"node-{i}" for i in range(scenario.node_count)]
            kinds |= set(scenario.build(nodes, 0).kinds())
        assert kinds == {"node_failure", "node_recovery", "capacity", "load_change"}


class TestJobPlan:
    def test_full_sweep_is_scenarios_times_schemes_times_engines(self):
        jobs = build_jobs()
        assert len(jobs) == len(SCENARIOS) * len(SCHEMES) * len(ENGINE_CONFIGS)

    def test_scale_filter(self):
        jobs = build_jobs(scales=("small",))
        assert jobs
        assert all(get_scenario(job["scenario"]).scale == "small" for job in jobs)


class TestRunnerDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return run_corpus(
            ["refail-churn"],
            seed=0,
            schemes=("revenue",),
        )

    def test_slice_is_clean_and_covered(self, serial_report):
        assert serial_report.ok, serial_report.to_text()
        coverage = serial_report.coverage()
        assert coverage["scenarios"] == ["refail-churn"]
        assert coverage["schemes"] == ["revenue"]
        assert coverage["engine_configs"] == ["fast-full", "fast-incremental"]
        assert "node_failure" in coverage["event_kinds"]
        assert "capacity" in coverage["event_kinds_missing"]

    def test_report_jsonl_is_parseable(self, serial_report):
        lines = serial_report.to_jsonl().splitlines()
        header = json.loads(lines[0])
        assert header["record"] == "corpus"
        assert header["version"] == CORPUS_REPORT_VERSION
        assert header["jobs"] == len(lines) - 1
        for line in lines[1:]:
            assert json.loads(line)["record"] == "job"

    def test_workers_report_is_byte_identical(self, serial_report):
        parallel = run_corpus(
            ["refail-churn"],
            workers=2,
            seed=0,
            schemes=("revenue",),
        )
        assert parallel.to_jsonl() == serial_report.to_jsonl()

    def test_different_seed_changes_the_report(self, serial_report):
        other = run_corpus(["refail-churn"], seed=1, schemes=("revenue",))
        assert other.to_jsonl() != serial_report.to_jsonl()

    def test_text_summary_names_the_dimensions(self, serial_report):
        text = serial_report.to_text()
        assert "corpus: OK" in text
        assert "kinds hit" in text and "kinds missing" in text
        assert "scales: small" in text
