"""Tests for the default scheduler, kubelet, node lifecycle and deployment
controller of the Kubernetes-like simulator."""

import pytest

from repro.cluster.resources import Resources
from repro.kubesim import (
    ApiServer,
    Deployment,
    DefaultScheduler,
    DeploymentController,
    KubeNode,
    Kubelet,
    Namespace,
    NodeCondition,
    NodeLifecycleController,
    Pod,
    PodPhase,
    PodSpec,
)


def make_api(nodes=2, capacity=4.0):
    api = ApiServer()
    api.create_namespace(Namespace(name="app"))
    for i in range(nodes):
        api.register_node(KubeNode(name=f"n{i}", capacity=Resources(capacity, capacity)))
    return api


def spec(ms="web", cpu=2.0, priority=0):
    return PodSpec(app="app", microservice=ms, resources=Resources(cpu, cpu), priority=priority,
                   startup_seconds=10, termination_seconds=5)


class TestDefaultScheduler:
    def test_binds_pending_pod(self):
        api = make_api()
        pod = Pod.from_spec("app", spec())
        api.create_pod(pod)
        DefaultScheduler(api).schedule_pending()
        assert pod.node_name in {"n0", "n1"}
        assert pod.phase is PodPhase.STARTING

    def test_spreads_across_nodes(self):
        api = make_api()
        pods = [Pod.from_spec("app", spec(f"ms{i}")) for i in range(2)]
        for pod in pods:
            api.create_pod(pod)
        DefaultScheduler(api).schedule_pending()
        assert {p.node_name for p in pods} == {"n0", "n1"}

    def test_unschedulable_pod_stays_pending(self):
        api = make_api(nodes=1, capacity=1.0)
        pod = Pod.from_spec("app", spec(cpu=3.0))
        api.create_pod(pod)
        decisions = DefaultScheduler(api).schedule_pending()
        assert decisions[0].node is None
        assert pod.phase is PodPhase.PENDING

    def test_priority_preemption_evicts_lower_priority(self):
        api = make_api(nodes=1, capacity=4.0)
        low = Pod.from_spec("app", spec("low", cpu=4.0, priority=10))
        api.create_pod(low)
        scheduler = DefaultScheduler(api)
        scheduler.schedule_pending()
        high = Pod.from_spec("app", spec("high", cpu=4.0, priority=100))
        api.create_pod(high)
        decisions = scheduler.schedule_pending()
        assert decisions[0].node == "n0"
        assert decisions[0].preempted == [low.name]
        assert high.node_name == "n0"

    def test_no_preemption_for_equal_priority(self):
        api = make_api(nodes=1, capacity=4.0)
        first = Pod.from_spec("app", spec("first", cpu=4.0, priority=50))
        api.create_pod(first)
        scheduler = DefaultScheduler(api)
        scheduler.schedule_pending()
        second = Pod.from_spec("app", spec("second", cpu=4.0, priority=50))
        api.create_pod(second)
        decisions = scheduler.schedule_pending()
        assert decisions[0].node is None

    def test_preemption_can_be_disabled(self):
        api = make_api(nodes=1, capacity=4.0)
        low = Pod.from_spec("app", spec("low", cpu=4.0, priority=10))
        api.create_pod(low)
        scheduler = DefaultScheduler(api, enable_preemption=False)
        scheduler.schedule_pending()
        high = Pod.from_spec("app", spec("high", cpu=4.0, priority=100))
        api.create_pod(high)
        decisions = scheduler.schedule_pending()
        assert decisions[0].node is None
        assert low.node_name == "n0"


class TestKubelet:
    def test_heartbeat_updates_node(self):
        api = make_api(nodes=1)
        kubelet = Kubelet(node_name="n0")
        api.clock = 100.0
        kubelet.tick(api)
        assert api.get_node("n0").last_heartbeat == 100.0

    def test_stopped_kubelet_does_not_heartbeat(self):
        api = make_api(nodes=1)
        kubelet = Kubelet(node_name="n0")
        kubelet.stop()
        api.clock = 100.0
        kubelet.tick(api)
        assert api.get_node("n0").last_heartbeat == 0.0

    def test_starting_pod_promoted_to_running_after_startup(self):
        api = make_api(nodes=1)
        pod = Pod.from_spec("app", spec())
        pod.node_name = "n0"
        pod.phase = PodPhase.STARTING
        pod.phase_deadline = 10.0
        api.create_pod(pod)
        kubelet = Kubelet(node_name="n0")
        api.clock = 5.0
        kubelet.tick(api)
        assert pod.phase is PodPhase.STARTING
        api.clock = 11.0
        kubelet.tick(api)
        assert pod.phase is PodPhase.RUNNING

    def test_terminating_pod_removed_after_grace(self):
        api = make_api(nodes=1)
        pod = Pod.from_spec("app", spec())
        pod.node_name = "n0"
        pod.phase = PodPhase.TERMINATING
        pod.phase_deadline = 8.0
        api.create_pod(pod)
        kubelet = Kubelet(node_name="n0")
        api.clock = 9.0
        kubelet.tick(api)
        assert api.list_pods() == []


class TestNodeLifecycleController:
    def test_stale_heartbeat_marks_not_ready(self):
        api = make_api(nodes=1)
        controller = NodeLifecycleController(api, heartbeat_grace=40, pod_eviction_timeout=60)
        api.clock = 50.0
        controller.tick()
        assert api.get_node("n0").condition is NodeCondition.NOT_READY

    def test_fresh_heartbeat_marks_ready_again(self):
        api = make_api(nodes=1)
        controller = NodeLifecycleController(api, heartbeat_grace=40, pod_eviction_timeout=60)
        api.clock = 50.0
        controller.tick()
        api.get_node("n0").last_heartbeat = 50.0
        controller.tick()
        assert api.get_node("n0").condition is NodeCondition.READY

    def test_pods_evicted_after_timeout(self):
        api = make_api(nodes=1)
        pod = Pod.from_spec("app", spec())
        pod.node_name = "n0"
        pod.phase = PodPhase.RUNNING
        api.create_pod(pod)
        controller = NodeLifecycleController(api, heartbeat_grace=40, pod_eviction_timeout=60)
        api.clock = 50.0
        controller.tick()     # NotReady at t=50
        api.clock = 100.0
        controller.tick()     # 50s elapsed < 60 -> not yet evicted
        assert api.list_pods() == [pod]
        api.clock = 115.0
        controller.tick()
        assert api.list_pods() == []

    def test_invalid_timeouts_rejected(self):
        api = make_api(nodes=1)
        with pytest.raises(ValueError):
            NodeLifecycleController(api, heartbeat_grace=0)


class TestDeploymentController:
    def test_creates_missing_replicas(self):
        api = make_api()
        api.create_deployment(Deployment(name="web", namespace="app", spec=spec(), replicas=3))
        changes = DeploymentController(api).reconcile()
        assert changes == 3
        assert len(api.list_pods()) == 3

    def test_reconcile_is_idempotent(self):
        api = make_api()
        api.create_deployment(Deployment(name="web", namespace="app", spec=spec(), replicas=2))
        controller = DeploymentController(api)
        controller.reconcile()
        assert controller.reconcile() == 0

    def test_scales_down_excess_replicas(self):
        api = make_api()
        api.create_deployment(Deployment(name="web", namespace="app", spec=spec(), replicas=2))
        controller = DeploymentController(api)
        controller.reconcile()
        api.scale_deployment("app", "web", 0)
        controller.reconcile()
        live = [p for p in api.list_pods() if p.phase not in (PodPhase.TERMINATING,)]
        assert live == []

    def test_paused_deployment_ignored(self):
        api = make_api()
        api.create_deployment(
            Deployment(name="web", namespace="app", spec=spec(), replicas=2, paused=True)
        )
        assert DeploymentController(api).reconcile() == 0
