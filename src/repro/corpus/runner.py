"""Parallel corpus runner: sweep the scenario library, report coverage.

One *job* is (scenario × scheme × engine config): build the scenario's
environment, generate its seeded trace, replay it through a fresh engine
with the invariant oracle checked after every reconcile round
(:func:`repro.chaos.fuzz.drive_trace`), and record what was exercised.
Jobs are independent and seeded, so the runner shards them across worker
processes exactly like ``repro sweep``/``repro replay`` do — an
order-preserving ``pool.map`` merge makes ``--workers N`` byte-identical
to a serial run.

The coverage report (:meth:`CorpusReport.to_jsonl`) is canonical JSONL: a
header with the aggregate coverage (event kinds × scales × schemes ×
engine configs hit, and — crucially — the kinds *not* hit) followed by one
record per job.  Same seeds ⇒ byte-identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.corpus.library import SCENARIOS, get_scenario

#: Schema version of the corpus coverage report.
CORPUS_REPORT_VERSION = 1

#: Engine configurations every scenario is swept across.
ENGINE_CONFIGS: tuple[Mapping[str, object], ...] = (
    {"name": "fast-incremental", "incremental": True},
    {"name": "fast-full", "incremental": False},
)

#: Operator objectives (the engine-side scheme dimension) swept per scenario.
SCHEMES: tuple[str, ...] = ("revenue", "fairness")


def _canonical(record: Mapping[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


#: Per-process environment cache, keyed by shape — corpus jobs with the same
#: environment share one build (cf. the CLI's ``_cached_environment``).
_ENVIRONMENTS: dict[tuple, object] = {}


def _environment(node_count: int, n_apps: int, env_seed: int):
    from repro.adaptlab import build_environment

    key = (node_count, n_apps, env_seed)
    env = _ENVIRONMENTS.get(key)
    if env is None:
        env = build_environment(
            node_count=node_count, n_apps=n_apps, target_utilization=0.6, seed=env_seed
        )
        _ENVIRONMENTS[key] = env
    return env


def corpus_job(params: dict) -> dict:
    """Run one (scenario, scheme, engine config) job; return its record.

    Top-level and dict-in/dict-out so it crosses the process pool boundary;
    deterministic given ``params``.
    """
    import repro.api as api
    from repro.chaos.fuzz import drive_trace

    scenario = get_scenario(params["scenario"])
    env = _environment(scenario.node_count, scenario.n_apps, params["env_seed"])
    trace = scenario.build(list(env.state.nodes), params["seed"])
    engine = api.engine(params["scheme"], incremental=params["incremental"])
    result = drive_trace(
        engine, env.fresh_state(), trace, seed=params["seed"], stop_on_violation=False
    )
    return {
        "record": "job",
        "scenario": scenario.name,
        "scale": scenario.scale,
        "scheme": params["scheme"],
        "engine": params["engine"],
        "seed": params["seed"],
        "events": len(trace),
        "event_kinds": dict(sorted(result.event_kinds.items())),
        "steps": result.steps,
        "duration": trace.duration,
        "final_failed_nodes": result.final_failed_nodes,
        "violations": [f"t={time}: {violation}" for time, violation in result.violations],
    }


@dataclass
class CorpusReport:
    """The merged outcome of one corpus sweep."""

    seed: int
    records: list[dict] = field(default_factory=list)

    @property
    def violations(self) -> int:
        return sum(len(record["violations"]) for record in self.records)

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def coverage(self) -> dict:
        """Event kinds × scales × schemes × engine configs hit (and missed)."""
        from repro.traces.schema import EVENT_TYPES

        kinds: dict[str, int] = {}
        for record in self.records:
            for kind, count in record["event_kinds"].items():
                kinds[kind] = kinds.get(kind, 0) + count
        return {
            "event_kinds": dict(sorted(kinds.items())),
            "event_kinds_missing": sorted(set(EVENT_TYPES) - set(kinds)),
            "scales": sorted({record["scale"] for record in self.records}),
            "schemes": sorted({record["scheme"] for record in self.records}),
            "engine_configs": sorted({record["engine"] for record in self.records}),
            "scenarios": sorted({record["scenario"] for record in self.records}),
        }

    def to_jsonl(self) -> str:
        """Canonical coverage report: header + one record per job."""
        header = {
            "record": "corpus",
            "version": CORPUS_REPORT_VERSION,
            "seed": self.seed,
            "jobs": len(self.records),
            "violations": self.violations,
            "coverage": self.coverage(),
        }
        lines = [_canonical(header)]
        lines.extend(_canonical(record) for record in self.records)
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Human summary for stderr: verdict plus the coverage dimensions."""
        coverage = self.coverage()
        verdict = "OK" if self.ok else f"FAIL ({self.violations} violation(s))"
        lines = [
            f"corpus: {verdict} — {len(self.records)} job(s) over "
            f"{len(coverage['scenarios'])} scenario(s), seed {self.seed}",
            f"  kinds hit: "
            + (
                ", ".join(f"{k}×{v}" for k, v in coverage["event_kinds"].items())
                or "none"
            ),
            f"  kinds missing: {', '.join(coverage['event_kinds_missing']) or 'none'}",
            f"  scales: {', '.join(coverage['scales'])}; "
            f"schemes: {', '.join(coverage['schemes'])}; "
            f"engines: {', '.join(coverage['engine_configs'])}",
        ]
        for record in self.records:
            for violation in record["violations"]:
                lines.append(
                    f"  violation [{record['scenario']}/{record['scheme']}/"
                    f"{record['engine']}]: {violation}"
                )
        return "\n".join(lines)


def build_jobs(
    names: Sequence[str] | None = None,
    *,
    seed: int = 0,
    env_seed: int = 2025,
    scales: Sequence[str] | None = None,
    schemes: Sequence[str] = SCHEMES,
    engine_configs: Sequence[Mapping[str, object]] = ENGINE_CONFIGS,
) -> list[dict]:
    """The deterministic job list of one sweep (exposed for tests/CLI)."""
    if names is not None:
        scenarios = [get_scenario(name) for name in names]
    else:
        scenarios = [
            scenario
            for scenario in SCENARIOS
            if scales is None or scenario.scale in scales
        ]
    return [
        {
            "scenario": scenario.name,
            "scheme": scheme,
            "engine": config["name"],
            "incremental": config["incremental"],
            "seed": seed,
            "env_seed": env_seed,
        }
        for scenario in scenarios
        for scheme in schemes
        for config in engine_configs
    ]


def run_corpus(
    names: Sequence[str] | None = None,
    *,
    workers: int = 1,
    seed: int = 0,
    env_seed: int = 2025,
    scales: Sequence[str] | None = None,
    schemes: Sequence[str] = SCHEMES,
    engine_configs: Sequence[Mapping[str, object]] = ENGINE_CONFIGS,
) -> CorpusReport:
    """Sweep the corpus (or a named/scale-filtered slice) under the oracle.

    ``workers > 1`` shards jobs across processes; the order-preserving merge
    keeps the report byte-identical to the serial run.
    """
    jobs = build_jobs(
        names,
        seed=seed,
        env_seed=env_seed,
        scales=scales,
        schemes=schemes,
        engine_configs=engine_configs,
    )
    workers = min(max(1, workers), max(1, len(jobs)))
    if workers <= 1 or len(jobs) <= 1:
        records = [corpus_job(job) for job in jobs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() yields in job order — the report merge is deterministic.
            records = list(pool.map(corpus_job, jobs))
    return CorpusReport(seed=seed, records=records)
