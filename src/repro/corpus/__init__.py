"""Scenario corpus: a library of composed multi-day scenarios plus a
parallel runner that sweeps them under the invariant oracle and reports
coverage (see :mod:`repro.corpus.library` and :mod:`repro.corpus.runner`;
CLI: ``python -m repro corpus``)."""

from repro.corpus.library import SCENARIOS, Scenario, get_scenario, scenario_names
from repro.corpus.runner import (
    CORPUS_REPORT_VERSION,
    ENGINE_CONFIGS,
    SCHEMES,
    CorpusReport,
    build_jobs,
    corpus_job,
    run_corpus,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "scenario_names",
    "CORPUS_REPORT_VERSION",
    "ENGINE_CONFIGS",
    "SCHEMES",
    "CorpusReport",
    "build_jobs",
    "corpus_job",
    "run_corpus",
]
