"""The scenario corpus: composable multi-day scenarios with known shapes.

Where the fuzzer (:mod:`repro.chaos.fuzz`) searches *random* event programs,
the corpus pins down a library of named, composed, multi-day scenarios —
diurnal load under Poisson churn, rack storms over a weekend, capacity dips
with flash crowds, refail interleavings — that the runner
(:mod:`repro.corpus.runner`) sweeps across engine configurations under the
invariant oracle.  Every scenario is a pure function of its seed (composed
from the seeded generators in :mod:`repro.traces.generators`), ends with a
full recovery so the ``full-recovery-availability`` invariant is always
exercised, and declares the environment shape it runs against.

Scales: ``small`` (24 nodes, 2 apps — PR smoke budget) and ``medium``
(48 nodes, 3 apps — nightly budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.chaos.fuzz import refail_interleaving
from repro.traces.generators import (
    capacity_schedule,
    correlated_failures,
    diurnal_load,
    failure_storm,
    poisson_failures,
)
from repro.traces.schema import NodeRecovery, Trace, merge_traces

DAY = 86400.0


@dataclass(frozen=True)
class Scenario:
    """One named corpus entry: environment shape + seeded trace builder."""

    name: str
    scale: str  # "small" | "medium"
    description: str
    node_count: int
    n_apps: int
    horizon: float
    #: ``build(node_names, seed) -> Trace`` — pure function of its inputs.
    build: Callable[[Sequence[str], int], Trace]


def _closed(
    segments: list[Trace], node_names: Sequence[str], horizon: float, name: str, seed: int
) -> Trace:
    """Merge segments and append the closing full recovery."""
    closing = Trace(
        events=[NodeRecovery(time=round(horizon + 60.0, 6), nodes=tuple(node_names))],
        metadata={"generator": "closing_recovery"},
    )
    return merge_traces(
        segments + [closing],
        metadata={
            "generator": "corpus",
            "scenario": name,
            "seed": seed,
            "nodes": len(node_names),
            "horizon": horizon,
        },
    ).validate()


def _poisson_day(names: Sequence[str], seed: int) -> Trace:
    churn = poisson_failures(names, horizon=DAY, mtbf=8 * 3600.0, mttr=1800.0, seed=seed)
    load = diurnal_load(horizon=DAY, step_seconds=2 * 3600.0, amplitude=0.4, seed=seed + 1)
    return _closed([churn, load], names, DAY, "poisson-day", seed)


def _rack_storms(names: Sequence[str], seed: int) -> Trace:
    racks = correlated_failures(
        names, rack_size=8, horizon=2 * DAY, rack_mtbf=DAY, mttr=2 * 3600.0, seed=seed
    )
    storm = failure_storm(
        names,
        at=DAY + 4 * 3600.0,
        fraction=0.4,
        burst_waves=3,
        recovery_after=3600.0,
        recovery_steps=3,
        recovery_step_seconds=600.0,
        seed=seed + 1,
    )
    return _closed([racks, storm], names, 2 * DAY, "rack-storms", seed)


def _diurnal_flash_crowd(names: Sequence[str], seed: int) -> Trace:
    load = diurnal_load(horizon=DAY, step_seconds=3600.0, amplitude=0.8, seed=seed)
    crowd_storm = failure_storm(
        names,
        at=DAY / 2,
        fraction=0.6,
        burst_waves=4,
        recovery_after=1800.0,
        recovery_steps=4,
        recovery_step_seconds=900.0,
        seed=seed + 1,
    )
    return _closed([load, crowd_storm], names, DAY, "diurnal-flash-crowd", seed)


def _capacity_dips(names: Sequence[str], seed: int) -> Trace:
    fractions = [1.0, 0.85, 0.6, 0.45, 0.6, 0.35, 0.5, 0.75, 0.9, 1.0]
    dips = capacity_schedule(
        fractions,
        step_seconds=DAY / len(fractions),
        metadata={"generator": "capacity_schedule", "seed": seed},
    )
    load = diurnal_load(horizon=DAY, step_seconds=DAY / 12, amplitude=0.3, seed=seed + 1)
    return _closed([dips, load], names, DAY, "capacity-dips", seed)


def _refail_churn(names: Sequence[str], seed: int) -> Trace:
    refail = refail_interleaving(names, horizon=DAY / 2, seed=seed)
    churn = poisson_failures(
        names, horizon=DAY / 2, mtbf=6 * 3600.0, mttr=1200.0, seed=seed + 1
    )
    return _closed([refail, churn], names, DAY / 2, "refail-churn", seed)


def _storm_recovery(names: Sequence[str], seed: int) -> Trace:
    storm = failure_storm(
        names,
        at=4 * 3600.0,
        fraction=0.7,
        burst_waves=6,
        recovery_after=2 * 3600.0,
        recovery_steps=6,
        recovery_step_seconds=1800.0,
        seed=seed,
    )
    return _closed([storm], names, DAY, "storm-recovery", seed)


#: The corpus, in sweep order.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="poisson-day",
        scale="small",
        description="one day of independent Poisson churn under diurnal load",
        node_count=24,
        n_apps=2,
        horizon=DAY,
        build=_poisson_day,
    ),
    Scenario(
        name="diurnal-flash-crowd",
        scale="small",
        description="strong diurnal load with a mid-day flash-crowd storm",
        node_count=24,
        n_apps=2,
        horizon=DAY,
        build=_diurnal_flash_crowd,
    ),
    Scenario(
        name="capacity-dips",
        scale="small",
        description="an Alibaba-shaped capacity dip schedule under diurnal load",
        node_count=24,
        n_apps=2,
        horizon=DAY,
        build=_capacity_dips,
    ),
    Scenario(
        name="refail-churn",
        scale="small",
        description="refail-before-recovery interleavings over background churn",
        node_count=24,
        n_apps=2,
        horizon=DAY / 2,
        build=_refail_churn,
    ),
    Scenario(
        name="rack-storms",
        scale="medium",
        description="two days of correlated rack failures plus a deep storm",
        node_count=48,
        n_apps=3,
        horizon=2 * DAY,
        build=_rack_storms,
    ),
    Scenario(
        name="storm-recovery",
        scale="medium",
        description="one 70% failure storm with a long six-stage recovery",
        node_count=48,
        n_apps=3,
        horizon=DAY,
        build=_storm_recovery,
    ),
)

_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def scenario_names() -> tuple[str, ...]:
    """Every corpus scenario name, in sweep order."""
    return tuple(scenario.name for scenario in SCENARIOS)


def get_scenario(name: str) -> Scenario:
    scenario = _BY_NAME.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown corpus scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    return scenario
