"""``repro.cli`` — the ``python -m repro`` command line.

One command per evaluation workflow, each a thin wrapper over the public
library API (the benchmarks and examples use the same calls):

* ``repro sweep`` — failure-level sweeps across resilience schemes
  (:func:`repro.adaptlab.run_failure_sweep`, the Figure-7 shape).
* ``repro replay`` — replay a JSONL scenario trace through a
  :class:`~repro.api.engine.PhoenixEngine`
  (:class:`repro.traces.TraceReplayer`) and emit deterministic per-step
  metrics JSONL.
* ``repro fleet replay`` / ``repro fleet sweep`` — federated scenarios over
  a :class:`~repro.fleet.engine.FleetEngine` (per-cell churn, correlated
  storms, whole-cell outages with spillover recovery); ``--workers N``
  shards cells across processes with byte-identical output.
* ``repro chaos`` — chaos-test the bundled application templates: tag
  validation, engine-driven degradation, optional failure-storm recovery
  and the fleet cell-outage check (``--cell-outage``).
* ``repro bench`` — run a paper-figure benchmark through pytest.
* ``repro trace gen`` / ``repro trace validate`` — generate seeded scenario
  traces (byte-identical for identical arguments) and validate trace files.

Exit codes: 0 on success, 1 when a check ran and failed, 2 on usage or
input errors (always a one-line ``error: ...``, never a traceback).
"""

from repro.cli.main import CliError, build_parser, main

__all__ = ["CliError", "build_parser", "main"]
