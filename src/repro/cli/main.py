"""Argument parsing and subcommand implementations for ``python -m repro``.

Every subcommand is a thin call into the library — the CLI owns argument
parsing, file I/O, exit codes and worker-process fan-out, nothing else.
Expected failures (bad arguments, missing or malformed trace files) surface
as a one-line ``error: ...`` on stderr with a non-zero exit code, never a
traceback; see :func:`main`.

Exit codes
----------
* ``0`` — success (for ``bench``: the benchmark ran and every gate passed).
* ``1`` (:data:`EXIT_FAILED`) — a check ran and failed: chaos verdicts,
  benchmark regression gates (``bench`` forwards pytest's failure code).
* ``2`` (:data:`EXIT_USAGE`) — usage or input error: unknown flags, missing
  or malformed files (argparse's own usage errors share this code).
* ``130`` — interrupted (SIGINT).

Parallelism: ``sweep`` and ``replay`` accept ``--workers N`` and shard
their independent jobs (sweep: one per failure level × scheme; replay: one
per trace × seed) across worker *processes*; ``fleet replay`` shards whole
cells onto persistent worker shards instead.  Results are merged in
deterministic order either way, so the output is byte-identical to a
serial run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.traces.schema import TraceError

#: Exit code for usage/input errors (argparse uses 2 for bad flags too).
EXIT_USAGE = 2
#: Exit code for a check that ran and failed (chaos verdicts, bench gates).
EXIT_FAILED = 1


class CliError(Exception):
    """An expected CLI failure, reported as a one-line error message."""


# -- helpers ------------------------------------------------------------------


def _write_text(out: str | None, text: str) -> None:
    """Write ``text`` to the ``--out`` target (``None``/``-`` = stdout)."""
    if out is None or out == "-":
        sys.stdout.write(text)
    else:
        Path(out).write_text(text, encoding="utf-8")


def _obs_enable(args) -> None:
    """Turn the observability registry on when ``--metrics-out`` is set."""
    if getattr(args, "metrics_out", None):
        from repro import obs

        obs.enable()


def _obs_write(args) -> None:
    """Write the final registry snapshot as JSONL to ``--metrics-out``.

    Histogram wall-clock fields (sum/max/quantiles) ride only behind the
    command's ``--timing`` flag, exactly like the per-step metrics JSONL:
    without them the snapshot is byte-identical across runs, which the CLI
    determinism tests assert.  With ``--workers`` parallelism the replay
    work runs in worker processes with their own registries; the snapshot
    is the parent-process view.
    """
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro import obs

    text = obs.registry().snapshot_jsonl(
        include_timing=bool(getattr(args, "timing", False))
    )
    Path(path).write_text(text, encoding="utf-8")


def _read_trace(path: str):
    from repro.traces.schema import Trace

    if path == "-":
        return Trace.load(sys.stdin)
    target = Path(path)
    if not target.exists():
        raise CliError(f"trace file not found: {target}")
    return Trace.read(target)


def _env_params(args) -> dict:
    """The environment-defining arguments as a plain (picklable) dict."""
    return {
        "node_count": args.nodes,
        "n_apps": args.apps,
        "tagging_scheme": args.tagging,
        "resource_model": args.resource_model,
        "target_utilization": args.utilization,
        "seed": args.env_seed,
    }


#: Per-process environment cache: worker processes (and the serial path)
#: reuse one built environment across the jobs that share its parameters.
_ENV_CACHE: dict[tuple, object] = {}


def _cached_environment(params: dict):
    from repro.adaptlab import build_environment

    key = tuple(sorted(params.items()))
    env = _ENV_CACHE.get(key)
    if env is None:
        env = build_environment(**params)
        _ENV_CACHE.clear()  # one environment at a time; they are big
        _ENV_CACHE[key] = env
    return env


def _build_environment(args):
    return _cached_environment(_env_params(args))


def _worker_count(args, jobs: int) -> int:
    workers = args.workers
    if workers < 1:
        raise CliError("--workers must be >= 1")
    return min(workers, jobs)


def _add_environment_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("environment", "AdaptLab cluster to build")
    group.add_argument("--nodes", type=int, default=300, help="cluster size (default: 300)")
    group.add_argument("--apps", type=int, default=8, help="number of Alibaba-like apps (default: 8)")
    group.add_argument(
        "--tagging", default="service-p90", help="criticality tagging scheme (default: service-p90)"
    )
    group.add_argument(
        "--resource-model", default="cpm", help="resource assignment model (default: cpm)"
    )
    group.add_argument(
        "--utilization", type=float, default=0.7, help="pre-failure utilization (default: 0.7)"
    )
    group.add_argument(
        "--env-seed", type=int, default=2025, help="environment build seed (default: 2025)"
    )


def _select_schemes(names: str | None):
    from repro.adaptlab import default_scheme_suite

    suite = {scheme.name: scheme for scheme in default_scheme_suite()}
    if not names:
        return list(suite.values())
    chosen = []
    for name in names.split(","):
        name = name.strip()
        if name not in suite:
            raise CliError(
                f"unknown scheme {name!r}; available: {', '.join(sorted(suite))}"
            )
        chosen.append(suite[name])
    return chosen


# -- sweep --------------------------------------------------------------------


def _sweep_job(params: dict) -> list:
    """One (failure level, scheme) sweep cell, run in a worker process.

    Rebuilds the environment from its defining arguments (cached per
    process) and reuses :func:`repro.adaptlab.run_failure_sweep` for a
    single level × scheme, so trial seeding is exactly the serial formula.
    """
    from repro.adaptlab import run_failure_sweep

    env = _cached_environment(params["env"])
    scheme = _select_schemes(params["scheme"])[0]
    result = run_failure_sweep(
        env,
        [scheme],
        failure_levels=[params["level"]],
        trials=params["trials"],
        seed=params["seed"],
        include_requests_served=params["requests_served"],
    )
    return result.points


def cmd_sweep(args) -> int:
    """Failure-level sweep across resilience schemes (Figure 7 shape)."""
    from repro.adaptlab import run_failure_sweep
    from repro.adaptlab.harness import SweepResult

    try:
        levels = [float(level) for level in args.levels.split(",") if level.strip()]
    except ValueError:
        raise CliError(f"--levels must be comma-separated numbers, got {args.levels!r}") from None
    if not levels:
        raise CliError("--levels must name at least one failure level")
    schemes = _select_schemes(args.schemes)
    jobs = [
        {
            "env": _env_params(args),
            "level": level,
            "scheme": scheme.name,
            "trials": args.trials,
            "seed": args.seed,
            "requests_served": args.requests_served,
        }
        for level in levels
        for scheme in schemes
    ]
    workers = _worker_count(args, len(jobs))
    if workers <= 1:
        env = _build_environment(args)
        result = run_failure_sweep(
            env,
            schemes,
            failure_levels=levels,
            trials=args.trials,
            seed=args.seed,
            include_requests_served=args.requests_served,
        )
    else:
        from concurrent.futures import ProcessPoolExecutor

        result = SweepResult()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves job order, so the merged point list (and the
            # sorted table below) is identical to the serial run's.
            for points in pool.map(_sweep_job, jobs):
                result.points.extend(points)
    metrics = ["availability", "revenue", "fairness_total", "utilization"]
    if args.requests_served:
        metrics.append("requests_served")
    header = f"{'scheme':<18}{'level':<8}" + "".join(m.ljust(16) for m in metrics)
    print(header)
    for point in sorted(result.points, key=lambda p: (p.failure_level, p.scheme)):
        row = f"{point.scheme:<18}{point.failure_level:<8.2f}"
        for metric in metrics:
            value = getattr(point, metric)
            row += (f"{value:<16.4f}" if value is not None else "-".ljust(16))
        print(row)
    return 0


# -- replay -------------------------------------------------------------------


def _replay_job(params: dict) -> str:
    """One (trace, seed) replay, run in a worker process; returns JSONL."""
    import io

    import repro.api as api
    from repro.traces.replayer import TraceReplayer
    from repro.traces.schema import Trace

    trace = Trace.load(io.StringIO(params["trace_text"]))
    env = _cached_environment(params["env"])
    known = {node.name for node in env.state.nodes.values()}
    unknown = sorted(trace.node_names() - known)
    if unknown:
        raise CliError(
            f"trace {params['label']} names {len(unknown)} node(s) outside the "
            f"{params['env']['node_count']}-node cluster (first: {unknown[0]}); "
            f"regenerate with matching --nodes"
        )
    engine = api.engine(
        params["objective"],
        implementation=params["implementation"],
        incremental=params["incremental"],
    )
    replayer = TraceReplayer(
        engine,
        traced=env.traced if params["requests_served"] else None,
        seed=params["seed"],
        force_each_step=params["force_each_step"],
    )
    metrics = replayer.run(env.fresh_state(), trace)
    return metrics.to_jsonl(include_timing=params["timing"])


def cmd_replay(args) -> int:
    """Replay JSONL trace(s) through the engine; emit per-step metrics JSONL."""
    _obs_enable(args)
    if args.seeds is not None:
        try:
            seeds = [int(seed) for seed in args.seeds.split(",") if seed.strip()]
        except ValueError:
            raise CliError(f"--seeds must be comma-separated integers, got {args.seeds!r}") from None
        if not seeds:
            raise CliError("--seeds must name at least one seed")
    else:
        seeds = [args.seed]
    trace_texts: list[tuple[str, str]] = []
    for path in args.trace:
        if path == "-":
            trace_texts.append(("<stdin>", sys.stdin.read()))
            continue
        target = Path(path)
        if not target.exists():
            raise CliError(f"trace file not found: {target}")
        trace_texts.append((path, target.read_text(encoding="utf-8")))
    jobs = [
        {
            "env": _env_params(args),
            "label": label,
            "trace_text": text,
            "seed": seed,
            "objective": args.objective,
            "implementation": args.implementation,
            "incremental": not args.full_recompute,
            "requests_served": args.requests_served,
            "force_each_step": args.force_each_step,
            "timing": args.timing,
        }
        for label, text in trace_texts
        for seed in seeds
    ]
    workers = _worker_count(args, len(jobs))
    if workers <= 1:
        chunks = [_replay_job(job) for job in jobs]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() yields in job order: (trace, seed), traces outermost —
            # the merged stream is byte-identical to the serial run.
            chunks = list(pool.map(_replay_job, jobs))
    _write_text(args.out, "".join(chunks))
    _obs_write(args)
    return 0


# -- fleet --------------------------------------------------------------------


def _fleet_environments(args) -> list:
    """One AdaptLab environment per cell, built once per command.

    Cell ``i`` gets its own environment built with ``env-seed + i`` so the
    fleet is heterogeneous (different app mixes per cell) yet fully
    deterministic.  The per-process ``_ENV_CACHE`` holds a single entry, so
    N distinct per-cell environments are built directly and held here —
    callers that need several fleets (the sweep) reuse this list and take
    ``fresh_state()`` per fleet instead of rebuilding environments.
    """
    from repro.adaptlab import build_environment

    if args.cells < 1:
        raise CliError("--cells must be >= 1")
    return [
        build_environment(
            node_count=args.nodes_per_cell,
            n_apps=args.apps,
            tagging_scheme=args.tagging,
            resource_model=args.resource_model,
            target_utilization=args.utilization,
            seed=args.env_seed + index,
        )
        for index in range(args.cells)
    ]


def _build_fleet(args, environments):
    """A converged fleet over fresh per-cell states of ``environments``."""
    from repro.fleet import FleetConfig, FleetEngine

    config = FleetConfig(
        cells=args.cells,
        objective=args.objective,
        spillover=args.spillover,
        workers=args.workers,
    )
    fleet = FleetEngine(config, states=[env.fresh_state() for env in environments])
    # Converge the pre-scenario placement serially: convergence output is
    # identical either way, and shipping whole states to a pool for one
    # round costs more than it saves.
    fleet.reconcile(force=True, workers=1)
    return fleet


def _fleet_scenario(args):
    from repro.traces import fleet_scenario

    if args.scenario == "poisson":
        return fleet_scenario(
            args.cells,
            args.nodes_per_cell,
            horizon=args.horizon,
            mtbf=args.mtbf,
            mttr=args.mttr,
            seed=args.seed,
        )
    if args.scenario == "storm":
        return fleet_scenario(
            args.cells,
            args.nodes_per_cell,
            horizon=args.horizon,
            mtbf=args.mtbf,
            mttr=args.mttr,
            storm_at=args.storm_at,
            storm_fraction=args.storm_fraction,
            storm_cells=min(args.storm_cells, args.cells),
            seed=args.seed,
        )
    if args.scenario == "outage":
        if not 0 <= args.outage_cell < args.cells:
            raise CliError(
                f"--outage-cell must be within [0, {args.cells - 1}], got {args.outage_cell}"
            )
        return fleet_scenario(
            args.cells,
            args.nodes_per_cell,
            horizon=args.horizon,
            mtbf=None,  # clean outage: no background churn
            outage_cell=args.outage_cell,
            outage_at=args.outage_at,
            outage_recovery_after=args.outage_recovery_after,
            seed=args.seed,
        )
    raise CliError(f"unknown scenario {args.scenario!r}")  # pragma: no cover


def cmd_fleet_replay(args) -> int:
    """Replay a fleet scenario; emit deterministic per-step metrics JSONL.

    ``--profile`` runs the replay under cProfile and prints the top 20
    functions by cumulative time (same report as ``repro bench --profile``)
    plus the replayer's per-phase wall-clock split, to stderr so the
    metrics JSONL on stdout stays machine-readable.
    """
    from repro.fleet import FleetReplayer

    _obs_enable(args)
    fleet = _build_fleet(args, _fleet_environments(args))
    scenario = _fleet_scenario(args)
    replayer = FleetReplayer(fleet, seed=args.seed, workers=args.workers)
    try:
        if args.profile:
            import cProfile
            import tempfile

            profile = cProfile.Profile()
            profile.enable()
            metrics = replayer.run(scenario)
            profile.disable()
            handle = tempfile.NamedTemporaryFile(suffix=".prof", delete=False)
            handle.close()
            profile_path = Path(handle.name)
            try:
                profile.dump_stats(profile_path)
                print(_profile_summary(profile_path), end="", file=sys.stderr)
            finally:
                profile_path.unlink(missing_ok=True)
            phases = " ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in replayer.phase_seconds.items()
            )
            print(f"replay phases: {phases}", file=sys.stderr)
        else:
            metrics = replayer.run(scenario)
    finally:
        fleet.close()
    _write_text(args.out, metrics.to_jsonl())
    _obs_write(args)
    return 0


def _serve_fleet_params(args) -> dict:
    """The ``build_fleet`` kwargs for ``serve``, echoed verbatim by /config.

    A client that wants to verify a served session offline rebuilds the
    fleet from exactly this dict (see ``repro.serve.app.build_fleet``), so
    the mapping must stay 1:1 with the builder's signature.
    """
    return {
        "cells": args.cells,
        "nodes_per_cell": args.nodes_per_cell,
        "apps": args.apps,
        "tagging": args.tagging,
        "resource_model": args.resource_model,
        "utilization": args.utilization,
        "env_seed": args.env_seed,
        "objective": args.objective,
        "spillover": args.spillover,
    }


def cmd_serve(args) -> int:
    """Boot the live control plane and serve until interrupted.

    Prints one JSON ``Serving`` line to stdout once the socket is bound
    (machine-readable: the smoke driver and tests parse the port from it),
    then blocks.  SIGTERM and Ctrl-C both exit cleanly (0) through a
    graceful drain: in-flight admitted batches finish and the write-ahead
    journal is flushed before the process exits.

    With ``--wal`` every admitted batch is journaled before it applies;
    after a crash, ``--resume`` rebuilds the session from the journal
    (fast-forwarded from ``--checkpoint`` when one exists) with a trace and
    digest byte-identical to an uncrashed run's.
    """
    import asyncio
    import json
    import signal

    from repro.serve import ControlPlane, WriteAheadLog, build_fleet, resume_control_plane

    _obs_enable(args)
    if args.checkpoint_every and not args.checkpoint:
        raise CliError("--checkpoint-every requires --checkpoint PATH")
    if args.resume:
        if not args.wal:
            raise CliError("--resume requires --wal PATH (the journal to replay)")
        # queue_limit=None → resume_control_plane falls back to the limit
        # journaled in the WAL header, so a resumed session keeps the
        # original admission back-pressure unless the flag is re-specified.
        plane = resume_control_plane(
            args.wal,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            queue_limit=args.queue_limit,
        )
    else:
        queue_limit = 1024 if args.queue_limit is None else args.queue_limit
        params = _serve_fleet_params(args)
        fleet = build_fleet(**params)
        wal = None
        if args.wal:
            wal = WriteAheadLog(
                args.wal,
                header={
                    "fleet": params,
                    "seed": args.seed,
                    "force_each_step": args.force_each_step,
                    "queue_limit": queue_limit,
                },
            )
        plane = ControlPlane(
            fleet,
            seed=args.seed,
            force_each_step=args.force_each_step,
            queue_limit=queue_limit,
            fleet_params=params,
            wal=wal,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        signals_installed = True
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            loop.add_signal_handler(signal.SIGINT, stop.set)
        except (NotImplementedError, RuntimeError):
            signals_installed = False  # non-unix: fall back to KeyboardInterrupt
        host, port = await plane.start(args.host, args.port)
        print(
            json.dumps(
                {
                    "event": "Serving",
                    "host": host,
                    "port": port,
                    "cells": len(plane.fleet.cells),
                    "rounds": plane.recorder.rounds,
                    "resumed": bool(args.resume),
                },
                sort_keys=True,
            ),
            flush=True,
        )
        serving = asyncio.create_task(plane.serve_forever())
        stopper = asyncio.create_task(stop.wait())
        try:
            if signals_installed:
                await asyncio.wait(
                    {serving, stopper}, return_when=asyncio.FIRST_COMPLETED
                )
            else:
                await serving
        finally:
            serving.cancel()
            stopper.cancel()
            await asyncio.gather(serving, stopper, return_exceptions=True)
            await plane.shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    _obs_write(args)
    return 0


def cmd_serve_load(args) -> int:
    """Drive a running control plane open-loop; print the latency report."""
    import asyncio
    import json

    from repro.serve import run_load

    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            rate=args.rate,
            duration=args.duration,
            connections=args.connections,
            batch=args.batch,
            seed=args.seed,
            nodes_per_cell=args.pool,
        )
    )
    _write_text(args.out, json.dumps(report, indent=2, sort_keys=True) + "\n")
    return 0


def cmd_fleet_sweep(args) -> int:
    """Sweep cells-lost levels × spillover policies; print the fleet table."""
    try:
        losses = [int(level) for level in args.lost.split(",") if level.strip()]
    except ValueError:
        raise CliError(f"--lost must be comma-separated integers, got {args.lost!r}") from None
    if not losses:
        raise CliError("--lost must name at least one cells-lost level")
    if any(level < 0 or level >= args.cells for level in losses):
        raise CliError(f"--lost levels must be within [0, {args.cells - 1}]")
    policies = [name.strip() for name in args.policies.split(",") if name.strip()]
    if not policies:
        raise CliError("--policies must name at least one spillover policy")

    environments = _fleet_environments(args)
    print(f"{'policy':<10}{'cells_lost':<12}{'availability':<14}{'revenue':<10}{'spillovers':<12}")
    for policy in policies:
        for lost in losses:
            args.spillover = policy
            fleet = _build_fleet(args, environments)
            for cell in fleet.cells[:lost]:
                cell.state.fail_nodes(list(cell.state.nodes))
            report = fleet.reconcile(workers=args.workers)
            print(
                f"{policy:<10}{lost:<12}{report.availability:<14.4f}"
                f"{report.revenue:<10.4f}{len(report.planned):<12}"
            )
    return 0


def _add_fleet_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("fleet", "fleet shape and engines")
    group.add_argument("--cells", type=int, default=4, help="number of cells (default: 4)")
    group.add_argument(
        "--nodes-per-cell", type=int, default=100, help="cluster size per cell (default: 100)"
    )
    group.add_argument("--apps", type=int, default=4, help="applications per cell (default: 4)")
    group.add_argument(
        "--tagging", default="service-p90", help="criticality tagging scheme (default: service-p90)"
    )
    group.add_argument(
        "--resource-model", default="cpm", help="resource assignment model (default: cpm)"
    )
    group.add_argument(
        "--utilization", type=float, default=0.7, help="pre-failure utilization (default: 0.7)"
    )
    group.add_argument(
        "--env-seed", type=int, default=2025,
        help="environment build seed; cell i uses env-seed+i (default: 2025)",
    )
    group.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    group.add_argument(
        "--spillover", default="packed", choices=("packed", "none"),
        help="cross-cell spillover policy (default: packed)",
    )
    group.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding cells (byte-identical to serial; default: 1)",
    )


# -- chaos --------------------------------------------------------------------


def cmd_chaos(args) -> int:
    """Chaos-test application templates (tag validation + storm recovery)."""
    from repro.apps import build_hotel_reservation, build_overleaf
    from repro.chaos import (
        run_cell_outage_check,
        run_storm_check,
        verify_tagging,
        verify_tagging_on_cluster,
    )

    builders = {"overleaf": build_overleaf, "hotel": build_hotel_reservation}
    if args.template == "all":
        names = sorted(builders)
    elif args.template in builders:
        names = [args.template]
    else:
        raise CliError(
            f"unknown template {args.template!r}; available: all, {', '.join(sorted(builders))}"
        )
    # A custom trace implies the storm check (it is what consumes traces).
    storm_trace = _read_trace(args.trace) if args.trace else None
    all_passed = True
    for name in names:
        template = builders[name]()
        report = verify_tagging(template, seed=args.seed)
        print(report.to_text())
        all_passed &= report.passed
        cluster_report = verify_tagging_on_cluster(
            template, node_count=args.nodes, objective=args.objective
        )
        print(cluster_report.to_text())
        all_passed &= cluster_report.passed
        if args.storm or storm_trace is not None:
            storm_report = run_storm_check(
                template,
                node_count=args.nodes,
                storm_fraction=args.storm_fraction,
                objective=args.objective,
                seed=args.seed,
                trace=storm_trace,
            )
            print(storm_report.to_text())
            all_passed &= storm_report.passed
        if args.cell_outage:
            outage_report = run_cell_outage_check(
                template,
                cells=args.fleet_cells,
                node_count=args.nodes,
                objective=args.objective,
            )
            print(outage_report.to_text())
            all_passed &= outage_report.passed
    return 0 if all_passed else EXIT_FAILED


# -- corpus / fuzz ------------------------------------------------------------


def cmd_corpus(args) -> int:
    """Sweep the scenario corpus under the invariant oracle; emit coverage."""
    from repro.corpus import SCENARIOS, run_corpus, scenario_names

    if args.list:
        print(f"{'name':<22}{'scale':<9}{'nodes':<7}description")
        for scenario in SCENARIOS:
            print(
                f"{scenario.name:<22}{scenario.scale:<9}"
                f"{scenario.node_count:<7}{scenario.description}"
            )
        return 0
    names = None
    if args.only:
        names = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in names if name not in scenario_names()]
        if unknown:
            raise CliError(
                f"unknown scenario {unknown[0]!r}; available: "
                f"{', '.join(scenario_names())}"
            )
        if not names:
            raise CliError("--only must name at least one scenario")
    if args.workers < 1:
        raise CliError("--workers must be >= 1")
    scales = None if args.scale == "all" else (args.scale,)
    report = run_corpus(
        names,
        workers=args.workers,
        seed=args.seed,
        env_seed=args.env_seed,
        scales=scales,
    )
    if not report.records:
        raise CliError(f"no scenarios match --scale {args.scale!r}")
    _write_text(args.out, report.to_jsonl())
    print(report.to_text(), file=sys.stderr)
    return 0 if report.ok else EXIT_FAILED


def cmd_fuzz(args) -> int:
    """Property-based chaos fuzz: random event programs under the oracle."""
    from repro.chaos.fuzz import FuzzConfig, run_fuzz

    if args.cases < 1:
        raise CliError("--cases must be >= 1")
    if args.infra:
        from repro.chaos.infra import InfraFuzzConfig, run_infra_fuzz

        config = InfraFuzzConfig(
            cases=args.cases,
            cells=args.cells,
            nodes_per_cell=args.nodes_per_cell,
            n_apps=args.apps,
            env_seed=args.env_seed,
            horizon=args.horizon,
            seed=args.seed,
        )
        report = run_infra_fuzz(config)
        print(report.to_text())
        if report.violation is not None:
            report.violation.write(args.reproducer)
            print(f"reproducer written to {args.reproducer}", file=sys.stderr)
            return EXIT_FAILED
        return 0
    config = FuzzConfig(
        cases=args.cases,
        node_count=args.nodes,
        n_apps=args.apps,
        horizon=args.horizon,
        objective=args.objective,
        seed=args.seed,
        env_seed=args.env_seed,
        lockstep=not args.no_lockstep,
    )
    report = run_fuzz(config)
    print(report.to_text())
    if report.violation is not None:
        report.violation.write(args.reproducer)
        print(f"reproducer written to {args.reproducer}", file=sys.stderr)
        return EXIT_FAILED
    return 0


# -- bench --------------------------------------------------------------------

#: Short name -> benchmark file glob, for ``repro bench <name>``.
BENCH_ALIASES = {
    "fig5": "bench_fig5_cloudlab.py",
    "fig6": "bench_fig6_timeline.py",
    "fig7": "bench_fig7_adaptlab.py",
    "fig8a": "bench_fig8a_replay.py",
    "fig8b": "bench_fig8b_scalability.py",
    "fig8c": "bench_fig8c_utilization.py",
    "fig9": "bench_fig9_resource_breakdown.py",
    "fig17": "bench_fig17_alibaba.py",
    "table1": "bench_table1_latency.py",
    "appendix-f2": "bench_appendix_f2.py",
    "ablations": "bench_ablations.py",
    "hotpath": "bench_hotpath.py",
    "engine": "bench_engine.py",
    "replay-throughput": "bench_replay.py",
}


def _profile_summary(profile_path: Path, limit: int = 20) -> str:
    """Top ``limit`` functions by cumulative time from a cProfile dump."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(str(profile_path), stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


def cmd_bench(args) -> int:
    """Run one of the figure benchmarks through pytest.

    Exit code 0 means the benchmark ran and its gates passed; a non-zero
    code is pytest's own failure code (a tripped regression gate exits 1).
    ``--json`` captures the run into a machine-readable record; ``--profile``
    runs it under cProfile and reports the top 20 functions by cumulative
    time.
    """
    import json
    import os
    import subprocess
    import tempfile
    import time

    bench_dir = Path(args.dir)
    if args.list:
        for name in sorted(BENCH_ALIASES):
            print(f"{name:<14}{BENCH_ALIASES[name]}")
        return 0
    if not args.name:
        raise CliError("name a benchmark (see `repro bench --list`)")
    filename = BENCH_ALIASES.get(args.name, args.name)
    target = bench_dir / filename
    if not target.exists():
        raise CliError(
            f"benchmark file not found: {target} "
            f"(run from the repository root or pass --dir; see `repro bench --list`)"
        )
    env = os.environ.copy()
    env["REPRO_BENCH_SCALE"] = args.scale

    profile_path: Path | None = None
    if args.profile:
        handle = tempfile.NamedTemporaryFile(suffix=".prof", delete=False)
        handle.close()
        profile_path = Path(handle.name)
        # A tiny driver rather than `python -m cProfile -m pytest`: the
        # cProfile CLI swallows pytest's SystemExit, which would report a
        # tripped gate as success.  pytest.main returns the exit code, so
        # the driver can both dump the stats and forward the code.
        driver = (
            "import sys, cProfile, pytest\n"
            "dump, argv = sys.argv[1], sys.argv[2:]\n"
            "profile = cProfile.Profile()\n"
            "profile.enable()\n"
            "code = pytest.main(argv)\n"
            "profile.disable()\n"
            "profile.dump_stats(dump)\n"
            "sys.exit(int(code))\n"
        )
        command = [
            sys.executable, "-c", driver, str(profile_path), str(target), "-q", "-s",
        ]
    else:
        command = [sys.executable, "-m", "pytest", str(target), "-q", "-s"]

    started = time.perf_counter()
    try:
        if args.json is not None:
            proc = subprocess.run(command, env=env, capture_output=True, text=True)
            returncode, stdout, stderr = proc.returncode, proc.stdout, proc.stderr
        else:
            returncode = subprocess.call(command, env=env)
            stdout = stderr = None
        duration = time.perf_counter() - started

        profile_text = None
        if profile_path is not None and profile_path.stat().st_size > 0:
            profile_text = _profile_summary(profile_path)
            if args.json is None:
                print(profile_text, end="")
    finally:
        if profile_path is not None:
            profile_path.unlink(missing_ok=True)

    if args.json is not None:
        record = {
            "record": "bench",
            "bench": args.name,
            "file": str(target),
            "scale": args.scale,
            "command": command,
            "returncode": returncode,
            "duration_seconds": round(duration, 3),
            "stdout": stdout,
            "stderr": stderr,
        }
        if profile_text is not None:
            record["profile_top"] = profile_text
        _write_text(args.json, json.dumps(record, sort_keys=True) + "\n")
        if args.json != "-" and stdout:
            # JSON went to a file: still echo the benchmark's own output.
            sys.stdout.write(stdout)
    return returncode


# -- trace gen / validate -----------------------------------------------------


def cmd_trace_gen(args) -> int:
    """Generate a seeded scenario trace as JSONL."""
    from repro.traces import generators
    from repro.traces.alibaba import paper_capacity_trace

    if args.kind == "poisson":
        trace = generators.poisson_failures(
            args.nodes, horizon=args.horizon, mtbf=args.mtbf, mttr=args.mttr, seed=args.seed
        )
    elif args.kind == "rack":
        trace = generators.correlated_failures(
            args.nodes,
            rack_size=args.rack_size,
            horizon=args.horizon,
            rack_mtbf=args.mtbf,
            mttr=args.mttr,
            seed=args.seed,
        )
    elif args.kind == "diurnal":
        trace = generators.diurnal_load(
            horizon=args.horizon,
            step_seconds=args.step_seconds,
            base=args.base,
            amplitude=args.amplitude,
            period=args.period,
            seed=args.seed,
        )
    elif args.kind == "storm":
        trace = generators.failure_storm(
            args.nodes,
            at=args.at,
            fraction=args.fraction,
            recovery_after=args.recovery_after,
            recovery_steps=args.recovery_steps,
            seed=args.seed,
        )
    elif args.kind == "alibaba":
        trace = paper_capacity_trace(
            steps=args.steps, seed=args.seed, step_seconds=args.step_seconds
        )
    else:  # pragma: no cover - argparse choices guard this
        raise CliError(f"unknown trace kind {args.kind!r}")
    _write_text(args.out, trace.dumps())
    return 0


def cmd_trace_validate(args) -> int:
    """Parse + validate a trace file and print a one-line summary."""
    trace = _read_trace(args.file)
    kinds = ", ".join(f"{kind}×{count}" for kind, count in sorted(trace.kinds().items()))
    generator = trace.metadata.get("generator", "unknown")
    print(
        f"ok: {len(trace)} events over {trace.duration:.1f}s "
        f"({kinds or 'no events'}; generator: {generator})"
    )
    return 0


# -- parser -------------------------------------------------------------------


class _VersionAction(argparse.Action):
    """``--version`` that imports the (heavy) package only when asked."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show program's version number and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro import __version__

        print(f"repro {__version__}")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Phoenix reproduction command line: failure sweeps, trace replay, "
            "chaos checks and figure benchmarks over the one PhoenixEngine."
        ),
    )
    parser.add_argument("--version", action=_VersionAction)
    sub = parser.add_subparsers(dest="command", metavar="command")

    sweep = sub.add_parser(
        "sweep",
        help="failure-level sweep across resilience schemes (Figure 7 shape)",
        description="Sweep failure levels across schemes and print the metric table.",
    )
    _add_environment_options(sweep)
    sweep.add_argument(
        "--levels", default="0.1,0.3,0.5,0.7,0.9", help="comma-separated capacity-loss fractions"
    )
    sweep.add_argument("--trials", type=int, default=1, help="trials per point (default: 1)")
    sweep.add_argument("--seed", type=int, default=0, help="failure-injection seed (default: 0)")
    sweep.add_argument(
        "--schemes", default=None, help="comma-separated scheme names (default: the paper's five)"
    )
    sweep.add_argument(
        "--requests-served", action="store_true", help="also evaluate requests served (slower)"
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding level×scheme cells (deterministic merge; default: 1)",
    )
    sweep.set_defaults(func=cmd_sweep)

    replay = sub.add_parser(
        "replay",
        help="replay a JSONL trace through the engine, emit per-step metrics",
        description=(
            "Replay a scenario trace (see `repro trace gen`) through a PhoenixEngine "
            "and write deterministic per-step metrics JSONL."
        ),
    )
    replay.add_argument(
        "--trace", required=True, action="append",
        help="trace file (JSONL; '-' for stdin); repeatable — traces replay in order",
    )
    _add_environment_options(replay)
    replay.add_argument("--seed", type=int, default=0, help="replay seed for capacity events")
    replay.add_argument(
        "--seeds", default=None,
        help="comma-separated replay seeds (each trace replays once per seed; overrides --seed)",
    )
    replay.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    replay.add_argument(
        "--implementation",
        default="fast",
        choices=("fast", "reference"),
        help="engine stages: fast or golden reference",
    )
    replay.add_argument(
        "--full-recompute", action="store_true",
        help="disable incremental reconciliation (EngineConfig(incremental=False) A/B baseline)",
    )
    replay.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharding trace×seed replays (deterministic merge; default: 1)",
    )
    replay.add_argument(
        "--requests-served", action="store_true", help="also evaluate requests served per step"
    )
    replay.add_argument(
        "--force-each-step", action="store_true",
        help="force a planning round on every step (always a full recompute)",
    )
    replay.add_argument(
        "--timing", action="store_true",
        help="include wall-clock planning seconds (breaks byte-reproducibility)",
    )
    replay.add_argument("--out", default=None, help="output file (default: stdout)")
    replay.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable the observability registry and write its final snapshot "
        "as JSONL (parent-process view when --workers > 1)",
    )
    replay.set_defaults(func=cmd_replay)

    fleet = sub.add_parser(
        "fleet",
        help="federated fleet scenarios: replay and cells-lost sweeps",
        description=(
            "Drive a FleetEngine — many per-cell PhoenixEngines with cross-cell "
            "spillover — through fleet scenarios. Parallel runs (--workers) are "
            "byte-identical to serial ones."
        ),
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", metavar="subcommand")
    fleet.set_defaults(func=lambda args: fleet.print_help() or 0)

    fleet_replay = fleet_sub.add_parser(
        "replay",
        help="replay a fleet scenario, emit per-step fleet metrics JSONL",
        description=(
            "Build a fleet of per-cell AdaptLab environments, generate a seeded "
            "fleet scenario (per-cell churn, correlated storms, or a full cell "
            "outage) and replay it. Output JSONL is byte-identical for every "
            "--workers value."
        ),
    )
    _add_fleet_options(fleet_replay)
    fleet_replay.add_argument("--seed", type=int, default=0, help="scenario seed (default: 0)")
    fleet_replay.add_argument(
        "--scenario", default="outage", choices=("poisson", "storm", "outage"),
        help="scenario shape (default: outage)",
    )
    fleet_replay.add_argument("--horizon", type=float, default=3600.0, help="trace length in seconds")
    fleet_replay.add_argument("--mtbf", type=float, default=1800.0, help="per-cell churn MTBF")
    fleet_replay.add_argument("--mttr", type=float, default=300.0, help="per-cell churn MTTR")
    fleet_replay.add_argument("--storm-at", type=float, default=600.0, help="storm: burst timestamp")
    fleet_replay.add_argument(
        "--storm-fraction", type=float, default=0.4, help="storm: fraction of each hit cell"
    )
    fleet_replay.add_argument(
        "--storm-cells", type=int, default=2, help="storm: cells hit simultaneously"
    )
    fleet_replay.add_argument(
        "--outage-cell", type=int, default=0, help="outage: index of the cell lost"
    )
    fleet_replay.add_argument("--outage-at", type=float, default=600.0, help="outage: timestamp")
    fleet_replay.add_argument(
        "--outage-recovery-after", type=float, default=1800.0,
        help="outage: seconds until the cell returns",
    )
    fleet_replay.add_argument("--out", default=None, help="output file (default: stdout)")
    fleet_replay.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable the observability registry and write its final snapshot as JSONL",
    )
    fleet_replay.add_argument(
        "--profile", action="store_true",
        help="run under cProfile; print top-20 cumulative functions and the "
        "replay's per-phase timings to stderr",
    )
    fleet_replay.set_defaults(func=cmd_fleet_replay)

    fleet_sweep = fleet_sub.add_parser(
        "sweep",
        help="sweep cells-lost levels across spillover policies",
        description=(
            "For each (policy, cells lost) pair: build a fresh fleet, fail that "
            "many whole cells, reconcile once and print fleet availability, "
            "revenue and planned spillovers."
        ),
    )
    _add_fleet_options(fleet_sweep)
    fleet_sweep.add_argument(
        "--lost", default="0,1,2", help="comma-separated cells-lost levels (default: 0,1,2)"
    )
    fleet_sweep.add_argument(
        "--policies", default="packed,none",
        help="comma-separated spillover policies to compare (default: packed,none)",
    )
    fleet_sweep.set_defaults(func=cmd_fleet_sweep)

    serve = sub.add_parser(
        "serve",
        help="serve a live fleet control plane (HTTP + WebSocket, stdlib only)",
        description=(
            "Build a fleet and serve it: POST /mutations admits trace-event "
            "records through a deterministic batcher (one reconcile round per "
            "batch, canonical order, 429 back-pressure), GET endpoints expose "
            "summaries/metrics/config/trace/digest, and /ws streams the typed "
            "event bus as JSON. '/' is a live dashboard. Prints one JSON "
            "'Serving' line with the bound port, then blocks until Ctrl-C."
        ),
    )
    _add_fleet_options(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642, help="bind port; 0 = ephemeral (default: 8642)")
    serve.add_argument("--seed", type=int, default=0, help="capacity-event seed (default: 0)")
    serve.add_argument(
        "--queue-limit", type=int, default=None,
        help="max pending mutations before 429 back-pressure (default: 1024; "
        "on --resume, defaults to the limit recorded in the journal header)",
    )
    serve.add_argument(
        "--force-each-step", action="store_true",
        help="force a planning round in every cell on every admitted batch",
    )
    serve.add_argument(
        "--wal", default=None, metavar="PATH",
        help="write-ahead journal: fsync every admitted batch before it "
        "applies (enables crash recovery via --resume)",
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="durable fleet checkpoint file (written every --checkpoint-every "
        "rounds; bounds --resume replay time)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint cadence in rounds (0 = never; requires --checkpoint)",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="rebuild the session from --wal (and --checkpoint if present) "
        "instead of starting fresh; the recovered trace and digest match an "
        "uncrashed run",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable the observability registry and write its final snapshot "
        "as JSONL at shutdown",
    )
    serve.set_defaults(func=cmd_serve)

    serve_load = sub.add_parser(
        "serve-load",
        help="open-loop load generator against a running 'repro serve'",
        description=(
            "Submit seeded node-churn mutations at a fixed open-loop rate and "
            "report admission-latency percentiles (p50/p90/p99/p999), 429 "
            "counts, and the server's round-latency view, as JSON."
        ),
    )
    serve_load.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    serve_load.add_argument("--port", type=int, required=True, help="server port")
    serve_load.add_argument("--rate", type=float, default=1000.0, help="mutations/sec offered (default: 1000)")
    serve_load.add_argument("--duration", type=float, default=5.0, help="seconds of load (default: 5)")
    serve_load.add_argument(
        "--connections", type=int, default=8, help="concurrent keep-alive connections (default: 8)"
    )
    serve_load.add_argument(
        "--batch", type=int, default=1,
        help="max already-due mutations coalesced per POST (default: 1)",
    )
    serve_load.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    serve_load.add_argument(
        "--pool", type=int, default=16, help="nodes sampled per cell for churn (default: 16)"
    )
    serve_load.add_argument("--out", default=None, help="report file (default: stdout)")
    serve_load.set_defaults(func=cmd_serve_load)

    chaos = sub.add_parser(
        "chaos",
        help="chaos-test application templates (tags + engine + storms)",
        description=(
            "Run the chaos suite for the bundled templates: template-level tag "
            "validation, engine-driven cluster degradation, and optionally a "
            "failure-storm recovery check. Exits 1 if any check fails."
        ),
    )
    chaos.add_argument(
        "--template", default="all", help="overleaf, hotel, or all (default: all)"
    )
    chaos.add_argument("--nodes", type=int, default=12, help="cluster size (default: 12)")
    chaos.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    chaos.add_argument("--seed", type=int, default=0, help="scenario seed (default: 0)")
    chaos.add_argument("--storm", action="store_true", help="also run the failure-storm check")
    chaos.add_argument(
        "--storm-fraction", type=float, default=0.5, help="fraction of nodes the storm fails"
    )
    chaos.add_argument(
        "--cell-outage", action="store_true",
        help="also run the fleet cell-outage check (spillover recovery)",
    )
    chaos.add_argument(
        "--fleet-cells", type=int, default=4, help="cell-outage check: fleet size (default: 4)"
    )
    chaos.add_argument(
        "--trace", default=None, metavar="FILE",
        help="replay this JSONL trace through the storm check instead of a "
        "generated storm ('-' for stdin)",
    )
    chaos.set_defaults(func=cmd_chaos)

    corpus = sub.add_parser(
        "corpus",
        help="sweep the scenario corpus under the invariant oracle",
        description=(
            "Run the multi-day scenario corpus across schemes and engine "
            "configurations with the invariant oracle checked after every "
            "reconcile round, and emit a deterministic coverage report "
            "(JSONL). Same seeds and --workers produce byte-identical "
            "reports. Exits 1 if any invariant was violated."
        ),
    )
    corpus.add_argument("--list", action="store_true", help="list corpus scenarios and exit")
    corpus.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated scenario names to run (default: all in --scale)",
    )
    corpus.add_argument(
        "--scale", default="all", choices=("small", "medium", "all"),
        help="scenario scale to sweep (default: all)",
    )
    corpus.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to shard jobs across (default: 1)",
    )
    corpus.add_argument("--seed", type=int, default=0, help="scenario seed (default: 0)")
    corpus.add_argument(
        "--env-seed", type=int, default=2025, help="environment seed (default: 2025)"
    )
    corpus.add_argument("--out", default=None, help="coverage report file (default: stdout)")
    corpus.set_defaults(func=cmd_corpus)

    fuzz = sub.add_parser(
        "fuzz",
        help="property-based chaos fuzz with trace shrinking",
        description=(
            "Compose random seeded event programs (churn, rack storms, "
            "diurnal load, capacity dips, refail interleavings), drive the "
            "engine through them under the invariant oracle, and on a "
            "violation shrink the failing trace to a minimal JSONL "
            "reproducer. Exits 1 if a violation was found."
        ),
    )
    fuzz.add_argument("--cases", type=int, default=20, help="event programs to try (default: 20)")
    fuzz.add_argument("--nodes", type=int, default=24, help="cluster size (default: 24)")
    fuzz.add_argument("--apps", type=int, default=2, help="applications (default: 2)")
    fuzz.add_argument(
        "--horizon", type=float, default=1800.0, help="program length in seconds (default: 1800)"
    )
    fuzz.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    fuzz.add_argument("--seed", type=int, default=0, help="fuzzer seed (default: 0)")
    fuzz.add_argument(
        "--env-seed", type=int, default=2025, help="environment seed (default: 2025)"
    )
    fuzz.add_argument(
        "--no-lockstep", action="store_true",
        help="skip the incremental-vs-full lockstep twin (faster, weaker oracle)",
    )
    fuzz.add_argument(
        "--infra", action="store_true",
        help="fuzz the infrastructure instead of the workload: random worker "
        "kill/hang/corrupt-frame fault plans against the shard supervisor, "
        "asserting recovery is byte-identical to a fault-free run "
        "(uses --cases/--cells/--nodes-per-cell/--apps/--horizon/--seed)",
    )
    fuzz.add_argument(
        "--cells", type=int, default=3,
        help="fleet cells per infra case (--infra only; default: 3)",
    )
    fuzz.add_argument(
        "--nodes-per-cell", type=int, default=12,
        help="cluster size per cell (--infra only; default: 12)",
    )
    fuzz.add_argument(
        "--reproducer", default="fuzz-reproducer.jsonl", metavar="PATH",
        help="where to write the shrunk reproducer on violation "
        "(default: fuzz-reproducer.jsonl)",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    bench = sub.add_parser(
        "bench",
        help="run a figure benchmark through pytest",
        description=(
            "Run one of the paper-figure benchmarks (pytest wrapper). "
            "Exit codes: 0 = ran and all gates passed; 1 = a benchmark or "
            "regression gate failed (pytest failure code is forwarded); "
            "2 = usage error."
        ),
    )
    bench.add_argument("name", nargs="?", help="benchmark name (see --list) or a file name")
    bench.add_argument("--list", action="store_true", help="list available benchmarks")
    bench.add_argument(
        "--scale", default="small", choices=("small", "paper"), help="REPRO_BENCH_SCALE value"
    )
    bench.add_argument(
        "--dir", default="benchmarks", help="benchmarks directory (default: ./benchmarks)"
    )
    bench.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="write a machine-readable run record as JSON (default target: stdout)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and report the top 20 functions by cumulative time",
    )
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="generate or validate scenario traces",
        description="Scenario trace tooling: seeded generators and schema validation.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", metavar="subcommand")
    trace.set_defaults(func=lambda args: trace.print_help() or 0)

    gen = trace_sub.add_parser(
        "gen",
        help="generate a seeded scenario trace (JSONL)",
        description=(
            "Generate a deterministic scenario trace. Same arguments + same seed "
            "produce a byte-identical file."
        ),
    )
    gen.add_argument(
        "--kind",
        required=True,
        choices=("poisson", "rack", "diurnal", "storm", "alibaba"),
        help="scenario shape",
    )
    gen.add_argument("--nodes", type=int, default=100, help="cluster size (default: 100)")
    gen.add_argument("--seed", type=int, default=0, help="generator seed (default: 0)")
    gen.add_argument("--horizon", type=float, default=3600.0, help="trace length in seconds")
    gen.add_argument("--mtbf", type=float, default=1800.0, help="poisson/rack: mean time between failures")
    gen.add_argument("--mttr", type=float, default=300.0, help="poisson/rack: mean time to repair")
    gen.add_argument("--rack-size", type=int, default=8, help="rack: nodes per rack")
    gen.add_argument("--base", type=float, default=1.0, help="diurnal: base load multiplier")
    gen.add_argument("--amplitude", type=float, default=0.5, help="diurnal: sine amplitude")
    gen.add_argument("--period", type=float, default=86400.0, help="diurnal: sine period seconds")
    gen.add_argument("--at", type=float, default=300.0, help="storm: burst start time")
    gen.add_argument("--fraction", type=float, default=0.5, help="storm: fraction of nodes hit")
    gen.add_argument(
        "--recovery-after", type=float, default=600.0, help="storm: seconds until recovery starts"
    )
    gen.add_argument("--recovery-steps", type=int, default=4, help="storm: staged recovery groups")
    gen.add_argument("--steps", type=int, default=20, help="alibaba: number of capacity steps")
    gen.add_argument(
        "--step-seconds", type=float, default=30.0, help="alibaba/diurnal: seconds per step"
    )
    gen.add_argument("--out", default=None, help="output file (default: stdout)")
    gen.set_defaults(func=cmd_trace_gen)

    validate = trace_sub.add_parser(
        "validate",
        help="parse + validate a trace file",
        description="Validate a JSONL trace against the schema and summarize it.",
    )
    validate.add_argument("file", help="trace file (JSONL; '-' for stdin)")
    validate.set_defaults(func=cmd_trace_validate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entrypoint: parse, dispatch, and map failures to exit codes.

    Expected failures — bad arguments, missing or malformed input files —
    print a single ``error: ...`` line on stderr and return :data:`EXIT_USAGE`
    (argparse's own usage errors exit with the same code).  Checks that run
    and fail (chaos, bench) return :data:`EXIT_FAILED`.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (TraceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
