"""Argument parsing and subcommand implementations for ``python -m repro``.

Every subcommand is a thin call into the library — the CLI owns argument
parsing, file I/O and exit codes, nothing else.  Expected failures (bad
arguments, missing or malformed trace files) surface as a one-line
``error: ...`` on stderr with a non-zero exit code, never a traceback; see
:func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.traces.schema import TraceError

#: Exit code for usage/input errors (argparse uses 2 for bad flags too).
EXIT_USAGE = 2
#: Exit code for a check that ran and failed (chaos verdicts, bench gates).
EXIT_FAILED = 1


class CliError(Exception):
    """An expected CLI failure, reported as a one-line error message."""


# -- helpers ------------------------------------------------------------------


def _write_text(out: str | None, text: str) -> None:
    """Write ``text`` to the ``--out`` target (``None``/``-`` = stdout)."""
    if out is None or out == "-":
        sys.stdout.write(text)
    else:
        Path(out).write_text(text, encoding="utf-8")


def _read_trace(path: str):
    from repro.traces.schema import Trace

    if path == "-":
        return Trace.load(sys.stdin)
    target = Path(path)
    if not target.exists():
        raise CliError(f"trace file not found: {target}")
    return Trace.read(target)


def _build_environment(args):
    from repro.adaptlab import build_environment

    return build_environment(
        node_count=args.nodes,
        n_apps=args.apps,
        tagging_scheme=args.tagging,
        resource_model=args.resource_model,
        target_utilization=args.utilization,
        seed=args.env_seed,
    )


def _add_environment_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("environment", "AdaptLab cluster to build")
    group.add_argument("--nodes", type=int, default=300, help="cluster size (default: 300)")
    group.add_argument("--apps", type=int, default=8, help="number of Alibaba-like apps (default: 8)")
    group.add_argument(
        "--tagging", default="service-p90", help="criticality tagging scheme (default: service-p90)"
    )
    group.add_argument(
        "--resource-model", default="cpm", help="resource assignment model (default: cpm)"
    )
    group.add_argument(
        "--utilization", type=float, default=0.7, help="pre-failure utilization (default: 0.7)"
    )
    group.add_argument(
        "--env-seed", type=int, default=2025, help="environment build seed (default: 2025)"
    )


def _select_schemes(names: str | None):
    from repro.adaptlab import default_scheme_suite

    suite = {scheme.name: scheme for scheme in default_scheme_suite()}
    if not names:
        return list(suite.values())
    chosen = []
    for name in names.split(","):
        name = name.strip()
        if name not in suite:
            raise CliError(
                f"unknown scheme {name!r}; available: {', '.join(sorted(suite))}"
            )
        chosen.append(suite[name])
    return chosen


# -- sweep --------------------------------------------------------------------


def cmd_sweep(args) -> int:
    """Failure-level sweep across resilience schemes (Figure 7 shape)."""
    from repro.adaptlab import run_failure_sweep

    try:
        levels = [float(level) for level in args.levels.split(",") if level.strip()]
    except ValueError:
        raise CliError(f"--levels must be comma-separated numbers, got {args.levels!r}") from None
    if not levels:
        raise CliError("--levels must name at least one failure level")
    env = _build_environment(args)
    schemes = _select_schemes(args.schemes)
    result = run_failure_sweep(
        env,
        schemes,
        failure_levels=levels,
        trials=args.trials,
        seed=args.seed,
        include_requests_served=args.requests_served,
    )
    metrics = ["availability", "revenue", "fairness_total", "utilization"]
    if args.requests_served:
        metrics.append("requests_served")
    header = f"{'scheme':<18}{'level':<8}" + "".join(m.ljust(16) for m in metrics)
    print(header)
    for point in sorted(result.points, key=lambda p: (p.failure_level, p.scheme)):
        row = f"{point.scheme:<18}{point.failure_level:<8.2f}"
        for metric in metrics:
            value = getattr(point, metric)
            row += (f"{value:<16.4f}" if value is not None else "-".ljust(16))
        print(row)
    return 0


# -- replay -------------------------------------------------------------------


def cmd_replay(args) -> int:
    """Replay a JSONL trace through the engine; emit per-step metrics JSONL."""
    import repro.api as api
    from repro.traces.replayer import TraceReplayer

    trace = _read_trace(args.trace)
    env = _build_environment(args)
    known = {node.name for node in env.state.nodes.values()}
    unknown = sorted(trace.node_names() - known)
    if unknown:
        raise CliError(
            f"trace names {len(unknown)} node(s) outside the {args.nodes}-node cluster "
            f"(first: {unknown[0]}); regenerate with matching --nodes"
        )
    engine = api.engine(args.objective, implementation=args.implementation)
    replayer = TraceReplayer(
        engine,
        traced=env.traced if args.requests_served else None,
        seed=args.seed,
        force_each_step=args.force_each_step,
    )
    metrics = replayer.run(env.fresh_state(), trace)
    _write_text(args.out, metrics.to_jsonl(include_timing=args.timing))
    return 0


# -- chaos --------------------------------------------------------------------


def cmd_chaos(args) -> int:
    """Chaos-test application templates (tag validation + storm recovery)."""
    from repro.apps import build_hotel_reservation, build_overleaf
    from repro.chaos import run_storm_check, verify_tagging, verify_tagging_on_cluster

    builders = {"overleaf": build_overleaf, "hotel": build_hotel_reservation}
    if args.template == "all":
        names = sorted(builders)
    elif args.template in builders:
        names = [args.template]
    else:
        raise CliError(
            f"unknown template {args.template!r}; available: all, {', '.join(sorted(builders))}"
        )
    all_passed = True
    for name in names:
        template = builders[name]()
        report = verify_tagging(template, seed=args.seed)
        print(report.to_text())
        all_passed &= report.passed
        cluster_report = verify_tagging_on_cluster(
            template, node_count=args.nodes, objective=args.objective
        )
        print(cluster_report.to_text())
        all_passed &= cluster_report.passed
        if args.storm:
            storm_report = run_storm_check(
                template,
                node_count=args.nodes,
                storm_fraction=args.storm_fraction,
                objective=args.objective,
                seed=args.seed,
            )
            print(storm_report.to_text())
            all_passed &= storm_report.passed
    return 0 if all_passed else EXIT_FAILED


# -- bench --------------------------------------------------------------------

#: Short name -> benchmark file glob, for ``repro bench <name>``.
BENCH_ALIASES = {
    "fig5": "bench_fig5_cloudlab.py",
    "fig6": "bench_fig6_timeline.py",
    "fig7": "bench_fig7_adaptlab.py",
    "fig8a": "bench_fig8a_replay.py",
    "fig8b": "bench_fig8b_scalability.py",
    "fig8c": "bench_fig8c_utilization.py",
    "fig9": "bench_fig9_resource_breakdown.py",
    "fig17": "bench_fig17_alibaba.py",
    "table1": "bench_table1_latency.py",
    "appendix-f2": "bench_appendix_f2.py",
    "ablations": "bench_ablations.py",
    "hotpath": "bench_hotpath.py",
    "engine": "bench_engine.py",
}


def cmd_bench(args) -> int:
    """Run one of the figure benchmarks through pytest."""
    import os
    import subprocess

    bench_dir = Path(args.dir)
    if args.list:
        for name in sorted(BENCH_ALIASES):
            print(f"{name:<14}{BENCH_ALIASES[name]}")
        return 0
    if not args.name:
        raise CliError("name a benchmark (see `repro bench --list`)")
    filename = BENCH_ALIASES.get(args.name, args.name)
    target = bench_dir / filename
    if not target.exists():
        raise CliError(
            f"benchmark file not found: {target} "
            f"(run from the repository root or pass --dir; see `repro bench --list`)"
        )
    env = os.environ.copy()
    env["REPRO_BENCH_SCALE"] = args.scale
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(target), "-q", "-s"], env=env
    )


# -- trace gen / validate -----------------------------------------------------


def cmd_trace_gen(args) -> int:
    """Generate a seeded scenario trace as JSONL."""
    from repro.traces import generators
    from repro.traces.alibaba import paper_capacity_trace

    if args.kind == "poisson":
        trace = generators.poisson_failures(
            args.nodes, horizon=args.horizon, mtbf=args.mtbf, mttr=args.mttr, seed=args.seed
        )
    elif args.kind == "rack":
        trace = generators.correlated_failures(
            args.nodes,
            rack_size=args.rack_size,
            horizon=args.horizon,
            rack_mtbf=args.mtbf,
            mttr=args.mttr,
            seed=args.seed,
        )
    elif args.kind == "diurnal":
        trace = generators.diurnal_load(
            horizon=args.horizon,
            step_seconds=args.step_seconds,
            base=args.base,
            amplitude=args.amplitude,
            period=args.period,
            seed=args.seed,
        )
    elif args.kind == "storm":
        trace = generators.failure_storm(
            args.nodes,
            at=args.at,
            fraction=args.fraction,
            recovery_after=args.recovery_after,
            recovery_steps=args.recovery_steps,
            seed=args.seed,
        )
    elif args.kind == "alibaba":
        trace = paper_capacity_trace(
            steps=args.steps, seed=args.seed, step_seconds=args.step_seconds
        )
    else:  # pragma: no cover - argparse choices guard this
        raise CliError(f"unknown trace kind {args.kind!r}")
    _write_text(args.out, trace.dumps())
    return 0


def cmd_trace_validate(args) -> int:
    """Parse + validate a trace file and print a one-line summary."""
    trace = _read_trace(args.file)
    kinds = ", ".join(f"{kind}×{count}" for kind, count in sorted(trace.kinds().items()))
    generator = trace.metadata.get("generator", "unknown")
    print(
        f"ok: {len(trace)} events over {trace.duration:.1f}s "
        f"({kinds or 'no events'}; generator: {generator})"
    )
    return 0


# -- parser -------------------------------------------------------------------


class _VersionAction(argparse.Action):
    """``--version`` that imports the (heavy) package only when asked."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "show program's version number and exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro import __version__

        print(f"repro {__version__}")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Phoenix reproduction command line: failure sweeps, trace replay, "
            "chaos checks and figure benchmarks over the one PhoenixEngine."
        ),
    )
    parser.add_argument("--version", action=_VersionAction)
    sub = parser.add_subparsers(dest="command", metavar="command")

    sweep = sub.add_parser(
        "sweep",
        help="failure-level sweep across resilience schemes (Figure 7 shape)",
        description="Sweep failure levels across schemes and print the metric table.",
    )
    _add_environment_options(sweep)
    sweep.add_argument(
        "--levels", default="0.1,0.3,0.5,0.7,0.9", help="comma-separated capacity-loss fractions"
    )
    sweep.add_argument("--trials", type=int, default=1, help="trials per point (default: 1)")
    sweep.add_argument("--seed", type=int, default=0, help="failure-injection seed (default: 0)")
    sweep.add_argument(
        "--schemes", default=None, help="comma-separated scheme names (default: the paper's five)"
    )
    sweep.add_argument(
        "--requests-served", action="store_true", help="also evaluate requests served (slower)"
    )
    sweep.set_defaults(func=cmd_sweep)

    replay = sub.add_parser(
        "replay",
        help="replay a JSONL trace through the engine, emit per-step metrics",
        description=(
            "Replay a scenario trace (see `repro trace gen`) through a PhoenixEngine "
            "and write deterministic per-step metrics JSONL."
        ),
    )
    replay.add_argument("--trace", required=True, help="trace file (JSONL; '-' for stdin)")
    _add_environment_options(replay)
    replay.add_argument("--seed", type=int, default=0, help="replay seed for capacity events")
    replay.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    replay.add_argument(
        "--implementation",
        default="fast",
        choices=("fast", "reference"),
        help="engine stages: fast or golden reference",
    )
    replay.add_argument(
        "--requests-served", action="store_true", help="also evaluate requests served per step"
    )
    replay.add_argument(
        "--force-each-step", action="store_true", help="force a planning round on every step"
    )
    replay.add_argument(
        "--timing", action="store_true",
        help="include wall-clock planning seconds (breaks byte-reproducibility)",
    )
    replay.add_argument("--out", default=None, help="output file (default: stdout)")
    replay.set_defaults(func=cmd_replay)

    chaos = sub.add_parser(
        "chaos",
        help="chaos-test application templates (tags + engine + storms)",
        description=(
            "Run the chaos suite for the bundled templates: template-level tag "
            "validation, engine-driven cluster degradation, and optionally a "
            "failure-storm recovery check. Exits 1 if any check fails."
        ),
    )
    chaos.add_argument(
        "--template", default="all", help="overleaf, hotel, or all (default: all)"
    )
    chaos.add_argument("--nodes", type=int, default=12, help="cluster size (default: 12)")
    chaos.add_argument("--objective", default="revenue", help="engine objective (default: revenue)")
    chaos.add_argument("--seed", type=int, default=0, help="scenario seed (default: 0)")
    chaos.add_argument("--storm", action="store_true", help="also run the failure-storm check")
    chaos.add_argument(
        "--storm-fraction", type=float, default=0.5, help="fraction of nodes the storm fails"
    )
    chaos.set_defaults(func=cmd_chaos)

    bench = sub.add_parser(
        "bench",
        help="run a figure benchmark through pytest",
        description="Run one of the paper-figure benchmarks (pytest wrapper).",
    )
    bench.add_argument("name", nargs="?", help="benchmark name (see --list) or a file name")
    bench.add_argument("--list", action="store_true", help="list available benchmarks")
    bench.add_argument(
        "--scale", default="small", choices=("small", "paper"), help="REPRO_BENCH_SCALE value"
    )
    bench.add_argument(
        "--dir", default="benchmarks", help="benchmarks directory (default: ./benchmarks)"
    )
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="generate or validate scenario traces",
        description="Scenario trace tooling: seeded generators and schema validation.",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", metavar="subcommand")
    trace.set_defaults(func=lambda args: trace.print_help() or 0)

    gen = trace_sub.add_parser(
        "gen",
        help="generate a seeded scenario trace (JSONL)",
        description=(
            "Generate a deterministic scenario trace. Same arguments + same seed "
            "produce a byte-identical file."
        ),
    )
    gen.add_argument(
        "--kind",
        required=True,
        choices=("poisson", "rack", "diurnal", "storm", "alibaba"),
        help="scenario shape",
    )
    gen.add_argument("--nodes", type=int, default=100, help="cluster size (default: 100)")
    gen.add_argument("--seed", type=int, default=0, help="generator seed (default: 0)")
    gen.add_argument("--horizon", type=float, default=3600.0, help="trace length in seconds")
    gen.add_argument("--mtbf", type=float, default=1800.0, help="poisson/rack: mean time between failures")
    gen.add_argument("--mttr", type=float, default=300.0, help="poisson/rack: mean time to repair")
    gen.add_argument("--rack-size", type=int, default=8, help="rack: nodes per rack")
    gen.add_argument("--base", type=float, default=1.0, help="diurnal: base load multiplier")
    gen.add_argument("--amplitude", type=float, default=0.5, help="diurnal: sine amplitude")
    gen.add_argument("--period", type=float, default=86400.0, help="diurnal: sine period seconds")
    gen.add_argument("--at", type=float, default=300.0, help="storm: burst start time")
    gen.add_argument("--fraction", type=float, default=0.5, help="storm: fraction of nodes hit")
    gen.add_argument(
        "--recovery-after", type=float, default=600.0, help="storm: seconds until recovery starts"
    )
    gen.add_argument("--recovery-steps", type=int, default=4, help="storm: staged recovery groups")
    gen.add_argument("--steps", type=int, default=20, help="alibaba: number of capacity steps")
    gen.add_argument(
        "--step-seconds", type=float, default=30.0, help="alibaba/diurnal: seconds per step"
    )
    gen.add_argument("--out", default=None, help="output file (default: stdout)")
    gen.set_defaults(func=cmd_trace_gen)

    validate = trace_sub.add_parser(
        "validate",
        help="parse + validate a trace file",
        description="Validate a JSONL trace against the schema and summarize it.",
    )
    validate.add_argument("file", help="trace file (JSONL; '-' for stdin)")
    validate.set_defaults(func=cmd_trace_validate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entrypoint: parse, dispatch, and map failures to exit codes.

    Expected failures — bad arguments, missing or malformed input files —
    print a single ``error: ...`` line on stderr and return :data:`EXIT_USAGE`
    (argparse's own usage errors exit with the same code).  Checks that run
    and fail (chaos, bench) return :data:`EXIT_FAILED`.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (TraceError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130
