"""Fleet scenarios: per-cell traces plus correlated cross-cell events.

A *fleet scenario* is a mapping of cell name to
:class:`~repro.traces.schema.Trace` — the input shape of
:class:`repro.fleet.replay.FleetReplayer` (and of ``python -m repro fleet
replay``).  :func:`fleet_scenario` composes the classic per-cell shapes into
fleet-level ones:

* independent Poisson churn per cell (every cell lives its own life),
* a **correlated storm** hitting several cells at the same timestamp — the
  region-outage shape single-cluster traces cannot express (the replayer
  folds same-time events across cells into one fleet round),
* a full **cell outage**: one cell loses every node at once, with optional
  staged-free recovery later — the scenario the spillover policy exists
  for.

Determinism matches the rest of the trace subsystem: same arguments + same
seed ⇒ byte-identical per-cell JSONL (each per-cell trace dumps canonically
on its own).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.traces.generators import (
    default_node_names,
    failure_storm,
    poisson_failures,
)
from repro.traces.schema import (
    NodeFailure,
    NodeRecovery,
    Trace,
    merge_traces,
)


def default_fleet_cells(cells: int) -> list[str]:
    """``cell-0`` … ``cell-N-1`` — the fleet layer's default cell naming."""
    if cells <= 0:
        raise ValueError("cells must be positive")
    return [f"cell-{i}" for i in range(cells)]


def fleet_scenario(
    cells: int | Sequence[str] = 4,
    nodes_per_cell: int | Mapping[str, Sequence[str]] = 100,
    *,
    horizon: float = 3600.0,
    mtbf: float | None = 1800.0,
    mttr: float = 300.0,
    storm_at: float | None = None,
    storm_fraction: float = 0.4,
    storm_cells: int = 2,
    outage_cell: str | int | None = None,
    outage_at: float = 600.0,
    outage_recovery_after: float | None = 1800.0,
    seed: int = 0,
) -> dict[str, Trace]:
    """Build a per-cell scenario mapping for a fleet replay.

    Parameters
    ----------
    cells:
        Cell count (named ``cell-0`` …) or explicit cell names.
    nodes_per_cell:
        Node count per cell (names ``node-0`` … per cell, matching every
        builder in the repo), or an explicit mapping of cell name to its
        node names.
    mtbf / mttr:
        Per-cell independent Poisson churn; ``mtbf=None`` disables the
        background churn entirely (outage/storm-only scenarios).
    storm_at:
        When set, a correlated storm hits ``storm_cells`` cells (chosen by
        the seeded permutation) at this timestamp: each hit cell loses
        ``storm_fraction`` of its nodes in one burst and recovers in staged
        groups, all cells on the same clock — one fleet round sees them all.
    outage_cell:
        When set (name or index), that cell loses **every** node at
        ``outage_at``; with ``outage_recovery_after`` the nodes return,
        together, that many seconds later (``None`` = never).
    seed:
        Master seed; per-cell generator seeds are derived deterministically.

    Returns a ``{cell name: Trace}`` mapping; cells without events map to an
    empty trace so the replayer still reports their metrics each step.
    """
    if isinstance(cells, int):
        cell_names = default_fleet_cells(cells)
    else:
        cell_names = list(cells)
        if len(set(cell_names)) != len(cell_names):
            raise ValueError("cell names must be unique")
        if not cell_names:
            raise ValueError("cells must name at least one cell")
    if isinstance(nodes_per_cell, int):
        node_names = {cell: default_node_names(nodes_per_cell) for cell in cell_names}
    else:
        node_names = {cell: list(nodes_per_cell[cell]) for cell in cell_names}
    if isinstance(outage_cell, int):
        outage_cell = cell_names[outage_cell]
    if outage_cell is not None and outage_cell not in node_names:
        raise ValueError(f"outage_cell {outage_cell!r} is not one of {cell_names}")
    if storm_at is not None and not 0 < storm_cells <= len(cell_names):
        raise ValueError("storm_cells must be within [1, number of cells]")

    rng = np.random.default_rng(seed)
    hit: tuple[str, ...] = ()
    if storm_at is not None:
        order = rng.permutation(len(cell_names))
        hit = tuple(cell_names[i] for i in order[:storm_cells])

    scenario: dict[str, Trace] = {}
    for index, cell in enumerate(cell_names):
        cell_seed = seed * 1_000_003 + index
        parts: list[Trace] = []
        if mtbf is not None:
            parts.append(
                poisson_failures(
                    node_names[cell],
                    horizon=horizon,
                    mtbf=mtbf,
                    mttr=mttr,
                    seed=cell_seed,
                )
            )
        if cell in hit:
            parts.append(
                failure_storm(
                    node_names[cell],
                    at=storm_at,
                    fraction=storm_fraction,
                    seed=cell_seed,
                )
            )
        if cell == outage_cell:
            events = [NodeFailure(time=float(outage_at), nodes=tuple(node_names[cell]))]
            if outage_recovery_after is not None:
                events.append(
                    NodeRecovery(
                        time=float(outage_at + outage_recovery_after),
                        nodes=tuple(node_names[cell]),
                    )
                )
            parts.append(
                Trace(
                    events=events,
                    metadata={"generator": "cell_outage", "at": outage_at},
                ).validate()
            )
        metadata = {
            "generator": "fleet_scenario",
            "cell": cell,
            "nodes": len(node_names[cell]),
            "horizon": horizon,
            "mtbf": mtbf,
            "mttr": mttr,
            "storm": cell in hit,
            "outage": cell == outage_cell,
            "seed": seed,
            "cell_seed": cell_seed,
        }
        if len(parts) == 1:
            trace = Trace(events=list(parts[0].events), metadata=metadata)
        else:
            trace = merge_traces(parts, metadata=metadata)
        scenario[cell] = trace.validate()
    return scenario
