"""Versioned JSONL trace schema for cluster scenarios.

A *trace* is the repository's portable scenario format: an ordered stream of
timestamped events — node failures and recoveries, load changes and capacity
targets — that a :class:`~repro.traces.replayer.TraceReplayer` drives through
the Phoenix engine.  Traces are what turn the paper's evaluation timelines
(CloudLab failure/recovery windows of Figure 6, the Alibaba capacity replay
of Figure 8a, AdaptLab failure levels of Figure 7) into data instead of
hand-wired benchmark glue.

On disk a trace is JSON Lines:

* the first line is a header record
  ``{"record": "trace", "version": 1, "metadata": {...}}``,
* every following line is one event record
  ``{"record": "event", "time": 120.0, "kind": "node_failure",
  "nodes": ["node-3"]}``.

Serialization is canonical (sorted keys, fixed separators), so a trace
generated twice from the same seed is **byte-identical** — the property the
round-trip tests and the ``python -m repro trace gen`` CLI rely on.

Event kinds (the ``kind`` field):

``node_failure``
    The named nodes go down (replicas linger until evicted, as in
    Kubernetes).
``node_recovery``
    The named nodes come back.
``capacity``
    Fail/recover whichever nodes are needed so that ``available_fraction``
    of the total capacity is healthy (the Figure-8a x-axis; selection is
    seeded by the replayer).
``load_change``
    The offered load multiplier changes, either for one application
    (``app``) or cluster-wide (``app: null``).

The schema is versioned: :data:`TRACE_VERSION` is written into every header
and :func:`Trace.loads` rejects versions it does not understand, so future
record changes stay detectable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Iterator, Mapping, TextIO

#: Current schema version, written into every trace header.
TRACE_VERSION = 1


class TraceError(ValueError):
    """Raised when a trace file or record is malformed."""


def _canonical(record: Mapping[str, object]) -> str:
    """One canonical JSON line (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _require(record: Mapping[str, object], key: str, kinds: type | tuple) -> object:
    if key not in record:
        raise TraceError(f"event record missing {key!r}: {record!r}")
    value = record[key]
    if not isinstance(value, kinds):
        raise TraceError(f"field {key!r} has wrong type in {record!r}")
    return value


def _node_tuple(record: Mapping[str, object]) -> tuple[str, ...]:
    nodes = _require(record, "nodes", list)
    if not nodes or not all(isinstance(n, str) for n in nodes):
        raise TraceError(f"'nodes' must be a non-empty list of names: {record!r}")
    return tuple(nodes)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class for every trace event: a timestamped scenario change."""

    #: Simulated seconds since the start of the trace.
    time: float

    kind: ClassVar[str] = "event"

    def validate(self) -> None:
        """Raise :class:`TraceError` when the event is malformed."""
        if not isinstance(self.time, (int, float)) or not math.isfinite(self.time):
            raise TraceError(f"event time must be a finite number, got {self.time!r}")
        if self.time < 0:
            raise TraceError(f"event time must be non-negative, got {self.time!r}")

    def to_record(self) -> dict[str, object]:
        """The JSONL record for this event."""
        return {"record": "event", "kind": self.kind, "time": float(self.time)}


@dataclass(frozen=True, slots=True)
class NodeFailure(TraceEvent):
    """The named nodes fail (Kubernetes semantics: replicas linger)."""

    nodes: tuple[str, ...] = ()

    kind: ClassVar[str] = "node_failure"

    def validate(self) -> None:
        TraceEvent.validate(self)
        if not self.nodes or not all(isinstance(n, str) for n in self.nodes):
            raise TraceError(f"node_failure needs at least one node name at t={self.time}")

    def to_record(self) -> dict[str, object]:
        return TraceEvent.to_record(self) | {"nodes": list(self.nodes)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "NodeFailure":
        return cls(time=float(_require(record, "time", (int, float))), nodes=_node_tuple(record))


@dataclass(frozen=True, slots=True)
class NodeRecovery(TraceEvent):
    """The named nodes recover."""

    nodes: tuple[str, ...] = ()

    kind: ClassVar[str] = "node_recovery"

    def validate(self) -> None:
        TraceEvent.validate(self)
        if not self.nodes or not all(isinstance(n, str) for n in self.nodes):
            raise TraceError(f"node_recovery needs at least one node name at t={self.time}")

    def to_record(self) -> dict[str, object]:
        return TraceEvent.to_record(self) | {"nodes": list(self.nodes)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "NodeRecovery":
        return cls(time=float(_require(record, "time", (int, float))), nodes=_node_tuple(record))


@dataclass(frozen=True, slots=True)
class CapacityTarget(TraceEvent):
    """Set the healthy capacity to ``available_fraction`` of the total.

    The replayer fails or recovers randomly chosen nodes (with its own seed)
    until the target is met — the semantics of
    :func:`repro.adaptlab.failures.set_capacity_fraction`, which backs the
    Figure-8a Alibaba replay.
    """

    available_fraction: float = 1.0

    kind: ClassVar[str] = "capacity"

    def validate(self) -> None:
        TraceEvent.validate(self)
        fraction = self.available_fraction
        if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
            raise TraceError(
                f"capacity available_fraction must be within [0, 1], got {fraction!r}"
            )

    def to_record(self) -> dict[str, object]:
        return TraceEvent.to_record(self) | {"available_fraction": float(self.available_fraction)}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "CapacityTarget":
        return cls(
            time=float(_require(record, "time", (int, float))),
            available_fraction=float(_require(record, "available_fraction", (int, float))),
        )


@dataclass(frozen=True, slots=True)
class LoadChange(TraceEvent):
    """The offered load multiplier changes (diurnal patterns, flash crowds).

    ``app`` is the application the multiplier applies to, or ``None`` for a
    cluster-wide change.  The replayer records the multiplier in its per-step
    metrics; load-aware frontends scale their generators by it.
    """

    multiplier: float = 1.0
    app: str | None = None

    kind: ClassVar[str] = "load_change"

    def validate(self) -> None:
        TraceEvent.validate(self)
        if not isinstance(self.multiplier, (int, float)) or not (
            math.isfinite(self.multiplier) and self.multiplier >= 0.0
        ):
            raise TraceError(f"load_change multiplier must be >= 0, got {self.multiplier!r}")
        if self.app is not None and not isinstance(self.app, str):
            raise TraceError(f"load_change app must be a name or null, got {self.app!r}")

    def to_record(self) -> dict[str, object]:
        return TraceEvent.to_record(self) | {"multiplier": float(self.multiplier), "app": self.app}

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "LoadChange":
        app = record.get("app")
        if app is not None and not isinstance(app, str):
            raise TraceError(f"load_change app must be a name or null: {record!r}")
        return cls(
            time=float(_require(record, "time", (int, float))),
            multiplier=float(_require(record, "multiplier", (int, float))),
            app=app,
        )


#: kind -> parser, the dispatch table for :func:`Trace.loads`.
EVENT_TYPES: dict[str, Callable[[Mapping[str, object]], TraceEvent]] = {
    NodeFailure.kind: NodeFailure.from_record,
    NodeRecovery.kind: NodeRecovery.from_record,
    CapacityTarget.kind: CapacityTarget.from_record,
    LoadChange.kind: LoadChange.from_record,
}


def parse_event(
    record: Mapping[str, object], *, default_time: float | None = None
) -> TraceEvent:
    """Parse one event record (schema v1) into a validated :class:`TraceEvent`.

    The single-record twin of :meth:`Trace.loads`, for frontends that
    receive events one at a time — the serve layer's mutation request
    bodies are exactly these records.  ``default_time`` supplies the
    ``time`` field when the record omits it (a server assigns admission
    times itself, so clients need not send one); without a default, a
    missing ``time`` is an error as in the file format.
    """
    if not isinstance(record, Mapping):
        raise TraceError(f"event record must be an object, got {type(record).__name__}")
    version = record.get("version", TRACE_VERSION)
    if version != TRACE_VERSION:
        raise TraceError(
            f"unsupported event version {version!r} (this build reads {TRACE_VERSION})"
        )
    kind = record.get("kind")
    parser = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if parser is None:
        raise TraceError(
            f"unknown event kind {kind!r}; known kinds: {sorted(EVENT_TYPES)}"
        )
    if "time" not in record and default_time is not None:
        record = dict(record) | {"time": float(default_time)}
    event = parser(record)
    event.validate()
    return event


@dataclass
class Trace:
    """An ordered scenario: header metadata plus timestamped events.

    Events are kept sorted by time (stable, so same-time events preserve
    their authored order).  ``metadata`` is free-form and round-trips through
    JSONL; generators record their name, parameters and seed there.
    """

    events: list[TraceEvent] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)
    version: int = TRACE_VERSION

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.time)

    # -- container protocol ----------------------------------------------------
    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration(self) -> float:
        """Time of the last event (0.0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0

    def kinds(self) -> dict[str, int]:
        """Event count per kind (validation summaries, CLI output)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def steps(self) -> list[tuple[float, list[TraceEvent]]]:
        """Events grouped by timestamp, in time order.

        A replayer applies all events of one step, then runs a single
        reconcile round — so simultaneous failures are seen as one change.
        """
        grouped: list[tuple[float, list[TraceEvent]]] = []
        for event in self.events:
            if grouped and grouped[-1][0] == event.time:
                grouped[-1][1].append(event)
            else:
                grouped.append((event.time, [event]))
        return grouped

    def node_names(self) -> set[str]:
        """Every node name referenced by failure/recovery events."""
        names: set[str] = set()
        for event in self.events:
            nodes = getattr(event, "nodes", ())
            names.update(nodes)
        return names

    # -- validation ------------------------------------------------------------
    def validate(self) -> "Trace":
        """Validate every event; returns ``self`` for chaining."""
        if self.version != TRACE_VERSION:
            raise TraceError(
                f"unsupported trace version {self.version!r} (this build reads {TRACE_VERSION})"
            )
        for event in self.events:
            event.validate()
        return self

    # -- serialization ---------------------------------------------------------
    def header(self) -> dict[str, object]:
        return {"record": "trace", "version": self.version, "metadata": self.metadata}

    def dumps(self) -> str:
        """Canonical JSONL text (same trace ⇒ byte-identical output)."""
        lines = [_canonical(self.header())]
        lines.extend(_canonical(event.to_record()) for event in self.events)
        return "\n".join(lines) + "\n"

    def dump(self, fp: TextIO) -> None:
        fp.write(self.dumps())

    def write(self, path) -> None:
        """Write the trace to ``path`` as JSONL."""
        with open(path, "w", encoding="utf-8") as fp:
            self.dump(fp)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse JSONL text into a validated :class:`Trace`."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceError("empty trace: expected a header line")
        try:
            records = [json.loads(line) for line in lines]
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace is not valid JSONL: {exc}") from None
        header = records[0]
        if not isinstance(header, dict) or header.get("record") != "trace":
            raise TraceError("first line must be the trace header record")
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"unsupported trace version {version!r} (this build reads {TRACE_VERSION})"
            )
        metadata = header.get("metadata", {})
        if not isinstance(metadata, dict):
            raise TraceError("trace header metadata must be an object")
        events: list[TraceEvent] = []
        for record in records[1:]:
            if not isinstance(record, dict) or record.get("record") != "event":
                raise TraceError(f"expected an event record, got: {record!r}")
            event_version = record.get("version", TRACE_VERSION)
            if event_version != TRACE_VERSION:
                raise TraceError(
                    f"unsupported event version {event_version!r} "
                    f"(this build reads {TRACE_VERSION})"
                )
            kind = record.get("kind")
            parser = EVENT_TYPES.get(kind)  # type: ignore[arg-type]
            if parser is None:
                raise TraceError(
                    f"unknown event kind {kind!r}; known kinds: {sorted(EVENT_TYPES)}"
                )
            events.append(parser(record))
        return cls(events=events, metadata=metadata, version=version).validate()

    @classmethod
    def load(cls, fp: TextIO) -> "Trace":
        return cls.loads(fp.read())

    @classmethod
    def read(cls, path) -> "Trace":
        """Read and validate a JSONL trace file."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.load(fp)


def merge_traces(traces: Iterable[Trace], metadata: dict[str, object] | None = None) -> Trace:
    """Merge several traces into one time-ordered scenario.

    Useful for composing e.g. a diurnal load pattern with a failure storm.
    Metadata defaults to a ``{"generator": "merge", "sources": [...]}``
    summary of the inputs.
    """
    traces = list(traces)
    events: list[TraceEvent] = []
    for trace in traces:
        events.extend(trace.events)
    if metadata is None:
        metadata = {
            "generator": "merge",
            "sources": [t.metadata.get("generator", "unknown") for t in traces],
        }
    return Trace(events=events, metadata=metadata)
