"""Alibaba-style trace adapter.

The paper's Figure 8a replays an Alibaba trace on a 10,000-node cluster
while the available capacity varies over a ten-minute window.  This module
is the bridge between that experiment and the generic trace schema:

* :func:`paper_profile_fractions` — the capacity profile of Figure 8a
  (deep trough, staged recovery, jitter), the single source of truth also
  used by the legacy :class:`repro.adaptlab.replay.CapacityTrace`.
* :func:`paper_capacity_trace` — the same profile as a schema
  :class:`~repro.traces.schema.Trace` of ``capacity`` events.
* :func:`from_capacity_points` / :func:`to_capacity_points` — lossless
  conversion between legacy capacity-trace points and schema traces, which
  is how ``benchmarks/bench_fig8a_replay.py`` runs unchanged through the
  new trace path.
* :func:`alibaba_scenario` — the full Figure-8a-style scenario (capacity
  profile plus a diurnal load overlay derived from the same seed).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.traces.generators import capacity_schedule, diurnal_load
from repro.traces.schema import CapacityTarget, Trace, merge_traces


def paper_profile_fractions(steps: int = 20, seed: int = 3) -> list[float]:
    """The Figure-8a capacity profile: trough, staged recovery, jitter.

    Returns ``steps`` available-capacity fractions.  This is the exact
    computation the pre-trace ``CapacityTrace.paper_profile`` performed; it
    lives here so the legacy class and the schema trace share one source.
    """
    rng = np.random.default_rng(seed)
    base = np.concatenate(
        [
            np.full(steps // 4, 1.0),
            np.linspace(1.0, 0.35, steps // 4),
            np.full(steps // 4, 0.35),
            np.linspace(0.35, 1.0, steps - 3 * (steps // 4)),
        ]
    )
    jitter = rng.uniform(-0.03, 0.03, size=base.shape)
    return [float(f) for f in np.clip(base + jitter, 0.2, 1.0)]


def paper_capacity_trace(
    steps: int = 20, seed: int = 3, step_seconds: float = 30.0
) -> Trace:
    """The Figure-8a capacity profile as a schema trace."""
    return capacity_schedule(
        paper_profile_fractions(steps=steps, seed=seed),
        step_seconds=step_seconds,
        metadata={
            "generator": "alibaba.paper_capacity_trace",
            "steps": steps,
            "seed": seed,
            "step_seconds": step_seconds,
        },
    )


def from_capacity_points(
    points: Iterable, metadata: dict[str, object] | None = None
) -> Trace:
    """Convert legacy capacity points into a schema trace, losslessly.

    Accepts anything iterable over objects with ``time`` and
    ``available_fraction`` attributes (e.g.
    :class:`repro.adaptlab.replay.CapacityTracePoint`) or ``(time,
    fraction)`` pairs.  Fractions are passed through exactly (no rounding),
    so a converted trace replays byte-identically to the legacy path.
    """
    events = []
    for point in points:
        if hasattr(point, "available_fraction"):
            time, fraction = point.time, point.available_fraction
        else:
            time, fraction = point
        events.append(CapacityTarget(time=float(time), available_fraction=float(fraction)))
    if metadata is None:
        metadata = {"generator": "alibaba.from_capacity_points"}
    return Trace(events=events, metadata=metadata).validate()


def to_capacity_points(trace: Trace) -> list[tuple[float, float]]:
    """Extract the ``capacity`` events of a trace as (time, fraction) pairs."""
    return [
        (event.time, event.available_fraction)
        for event in trace
        if isinstance(event, CapacityTarget)
    ]


def alibaba_scenario(
    steps: int = 20,
    seed: int = 3,
    step_seconds: float = 30.0,
    load_amplitude: float = 0.3,
    apps: Sequence[str] = (),
) -> Trace:
    """Capacity profile plus a diurnal load overlay, as one merged trace.

    The capacity events reproduce Figure 8a; the load events model the
    request-rate variation of the underlying Alibaba trace (one overlay per
    application in ``apps``, or a cluster-wide one when empty).
    """
    horizon = (steps - 1) * step_seconds
    parts = [paper_capacity_trace(steps=steps, seed=seed, step_seconds=step_seconds)]
    period = max(horizon, step_seconds)
    targets: Sequence[str | None] = list(apps) if apps else [None]
    for index, app in enumerate(targets):
        parts.append(
            diurnal_load(
                horizon=horizon,
                step_seconds=step_seconds,
                base=1.0,
                amplitude=load_amplitude,
                period=period,
                jitter=0.02,
                app=app,
                seed=seed + 101 * (index + 1),
            )
        )
    return merge_traces(
        parts,
        metadata={
            "generator": "alibaba.alibaba_scenario",
            "steps": steps,
            "seed": seed,
            "step_seconds": step_seconds,
            "load_amplitude": load_amplitude,
            "apps": list(apps),
        },
    )
