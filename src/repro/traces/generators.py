"""Deterministic seeded scenario generators.

Every generator returns a validated :class:`~repro.traces.schema.Trace`
whose metadata records the generator name, its parameters and the seed —
running a generator twice with the same arguments produces a byte-identical
JSONL file (``Trace.dumps``), which is what makes generated scenarios
shareable artifacts rather than throwaway benchmark glue.

Available generators:

* :func:`poisson_failures` — independent node failures (memoryless MTBF)
  with exponential repair times, the classic availability model.
* :func:`correlated_failures` — whole racks/zones fail together (power or
  cooling events; the paper's sub-datacenter failure model, §6).
* :func:`diurnal_load` — a day/night load sine with jitter, the load shape
  of production traces.
* :func:`failure_storm` — one deep failure burst followed by staged
  recovery, the Figure-6 CloudLab timeline shape.
* :func:`capacity_schedule` — explicit available-capacity targets over time
  (the Figure-8a trace-replay shape; see also :mod:`repro.traces.alibaba`).
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

import numpy as np

from repro.traces.schema import (
    CapacityTarget,
    LoadChange,
    NodeFailure,
    NodeRecovery,
    Trace,
    TraceEvent,
)


def default_node_names(node_count: int) -> list[str]:
    """``node-0`` … ``node-N-1`` — the naming every builder in the repo uses."""
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    return [f"node-{i}" for i in range(node_count)]


def _round_time(t: float) -> float:
    # Microsecond resolution keeps JSONL lines short and diff-friendly
    # without ever colliding distinct events in practice.
    return round(float(t), 6)


def poisson_failures(
    node_names: Sequence[str] | int,
    horizon: float = 3600.0,
    mtbf: float = 1800.0,
    mttr: float = 300.0,
    seed: int = 0,
) -> Trace:
    """Independent Poisson node failures with exponential repair.

    Each healthy node fails with rate ``1/mtbf`` (so the cluster-wide
    failure rate is ``healthy/mtbf``) and recovers after an exponential
    repair time with mean ``mttr``.  Sampling is event-driven and fully
    determined by ``seed``.
    """
    if isinstance(node_names, int):
        node_names = default_node_names(node_names)
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if mtbf <= 0 or mttr <= 0:
        raise ValueError("mtbf and mttr must be positive")
    rng = np.random.default_rng(seed)
    healthy: list[str] = list(node_names)
    repairs: list[tuple[float, str]] = []  # min-heap of (recovery time, node)
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        next_fail = t + rng.exponential(mtbf / len(healthy)) if healthy else math.inf
        next_repair = repairs[0][0] if repairs else math.inf
        if min(next_fail, next_repair) > horizon:
            break
        if next_repair <= next_fail:
            t, node = heapq.heappop(repairs)
            healthy.append(node)
            events.append(NodeRecovery(time=_round_time(t), nodes=(node,)))
        else:
            t = next_fail
            node = healthy.pop(int(rng.integers(len(healthy))))
            heapq.heappush(repairs, (t + float(rng.exponential(mttr)), node))
            events.append(NodeFailure(time=_round_time(t), nodes=(node,)))
    return Trace(
        events=events,
        metadata={
            "generator": "poisson_failures",
            "nodes": len(node_names),
            "horizon": horizon,
            "mtbf": mtbf,
            "mttr": mttr,
            "seed": seed,
        },
    ).validate()


def correlated_failures(
    node_names: Sequence[str] | int,
    rack_size: int = 8,
    horizon: float = 3600.0,
    rack_mtbf: float = 7200.0,
    mttr: float = 600.0,
    seed: int = 0,
) -> Trace:
    """Correlated rack/zone failures: whole racks go down together.

    Nodes are grouped into racks of ``rack_size`` (by position in
    ``node_names``, matching physical adjacency in the builders).  Racks
    fail as a Poisson process with per-rack MTBF ``rack_mtbf`` and the whole
    rack recovers together after an exponential repair with mean ``mttr`` —
    the power/cooling sub-datacenter failure model behind the paper's
    capacity-loss sweeps.
    """
    if isinstance(node_names, int):
        node_names = default_node_names(node_names)
    if rack_size <= 0:
        raise ValueError("rack_size must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if rack_mtbf <= 0 or mttr <= 0:
        raise ValueError("rack_mtbf and mttr must be positive")
    racks = [
        tuple(node_names[i : i + rack_size]) for i in range(0, len(node_names), rack_size)
    ]
    rng = np.random.default_rng(seed)
    up = list(range(len(racks)))
    repairs: list[tuple[float, int]] = []
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        next_fail = t + rng.exponential(rack_mtbf / len(up)) if up else math.inf
        next_repair = repairs[0][0] if repairs else math.inf
        if min(next_fail, next_repair) > horizon:
            break
        if next_repair <= next_fail:
            t, rack = heapq.heappop(repairs)
            up.append(rack)
            events.append(NodeRecovery(time=_round_time(t), nodes=racks[rack]))
        else:
            t = next_fail
            rack = up.pop(int(rng.integers(len(up))))
            heapq.heappush(repairs, (t + float(rng.exponential(mttr)), rack))
            events.append(NodeFailure(time=_round_time(t), nodes=racks[rack]))
    return Trace(
        events=events,
        metadata={
            "generator": "correlated_failures",
            "nodes": len(node_names),
            "rack_size": rack_size,
            "horizon": horizon,
            "rack_mtbf": rack_mtbf,
            "mttr": mttr,
            "seed": seed,
        },
    ).validate()


def diurnal_load(
    horizon: float = 86400.0,
    step_seconds: float = 3600.0,
    base: float = 1.0,
    amplitude: float = 0.5,
    period: float = 86400.0,
    jitter: float = 0.05,
    app: str | None = None,
    seed: int = 0,
) -> Trace:
    """A day/night load sine: multiplier ``base + amplitude·sin(2πt/period)``.

    Emits one :class:`LoadChange` per ``step_seconds``, with uniform jitter
    of ``±jitter`` added to each sample and the result clamped to stay
    non-negative.  ``app=None`` means cluster-wide load.
    """
    if horizon <= 0 or step_seconds <= 0 or period <= 0:
        raise ValueError("horizon, step_seconds and period must be positive")
    if amplitude < 0 or jitter < 0:
        raise ValueError("amplitude and jitter must be non-negative")
    rng = np.random.default_rng(seed)
    events: list[TraceEvent] = []
    steps = int(horizon // step_seconds) + 1
    for index in range(steps):
        t = index * step_seconds
        if t > horizon:
            break
        multiplier = base + amplitude * math.sin(2.0 * math.pi * t / period)
        multiplier += float(rng.uniform(-jitter, jitter))
        events.append(
            LoadChange(time=_round_time(t), multiplier=round(max(0.0, multiplier), 6), app=app)
        )
    return Trace(
        events=events,
        metadata={
            "generator": "diurnal_load",
            "horizon": horizon,
            "step_seconds": step_seconds,
            "base": base,
            "amplitude": amplitude,
            "period": period,
            "jitter": jitter,
            "app": app,
            "seed": seed,
        },
    ).validate()


def failure_storm(
    node_names: Sequence[str] | int,
    at: float = 300.0,
    fraction: float = 0.5,
    burst_seconds: float = 10.0,
    burst_waves: int = 4,
    recovery_after: float = 600.0,
    recovery_steps: int = 4,
    recovery_step_seconds: float = 60.0,
    seed: int = 0,
) -> Trace:
    """One deep failure burst followed by staged recovery.

    At ``at`` a randomly chosen ``fraction`` of the nodes fails in
    ``burst_waves`` quick waves spread over ``burst_seconds`` (storms hit in
    surges, not instantaneously).  Starting ``recovery_after`` seconds after
    the *last* burst wave the failed nodes return in ``recovery_steps``
    staged groups, ``recovery_step_seconds`` apart — the Figure-6 timeline
    shape (fail ~60 % at t₁, staged return ten minutes later).  Anchoring
    recovery to the end of the burst guarantees every node's recovery event
    follows its failure event, whatever the parameters.
    """
    if isinstance(node_names, int):
        node_names = default_node_names(node_names)
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be within (0, 1]")
    if at < 0 or burst_seconds < 0 or recovery_after <= 0:
        raise ValueError("at/burst_seconds must be >= 0 and recovery_after > 0")
    if burst_waves <= 0 or recovery_steps <= 0:
        raise ValueError("burst_waves and recovery_steps must be positive")
    if recovery_step_seconds < 0:
        raise ValueError("recovery_step_seconds must be non-negative")
    rng = np.random.default_rng(seed)
    count = max(1, round(fraction * len(node_names)))
    victims = [node_names[i] for i in rng.permutation(len(node_names))[:count]]

    events: list[TraceEvent] = []
    waves = np.array_split(np.arange(count), min(burst_waves, count))
    for wave_index, wave in enumerate(waves):
        if len(wave) == 0:
            continue
        t = at + (burst_seconds * wave_index / max(1, len(waves) - 1) if len(waves) > 1 else 0.0)
        events.append(
            NodeFailure(time=_round_time(t), nodes=tuple(victims[i] for i in wave))
        )
    recovery_start = at + burst_seconds + recovery_after
    groups = np.array_split(np.arange(count), min(recovery_steps, count))
    for group_index, group in enumerate(groups):
        if len(group) == 0:
            continue
        t = recovery_start + group_index * recovery_step_seconds
        events.append(
            NodeRecovery(time=_round_time(t), nodes=tuple(victims[i] for i in group))
        )
    return Trace(
        events=events,
        metadata={
            "generator": "failure_storm",
            "nodes": len(node_names),
            "at": at,
            "fraction": fraction,
            "burst_seconds": burst_seconds,
            "burst_waves": burst_waves,
            "recovery_after": recovery_after,
            "recovery_steps": recovery_steps,
            "recovery_step_seconds": recovery_step_seconds,
            "seed": seed,
        },
    ).validate()


def capacity_schedule(
    fractions: Sequence[float],
    step_seconds: float = 30.0,
    metadata: dict[str, object] | None = None,
) -> Trace:
    """Explicit available-capacity targets, one per ``step_seconds``.

    The generic form behind the Figure-8a replay:
    ``capacity_schedule([1.0, 0.6, 0.35, ...])`` produces one
    :class:`CapacityTarget` per step.  See
    :func:`repro.traces.alibaba.paper_capacity_trace` for the paper's
    profile.
    """
    if step_seconds <= 0:
        raise ValueError("step_seconds must be positive")
    events: list[TraceEvent] = [
        CapacityTarget(time=_round_time(i * step_seconds), available_fraction=round(float(f), 6))
        for i, f in enumerate(fractions)
    ]
    if metadata is None:
        metadata = {"generator": "capacity_schedule", "step_seconds": step_seconds}
    return Trace(events=events, metadata=metadata).validate()
