"""Trace replay through the Phoenix engine.

:class:`TraceReplayer` is the consumer side of the trace subsystem: it takes
a scenario (:class:`~repro.traces.schema.Trace`), applies each event to a
:class:`~repro.cluster.state.ClusterState`, lets a driver react, and records
a per-step metric bundle (:class:`ReplayStep`).

Two driver shapes are accepted:

* a :class:`~repro.api.engine.PhoenixEngine` (or anything with
  ``reconcile``) — the replayer drives one ``engine.reconcile`` round per
  trace step, exactly like the production controller loop; applied trace
  events are mirrored onto the engine's event bus as
  :class:`~repro.api.events.TraceEventApplied` /
  :class:`~repro.api.events.ReplayStepCompleted` so observers see the
  scenario and the reaction in one stream;
* a :class:`~repro.adaptlab.baselines.ResilienceScheme` (anything with
  ``respond``) — AdaptLab semantics, used by the legacy
  :func:`repro.adaptlab.replay.replay_capacity_trace` shim so the Figure-8a
  benchmark runs unchanged through this path.

Metric output is deterministic: :meth:`ReplayMetrics.to_jsonl` excludes
wall-clock planning times unless asked, so replaying the same trace with
the same seed twice produces byte-identical JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.state import ClusterState
from repro.traces.schema import (
    CapacityTarget,
    LoadChange,
    NodeFailure,
    NodeRecovery,
    Trace,
    TraceError,
)

#: Schema version of the replay-metrics JSONL emitted by ``to_jsonl``.
REPLAY_METRICS_VERSION = 1


def apply_trace_event(state: ClusterState, event, *, seed: int = 0) -> None:
    """Apply one scenario event to ``state`` (shared by every replay path).

    Node failures/recoveries validate node names against the state;
    ``capacity`` events delegate to the seeded
    :func:`repro.adaptlab.failures.set_capacity_fraction`; ``load_change``
    events carry no state mutation (the caller records the multiplier).
    """
    if isinstance(event, NodeFailure):
        missing = [n for n in event.nodes if n not in state.nodes]
        if missing:
            raise TraceError(
                f"trace refers to unknown nodes {missing} at t={event.time} "
                f"(cluster has {len(state.nodes)} nodes)"
            )
        state.fail_nodes(list(event.nodes))
    elif isinstance(event, NodeRecovery):
        missing = [n for n in event.nodes if n not in state.nodes]
        if missing:
            raise TraceError(
                f"trace refers to unknown nodes {missing} at t={event.time} "
                f"(cluster has {len(state.nodes)} nodes)"
            )
        state.recover_nodes(list(event.nodes))
    elif isinstance(event, CapacityTarget):
        from repro.adaptlab.failures import set_capacity_fraction

        set_capacity_fraction(state, event.available_fraction, seed=seed)
    elif isinstance(event, LoadChange):
        pass  # recorded by the caller; state carries no load model
    else:
        raise TraceError(f"replayer cannot apply event kind {event.kind!r}")


@dataclass(frozen=True, slots=True)
class ReplayStep:
    """Metrics for one trace step (all events at one timestamp + reaction).

    ``available_fraction`` is the *measured* healthy-capacity fraction after
    the step's events; ``load_multiplier`` is the cluster-wide load level
    set by the most recent ``load_change`` event (1.0 before any).
    ``requests_served`` is ``None`` unless the replayer was given traced
    applications to evaluate against.
    """

    time: float
    events: tuple[str, ...]
    failed_nodes: int
    available_fraction: float
    load_multiplier: float
    availability: float
    revenue: float
    utilization: float
    requests_served: float | None
    triggered: bool
    actions: int
    planning_seconds: float

    def to_record(self, include_timing: bool = False) -> dict[str, object]:
        """The JSONL record for this step.

        Wall-clock fields are excluded by default so output is reproducible
        byte-for-byte across runs.
        """
        record: dict[str, object] = {
            "record": "step",
            "time": self.time,
            "events": list(self.events),
            "failed_nodes": self.failed_nodes,
            "available_fraction": round(self.available_fraction, 9),
            "load_multiplier": round(self.load_multiplier, 9),
            "availability": round(self.availability, 9),
            "revenue": round(self.revenue, 9),
            "utilization": round(self.utilization, 9),
            "requests_served": (
                round(self.requests_served, 9) if self.requests_served is not None else None
            ),
            "triggered": self.triggered,
            "actions": self.actions,
        }
        if include_timing:
            record["planning_seconds"] = self.planning_seconds
        return record


@dataclass
class ReplayMetrics:
    """The full per-step metric series of one replay run."""

    steps: list[ReplayStep] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def series(self, metric: str) -> list[tuple[float, float]]:
        """(time, value) pairs for one :class:`ReplayStep` field."""
        return [(s.time, getattr(s, metric)) for s in self.steps]

    def total(self, metric: str) -> float:
        """Sum of one metric over the replay (e.g. total requests served)."""
        return sum(getattr(s, metric) or 0.0 for s in self.steps)

    def min(self, metric: str) -> float:
        """Minimum of one metric over the replay (e.g. trough availability)."""
        return min(getattr(s, metric) for s in self.steps)

    def final(self) -> ReplayStep:
        if not self.steps:
            raise ValueError("empty replay: no steps recorded")
        return self.steps[-1]

    def to_jsonl(self, include_timing: bool = False) -> str:
        """Canonical JSONL: one header record plus one record per step."""
        import json

        header = {
            "record": "replay",
            "version": REPLAY_METRICS_VERSION,
            "metadata": self.metadata,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines.extend(
            json.dumps(s.to_record(include_timing), sort_keys=True, separators=(",", ":"))
            for s in self.steps
        )
        return "\n".join(lines) + "\n"


class TraceReplayer:
    """Replays a scenario trace against a cluster state through a driver.

    Parameters
    ----------
    driver:
        A :class:`~repro.api.engine.PhoenixEngine` (anything with
        ``reconcile``) for controller-loop semantics, or a resilience
        scheme (anything with ``respond``) for AdaptLab semantics.
    traced:
        Optional ``name -> TracedApplication`` mapping; when given, the
        requests-served fraction (Figure 8a's y-axis) is evaluated per step.
    seed:
        Seed for the randomized node selection of ``capacity`` events
        (passed to :func:`repro.adaptlab.failures.set_capacity_fraction`).
    force_each_step:
        Reconcile mode only: force a planning round on every step even when
        the failed set did not change (load-only steps).  Off by default —
        the engine's own change detection decides, as in production.
    """

    def __init__(
        self,
        driver,
        *,
        traced: Mapping | None = None,
        seed: int = 0,
        force_each_step: bool = False,
    ) -> None:
        if hasattr(driver, "cells") and callable(getattr(driver, "plan_spillover", None)):
            # A FleetEngine (or compatible): delegate to the fleet replayer.
            self._mode = "fleet"
        elif callable(getattr(driver, "reconcile", None)):
            self._mode = "reconcile"
        elif callable(getattr(driver, "respond", None)):
            self._mode = "respond"
        else:
            raise TypeError(
                f"driver must expose reconcile() (engine) or respond() (scheme), "
                f"got {type(driver).__name__}"
            )
        self.driver = driver
        self.traced = traced
        self.seed = seed
        self.force_each_step = force_each_step

    @property
    def events(self):
        """The driver's event bus, when it has one (engine or adapter)."""
        bus = getattr(self.driver, "events", None)
        if bus is None:
            engine = getattr(self.driver, "engine", None)
            bus = getattr(engine, "events", None)
        return bus

    # -- event application ----------------------------------------------------
    def _apply(self, state: ClusterState, event) -> None:
        apply_trace_event(state, event, seed=self.seed)

    # -- the run loop ----------------------------------------------------------
    def run(self, state: ClusterState, trace: Trace) -> ReplayMetrics:
        """Replay ``trace`` from ``state`` and return the per-step metrics.

        The input state is never mutated: the replayer works on a copy (the
        engine executes its actions against that copy through the standard
        ``StateBackend`` path).  The pre-replay state is the revenue
        reference, matching the AdaptLab convention.

        Fleet drivers: when the driver is a
        :class:`~repro.fleet.engine.FleetEngine`, ``trace`` is a mapping of
        cell name to :class:`Trace` (see :func:`repro.traces.fleet_scenario`)
        and ``state`` must be ``None`` — the fleet owns its cell states.
        Returns the fleet replayer's metrics instead.
        """
        if self._mode == "fleet":
            from repro.fleet.replay import FleetReplayer

            if state is not None:
                raise TypeError(
                    "fleet drivers own their cell states; call run(None, scenario) "
                    "with a {cell name: Trace} mapping"
                )
            return FleetReplayer(
                self.driver, seed=self.seed, force_each_step=self.force_each_step
            ).run(trace)
        from repro.adaptlab.metrics import evaluate_state

        trace.validate()
        reference = state
        current = state.copy()
        # Replay hooks go to whatever bus the driver exposes: the engine's
        # own in reconcile mode, or an adapter's underlying engine bus in
        # respond mode (bare schemes have none and skip emission).
        bus = self.events
        if self._mode == "reconcile" and callable(getattr(self.driver, "reset", None)):
            self.driver.reset()

        load: dict[str | None, float] = {}
        metrics = ReplayMetrics(
            metadata={
                "driver": getattr(self.driver, "name", type(self.driver).__name__),
                "mode": self._mode,
                "seed": self.seed,
                "trace": dict(trace.metadata),
            }
        )
        for time_point, events in trace.steps():
            for event in events:
                self._apply(current, event)
                if isinstance(event, LoadChange):
                    load[event.app] = event.multiplier
                # Truthiness, not identity: an EventBus with zero
                # subscribers is falsy, so the payload record is never
                # built when nobody is listening (the common replay case).
                if bus:
                    from repro.api.events import TraceEventApplied

                    bus.emit(
                        TraceEventApplied(
                            time=time_point, kind=event.kind, payload=event.to_record()
                        )
                    )

            if self._mode == "reconcile":
                report = self.driver.reconcile(current, force=self.force_each_step)
                triggered = report.triggered
                actions = report.actions_executed
                planning = report.planning_seconds
            else:
                current, planning = self.driver.respond(current)
                triggered = True
                actions = 0

            evaluated = evaluate_state(
                current, reference=reference, traced=self.traced, planning_seconds=planning
            )
            total = current.total_capacity(healthy_only=False).cpu
            step = ReplayStep(
                time=time_point,
                events=tuple(e.kind for e in events),
                failed_nodes=current.failed_count,
                available_fraction=(
                    current.total_capacity().cpu / total if total > 0 else 0.0
                ),
                load_multiplier=load.get(None, 1.0),
                availability=evaluated.critical_service_availability,
                revenue=evaluated.normalized_revenue,
                utilization=evaluated.utilization,
                requests_served=evaluated.requests_served_fraction,
                triggered=triggered,
                actions=actions,
                planning_seconds=planning,
            )
            metrics.steps.append(step)
            if bus:  # no-subscriber fast path: skip the payload record too
                from repro.api.events import ReplayStepCompleted

                bus.emit(ReplayStepCompleted(time=time_point, payload=step.to_record()))
        return metrics
