"""``repro.traces`` — the scenario/trace subsystem.

Scenarios-as-data: a versioned JSONL schema for cluster timelines (node
failures and recoveries, capacity targets, load changes), deterministic
seeded generators for the classic failure/load shapes, an Alibaba-style
adapter for the paper's Figure-8a replay, and a :class:`TraceReplayer` that
drives a :class:`~repro.api.engine.PhoenixEngine` (or an AdaptLab scheme)
through a scenario and records per-step metrics.

Typical round trip::

    from repro.traces import failure_storm, Trace, TraceReplayer
    import repro.api as api

    trace = failure_storm(node_names=100, fraction=0.5, seed=7)
    trace.write("storm.jsonl")                  # shareable artifact
    trace = Trace.read("storm.jsonl")           # lossless, validated

    metrics = TraceReplayer(api.engine("revenue"), seed=7).run(state, trace)
    print(metrics.min("availability"), metrics.final().availability)

Fleet scenarios: :func:`fleet_scenario` builds a ``{cell: Trace}`` mapping
(per-cell churn, correlated cross-cell storms, full cell outages) that a
:class:`repro.fleet.FleetReplayer` — or ``TraceReplayer`` given a
:class:`~repro.fleet.engine.FleetEngine` driver — replays fleet-wide.

The same machinery powers the command line: ``python -m repro trace gen``
writes traces, ``python -m repro replay`` runs them, and ``python -m repro
fleet sweep|replay`` runs the federated variants (see :mod:`repro.cli`).
"""

from repro.traces.alibaba import (
    alibaba_scenario,
    from_capacity_points,
    paper_capacity_trace,
    paper_profile_fractions,
    to_capacity_points,
)
from repro.traces.fleet import default_fleet_cells, fleet_scenario
from repro.traces.generators import (
    capacity_schedule,
    correlated_failures,
    default_node_names,
    diurnal_load,
    failure_storm,
    poisson_failures,
)
from repro.traces.replayer import (
    REPLAY_METRICS_VERSION,
    ReplayMetrics,
    ReplayStep,
    TraceReplayer,
    apply_trace_event,
)
from repro.traces.schema import (
    EVENT_TYPES,
    TRACE_VERSION,
    CapacityTarget,
    LoadChange,
    NodeFailure,
    NodeRecovery,
    Trace,
    TraceError,
    TraceEvent,
    merge_traces,
    parse_event,
)

__all__ = [
    "alibaba_scenario",
    "from_capacity_points",
    "paper_capacity_trace",
    "paper_profile_fractions",
    "to_capacity_points",
    "default_fleet_cells",
    "fleet_scenario",
    "capacity_schedule",
    "correlated_failures",
    "default_node_names",
    "diurnal_load",
    "failure_storm",
    "poisson_failures",
    "REPLAY_METRICS_VERSION",
    "ReplayMetrics",
    "ReplayStep",
    "TraceReplayer",
    "apply_trace_event",
    "EVENT_TYPES",
    "TRACE_VERSION",
    "CapacityTarget",
    "LoadChange",
    "NodeFailure",
    "NodeRecovery",
    "Trace",
    "TraceError",
    "TraceEvent",
    "merge_traces",
    "parse_event",
]
