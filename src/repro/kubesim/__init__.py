"""Kubernetes-like cluster simulator (the CloudLab substrate stand-in)."""

from repro.kubesim.apiserver import ApiError, ApiServer, Event
from repro.kubesim.cluster import (
    KubeCluster,
    KubeClusterConfig,
    PhoenixKubeBackend,
    criticality_to_priority,
)
from repro.kubesim.controller_manager import DeploymentController
from repro.kubesim.kubelet import Kubelet, NodeLifecycleController
from repro.kubesim.objects import (
    APP_LABEL,
    CRITICALITY_LABEL,
    MICROSERVICE_LABEL,
    PHOENIX_ENABLED_LABEL,
    Deployment,
    KubeNode,
    Namespace,
    NodeCondition,
    Pod,
    PodPhase,
    PodSpec,
)
from repro.kubesim.scheduler import DefaultScheduler, SchedulingDecision

__all__ = [
    "ApiError",
    "ApiServer",
    "Event",
    "KubeCluster",
    "KubeClusterConfig",
    "PhoenixKubeBackend",
    "criticality_to_priority",
    "DeploymentController",
    "Kubelet",
    "NodeLifecycleController",
    "APP_LABEL",
    "CRITICALITY_LABEL",
    "MICROSERVICE_LABEL",
    "PHOENIX_ENABLED_LABEL",
    "Deployment",
    "KubeNode",
    "Namespace",
    "NodeCondition",
    "Pod",
    "PodPhase",
    "PodSpec",
    "DefaultScheduler",
    "SchedulingDecision",
]
