"""KubeCluster facade: ties the API server, scheduler, kubelets and
controllers together behind a simulation clock, and adapts the cluster to
Phoenix's :class:`~repro.core.controller.ClusterBackend` protocol.

This is the stand-in for the paper's 200-CPU CloudLab Kubernetes cluster:
applications are deployed into namespaces (one namespace per application
instance, labelled ``phoenix=enabled``), node failures are injected by
stopping kubelets, and Phoenix drives recovery through the same primitives
the real agent uses — deleting pods, creating pods, and scaling deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.application import Application
from repro.cluster.node import Node
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.core.plan import Action, ActionKind
from repro.kubesim.apiserver import ApiServer
from repro.kubesim.controller_manager import DeploymentController
from repro.kubesim.kubelet import Kubelet, NodeLifecycleController
from repro.kubesim.objects import (
    APP_LABEL,
    MICROSERVICE_LABEL,
    PHOENIX_ENABLED_LABEL,
    Deployment,
    KubeNode,
    Namespace,
    Pod,
    PodPhase,
    PodSpec,
)
from repro.kubesim.scheduler import DefaultScheduler


def criticality_to_priority(level: int, max_level: int = 10) -> int:
    """Map a criticality level to a Kubernetes pod priority (higher = sooner)."""
    return max(0, (max_level - level + 1) * 100)


@dataclass
class KubeClusterConfig:
    """Tunables of the simulated cluster."""

    node_count: int = 25
    node_capacity: Resources = field(default_factory=lambda: Resources(cpu=8.0, memory=16.0))
    tick_seconds: float = 5.0
    heartbeat_grace: float = 40.0
    pod_eviction_timeout: float = 60.0
    pod_startup_seconds: float = 10.0
    pod_termination_seconds: float = 5.0
    enable_preemption: bool = True


class KubeCluster:
    """A self-contained Kubernetes-like cluster simulation."""

    def __init__(self, config: KubeClusterConfig | None = None) -> None:
        self.config = config or KubeClusterConfig()
        self.api = ApiServer()
        self.kubelets: dict[str, Kubelet] = {}
        for index in range(self.config.node_count):
            name = f"node-{index}"
            self.api.register_node(KubeNode(name=name, capacity=self.config.node_capacity))
            self.kubelets[name] = Kubelet(node_name=name)
        self.scheduler = DefaultScheduler(self.api, enable_preemption=self.config.enable_preemption)
        self.deployment_controller = DeploymentController(self.api)
        self.node_controller = NodeLifecycleController(
            self.api,
            heartbeat_grace=self.config.heartbeat_grace,
            pod_eviction_timeout=self.config.pod_eviction_timeout,
        )
        #: Applications registered with the cluster, keyed by namespace.
        self.applications: dict[str, Application] = {}

    # -- time ---------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.api.clock

    def step(self, seconds: float) -> None:
        """Advance simulated time, running all control loops every tick."""
        if seconds < 0:
            raise ValueError("cannot step backwards in time")
        remaining = seconds
        tick = self.config.tick_seconds
        while remaining > 1e-9:
            delta = min(tick, remaining)
            self.api.clock += delta
            for kubelet in self.kubelets.values():
                kubelet.tick(self.api)
            self.node_controller.tick()
            self.deployment_controller.reconcile()
            self.scheduler.schedule_pending()
            remaining -= delta

    # -- application deployment ----------------------------------------------------
    def deploy_application(
        self,
        app: Application,
        phoenix_enabled: bool = True,
        use_criticality_priority: bool = False,
    ) -> None:
        """Create a namespace and one deployment per microservice.

        ``use_criticality_priority`` maps criticality tags onto Kubernetes pod
        priorities (the "Priority" baseline).  It is off by default: vanilla
        Kubernetes knows nothing about criticality tags, and Phoenix performs
        its own planning, so neither needs pod priorities.
        """
        labels = {PHOENIX_ENABLED_LABEL: "enabled"} if phoenix_enabled else {}
        self.api.create_namespace(Namespace(name=app.name, labels=labels))
        self.applications[app.name] = app
        for ms in app:
            spec = PodSpec(
                app=app.name,
                microservice=ms.name,
                resources=ms.resources,
                criticality_label=str(ms.criticality),
                priority=(
                    criticality_to_priority(ms.criticality.level)
                    if use_criticality_priority
                    else 0
                ),
                startup_seconds=self.config.pod_startup_seconds,
                termination_seconds=self.config.pod_termination_seconds,
            )
            self.api.create_deployment(
                Deployment(name=ms.name, namespace=app.name, spec=spec, replicas=ms.replicas)
            )

    # -- failure injection -----------------------------------------------------------
    def fail_nodes(self, names: list[str]) -> None:
        """Stop the kubelet on each node (the paper's failure methodology)."""
        for name in names:
            self.kubelets[name].stop()
            self.api.record("KubeletStopped", name)

    def recover_nodes(self, names: list[str]) -> None:
        for name in names:
            self.kubelets[name].start()
            self.api.record("KubeletStarted", name)

    def ready_nodes(self) -> list[str]:
        return [n.name for n in self.api.list_nodes(ready_only=True)]

    # -- observation -------------------------------------------------------------------
    def serving_microservices(self, namespace: str) -> set[str]:
        """Microservices of an application whose replicas are all Running."""
        app = self.applications[namespace]
        serving = set()
        for ms in app:
            pods = self.api.list_pods(
                namespace=namespace,
                selector={MICROSERVICE_LABEL: ms.name},
                phases=[PodPhase.RUNNING],
            )
            ready = [p for p in pods if p.node_name and self.api.get_node(p.node_name).is_ready]
            if len(ready) >= ms.replicas:
                serving.add(ms.name)
        return serving

    def to_cluster_state(self) -> ClusterState:
        """Snapshot the cluster into the planner-facing :class:`ClusterState`."""
        state = ClusterState()
        for node in self.api.list_nodes():
            state.add_node(Node(node.name, node.capacity, failed=not node.is_ready))
        for app in self.applications.values():
            state.add_application(app)
        #: (namespace, microservice) -> next replica index to hand out
        counters: dict[tuple[str, str], int] = {}
        for pod in self.api.list_pods(phases=[PodPhase.STARTING, PodPhase.RUNNING]):
            namespace = pod.labels.get(APP_LABEL, pod.namespace)
            if namespace not in self.applications:
                continue
            ms_name = pod.labels[MICROSERVICE_LABEL]
            app = self.applications[namespace]
            if ms_name not in app:
                continue
            key = (namespace, ms_name)
            index = counters.get(key, 0)
            if index >= app.get(ms_name).replicas:
                continue
            counters[key] = index + 1
            replica = ReplicaId(namespace, ms_name, index)
            if pod.node_name is not None:
                node = state.node(pod.node_name)
                if node.is_healthy:
                    state.assign(replica, pod.node_name, enforce_capacity=False)
        return state

    def phoenix_backend(self) -> "PhoenixKubeBackend":
        """The Phoenix-facing backend for this cluster.

        ``repro.api.backend_for`` (and therefore ``engine.reconcile``) calls
        this, so a ``KubeCluster`` can be handed to the engine directly:
        ``repro.api.engine("revenue").reconcile(cluster)``.
        """
        return PhoenixKubeBackend(self)

    # -- pod-level helpers used by the Phoenix backend -----------------------------------
    def pods_of(self, namespace: str, microservice: str, active_only: bool = True) -> list[Pod]:
        pods = self.api.list_pods(namespace=namespace, selector={MICROSERVICE_LABEL: microservice})
        if active_only:
            pods = [p for p in pods if p.phase in (PodPhase.PENDING, PodPhase.STARTING, PodPhase.RUNNING)]
        return pods


class PhoenixKubeBackend:
    """Adapts :class:`KubeCluster` to Phoenix's ``ClusterBackend`` protocol.

    Phoenix actions are executed with the same primitives the real agent
    uses: graceful pod deletion, pod creation bound to a specific node
    (Phoenix acts as the placement authority, like a scheduler extender),
    and deployment scaling so the replica controller agrees with the target
    state instead of fighting it.
    """

    def __init__(self, cluster: KubeCluster) -> None:
        self.cluster = cluster

    # -- ClusterBackend ------------------------------------------------------------
    def observe(self) -> ClusterState:
        return self.cluster.to_cluster_state()

    def execute(self, actions: list[Action]) -> None:
        api = self.cluster.api
        target_replicas: dict[tuple[str, str], int] = {}
        for action in actions:
            namespace = action.replica.app
            microservice = action.replica.microservice
            key = (namespace, microservice)
            if action.kind is ActionKind.DELETE:
                self._delete_one(namespace, microservice, action.source_node)
                target_replicas[key] = target_replicas.get(
                    key, self._live_count(namespace, microservice)
                )
            elif action.kind is ActionKind.START:
                self._start_one(namespace, microservice, action.target_node)
                target_replicas[key] = self._live_count(namespace, microservice)
            elif action.kind is ActionKind.MIGRATE:
                self._delete_one(namespace, microservice, action.source_node)
                self._start_one(namespace, microservice, action.target_node)
                target_replicas[key] = self._live_count(namespace, microservice)
        # Align deployment replica counts with what Phoenix just enacted so
        # the deployment controller neither recreates deleted pods nor
        # deletes freshly started ones.
        for (namespace, microservice), count in target_replicas.items():
            try:
                api.scale_deployment(namespace, microservice, count)
            except KeyError:
                continue

    # -- primitives -----------------------------------------------------------------
    def _live_count(self, namespace: str, microservice: str) -> int:
        return len(self.cluster.pods_of(namespace, microservice))

    def _delete_one(self, namespace: str, microservice: str, source_node: str | None) -> None:
        pods = self.cluster.pods_of(namespace, microservice)
        chosen = None
        if source_node is not None:
            on_node = [p for p in pods if p.node_name == source_node]
            chosen = on_node[0] if on_node else None
        if chosen is None and pods:
            chosen = pods[0]
        if chosen is not None:
            self.cluster.api.delete_pod(chosen.namespace, chosen.name)

    def _start_one(self, namespace: str, microservice: str, target_node: str | None) -> None:
        app = self.cluster.applications[namespace]
        ms = app.get(microservice)
        deployment = self.cluster.api.get_deployment(namespace, microservice)
        pod = Pod.from_spec(namespace, deployment.spec, owner=deployment.name)
        self.cluster.api.create_pod(pod)
        if target_node is not None and self.cluster.api.get_node(target_node).is_ready:
            pod.node_name = target_node
            pod.phase = PodPhase.STARTING
            pod.phase_deadline = self.cluster.api.clock + deployment.spec.startup_seconds
            self.cluster.api.record("PodBound", f"{namespace}/{pod.name}", f"{target_node} (phoenix)")
        # If the target node is unavailable the pod stays Pending and the
        # default scheduler places it on the next tick.
        del ms  # resources are carried by the deployment spec
