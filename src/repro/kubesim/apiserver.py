"""In-memory Kubernetes-like API server.

Stores namespaces, nodes, deployments and pods, and offers the CRUD + label
selector queries the rest of the simulator (and the Phoenix agent adapter)
relies on.  A small event log makes the simulator's behaviour observable in
tests and the Figure 6 timeline experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.kubesim.objects import Deployment, KubeNode, Namespace, Pod, PodPhase


class ApiError(KeyError):
    """Raised for missing or conflicting API objects."""


@dataclass(frozen=True, slots=True)
class Event:
    """One line of the cluster event log."""

    time: float
    kind: str
    obj: str
    message: str = ""


def _matches(labels: Mapping[str, str], selector: Mapping[str, str] | None) -> bool:
    if not selector:
        return True
    return all(labels.get(key) == value for key, value in selector.items())


@dataclass
class ApiServer:
    """The cluster's source of truth."""

    namespaces: dict[str, Namespace] = field(default_factory=dict)
    nodes: dict[str, KubeNode] = field(default_factory=dict)
    deployments: dict[tuple[str, str], Deployment] = field(default_factory=dict)
    pods: dict[tuple[str, str], Pod] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)
    clock: float = 0.0

    # -- event log --------------------------------------------------------------
    def record(self, kind: str, obj: str, message: str = "") -> None:
        self.events.append(Event(self.clock, kind, obj, message))

    def events_of(self, kind: str) -> list[Event]:
        return [e for e in self.events if e.kind == kind]

    # -- namespaces ----------------------------------------------------------------
    def create_namespace(self, namespace: Namespace) -> Namespace:
        if namespace.name in self.namespaces:
            raise ApiError(f"namespace {namespace.name!r} already exists")
        self.namespaces[namespace.name] = namespace
        self.record("NamespaceCreated", namespace.name)
        return namespace

    def get_namespace(self, name: str) -> Namespace:
        try:
            return self.namespaces[name]
        except KeyError as exc:
            raise ApiError(f"namespace {name!r} not found") from exc

    # -- nodes ----------------------------------------------------------------------
    def register_node(self, node: KubeNode) -> KubeNode:
        if node.name in self.nodes:
            raise ApiError(f"node {node.name!r} already registered")
        node.last_heartbeat = self.clock
        self.nodes[node.name] = node
        self.record("NodeRegistered", node.name)
        return node

    def get_node(self, name: str) -> KubeNode:
        try:
            return self.nodes[name]
        except KeyError as exc:
            raise ApiError(f"node {name!r} not found") from exc

    def list_nodes(self, ready_only: bool = False) -> list[KubeNode]:
        nodes = list(self.nodes.values())
        if ready_only:
            nodes = [n for n in nodes if n.is_ready]
        return sorted(nodes, key=lambda n: n.name)

    # -- deployments -----------------------------------------------------------------
    def create_deployment(self, deployment: Deployment) -> Deployment:
        key = (deployment.namespace, deployment.name)
        if key in self.deployments:
            raise ApiError(f"deployment {key} already exists")
        self.get_namespace(deployment.namespace)
        self.deployments[key] = deployment
        self.record("DeploymentCreated", f"{deployment.namespace}/{deployment.name}")
        return deployment

    def get_deployment(self, namespace: str, name: str) -> Deployment:
        try:
            return self.deployments[(namespace, name)]
        except KeyError as exc:
            raise ApiError(f"deployment {namespace}/{name} not found") from exc

    def list_deployments(
        self,
        namespace: str | None = None,
        selector: Mapping[str, str] | None = None,
    ) -> list[Deployment]:
        items = [
            d
            for (ns, _), d in self.deployments.items()
            if (namespace is None or ns == namespace) and _matches(d.labels, selector)
        ]
        return sorted(items, key=lambda d: (d.namespace, d.name))

    def scale_deployment(self, namespace: str, name: str, replicas: int) -> Deployment:
        if replicas < 0:
            raise ValueError("replicas must be non-negative")
        deployment = self.get_deployment(namespace, name)
        if deployment.replicas != replicas:
            self.record(
                "DeploymentScaled",
                f"{namespace}/{name}",
                f"{deployment.replicas} -> {replicas}",
            )
        deployment.replicas = replicas
        return deployment

    # -- pods --------------------------------------------------------------------------
    def create_pod(self, pod: Pod) -> Pod:
        key = (pod.namespace, pod.name)
        if key in self.pods:
            raise ApiError(f"pod {key} already exists")
        self.pods[key] = pod
        self.record("PodCreated", f"{pod.namespace}/{pod.name}")
        return pod

    def get_pod(self, namespace: str, name: str) -> Pod:
        try:
            return self.pods[(namespace, name)]
        except KeyError as exc:
            raise ApiError(f"pod {namespace}/{name} not found") from exc

    def list_pods(
        self,
        namespace: str | None = None,
        selector: Mapping[str, str] | None = None,
        node_name: str | None = None,
        phases: Iterable[PodPhase] | None = None,
        predicate: Callable[[Pod], bool] | None = None,
    ) -> list[Pod]:
        phase_set = set(phases) if phases is not None else None
        items = []
        for (ns, _), pod in self.pods.items():
            if namespace is not None and ns != namespace:
                continue
            if not _matches(pod.labels, selector):
                continue
            if node_name is not None and pod.node_name != node_name:
                continue
            if phase_set is not None and pod.phase not in phase_set:
                continue
            if predicate is not None and not predicate(pod):
                continue
            items.append(pod)
        return sorted(items, key=lambda p: (p.namespace, p.name))

    def delete_pod(self, namespace: str, name: str, grace: bool = True) -> Pod:
        """Mark a pod Terminating (graceful) or remove it immediately."""
        pod = self.get_pod(namespace, name)
        if not grace or pod.phase in (PodPhase.PENDING, PodPhase.FAILED):
            pod.phase = PodPhase.DELETED
            self.pods.pop((namespace, name), None)
            self.record("PodDeleted", f"{namespace}/{name}", "immediate")
        elif pod.phase is not PodPhase.TERMINATING:
            pod.phase = PodPhase.TERMINATING
            pod.phase_deadline = self.clock + pod.spec.termination_seconds
            self.record("PodTerminating", f"{namespace}/{name}")
        return pod

    def remove_pod_object(self, namespace: str, name: str) -> None:
        """Garbage-collect a pod object entirely (post-termination)."""
        self.pods.pop((namespace, name), None)
        self.record("PodRemoved", f"{namespace}/{name}")

    # -- capacity helpers ------------------------------------------------------------------
    def node_allocated(self, node_name: str):
        """Resources requested by active pods on one node."""
        from repro.cluster.resources import Resources, total

        return total(
            pod.spec.resources
            for pod in self.pods.values()
            if pod.node_name == node_name and pod.is_active
        ) if self.pods else Resources.zero()

    def node_free(self, node_name: str):
        """Free capacity on a node, floored at zero.

        A node can be transiently overcommitted (e.g. a replacement pod bound
        while its predecessor is still terminating); reporting zero free
        capacity in that window keeps the schedulers from stacking more onto
        the node without turning the transient into an error.
        """
        from repro.cluster.resources import Resources

        node = self.get_node(node_name)
        allocated = self.node_allocated(node_name)
        return Resources(
            cpu=max(0.0, node.capacity.cpu - allocated.cpu),
            memory=max(0.0, node.capacity.memory - allocated.memory),
        )
