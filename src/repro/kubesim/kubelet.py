"""Kubelet and node lifecycle simulation.

Each node runs a :class:`Kubelet` that posts heartbeats to the API server
while healthy.  The evaluation's failure injection mirrors the paper's
methodology (§6.1): "we stop the Kubelet process on the failed nodes and
restart it after 10 minutes" — so failing a node here simply stops its
kubelet.  The :class:`NodeLifecycleController` marks nodes NotReady once
their heartbeat is stale and evicts their pods after an eviction timeout,
exactly like the upstream node controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kubesim.apiserver import ApiServer
from repro.kubesim.objects import KubeNode, NodeCondition, PodPhase


@dataclass
class Kubelet:
    """A node agent.  Stopping it makes the node appear failed."""

    node_name: str
    heartbeat_interval: float = 10.0
    running: bool = True

    def stop(self) -> None:
        self.running = False

    def start(self) -> None:
        self.running = True

    def tick(self, api: ApiServer) -> None:
        """Post a heartbeat if running; mark running pods healthy."""
        if not self.running:
            return
        node = api.get_node(self.node_name)
        node.last_heartbeat = api.clock
        # Promote STARTING pods whose startup delay has elapsed.
        for pod in api.list_pods(node_name=self.node_name, phases=[PodPhase.STARTING]):
            if api.clock >= pod.phase_deadline:
                pod.phase = PodPhase.RUNNING
                api.record("PodRunning", f"{pod.namespace}/{pod.name}")
        # Finish graceful terminations.
        for pod in api.list_pods(node_name=self.node_name, phases=[PodPhase.TERMINATING]):
            if api.clock >= pod.phase_deadline:
                api.remove_pod_object(pod.namespace, pod.name)


class NodeLifecycleController:
    """Marks nodes NotReady on stale heartbeats and evicts their pods."""

    def __init__(
        self,
        api: ApiServer,
        heartbeat_grace: float = 40.0,
        pod_eviction_timeout: float = 60.0,
    ) -> None:
        if heartbeat_grace <= 0 or pod_eviction_timeout < 0:
            raise ValueError("timeouts must be positive")
        self.api = api
        self.heartbeat_grace = heartbeat_grace
        self.pod_eviction_timeout = pod_eviction_timeout
        #: node -> time at which it was marked NotReady
        self._not_ready_since: dict[str, float] = {}

    def tick(self) -> None:
        for node in self.api.list_nodes():
            stale = (self.api.clock - node.last_heartbeat) > self.heartbeat_grace
            if stale and node.is_ready:
                node.condition = NodeCondition.NOT_READY
                self._not_ready_since[node.name] = self.api.clock
                self.api.record("NodeNotReady", node.name)
            elif not stale and not node.is_ready:
                node.condition = NodeCondition.READY
                self._not_ready_since.pop(node.name, None)
                self.api.record("NodeReady", node.name)
            if not node.is_ready:
                self._maybe_evict(node)

    def _maybe_evict(self, node: KubeNode) -> None:
        since = self._not_ready_since.get(node.name, self.api.clock)
        if (self.api.clock - since) < self.pod_eviction_timeout:
            return
        for pod in self.api.list_pods(node_name=node.name):
            if pod.phase in (PodPhase.STARTING, PodPhase.RUNNING, PodPhase.TERMINATING):
                # Pods on a dead node are lost; remove them so the deployment
                # controller recreates replacements.
                self.api.remove_pod_object(pod.namespace, pod.name)
                self.api.record("PodEvicted", f"{pod.namespace}/{pod.name}", node.name)
