"""Deployment controller: reconcile desired replica counts.

For every deployment the controller ensures the number of live pods matches
``deployment.replicas`` — creating pending pods when under-replicated and
gracefully deleting the newest pods when over-replicated.  Phoenix drives
diagonal scaling *through* this controller by scaling deployments to zero
(turn off) or back to their desired count (turn on), just as the real
Phoenix agent does with the Kubernetes API.
"""

from __future__ import annotations

from repro.kubesim.apiserver import ApiServer
from repro.kubesim.objects import MICROSERVICE_LABEL, Pod, PodPhase


class DeploymentController:
    """Replica reconciliation loop."""

    def __init__(self, api: ApiServer) -> None:
        self.api = api

    def reconcile(self) -> int:
        """Reconcile every deployment once; returns number of changes made."""
        changes = 0
        for deployment in self.api.list_deployments():
            if deployment.paused:
                continue
            pods = self._owned_pods(deployment.namespace, deployment.name)
            live = [p for p in pods if p.phase not in (PodPhase.TERMINATING, PodPhase.FAILED)]
            desired = deployment.replicas
            if len(live) < desired:
                for index in range(desired - len(live)):
                    pod = Pod.from_spec(
                        deployment.namespace,
                        deployment.spec,
                        owner=deployment.name,
                        replica_index=len(live) + index,
                    )
                    self.api.create_pod(pod)
                    changes += 1
            elif len(live) > desired:
                # Delete newest first, matching Kubernetes' default policy.
                for pod in sorted(live, key=lambda p: p.name, reverse=True)[: len(live) - desired]:
                    self.api.delete_pod(pod.namespace, pod.name)
                    changes += 1
        return changes

    def _owned_pods(self, namespace: str, deployment_name: str) -> list[Pod]:
        return [
            p
            for p in self.api.list_pods(namespace=namespace)
            if p.owner == deployment_name
        ]

    def pods_for_microservice(self, namespace: str, microservice: str) -> list[Pod]:
        return self.api.list_pods(namespace=namespace, selector={MICROSERVICE_LABEL: microservice})
