"""Default Kubernetes-like scheduler with pod priority and preemption.

This models the *baseline* cluster scheduler that Phoenix sits on top of
(and that the "Default" baseline in the evaluation uses alone).  It binds
pending pods to ready nodes using a least-allocated spreading policy, and —
like upstream Kubernetes — supports priority-based preemption: a pending
pod may evict strictly-lower-priority pods from a node when nothing fits.
It is intentionally unaware of criticality tags, dependency graphs or
operator objectives; that is exactly the gap Phoenix fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import Resources
from repro.kubesim.apiserver import ApiServer
from repro.kubesim.objects import Pod, PodPhase


@dataclass
class SchedulingDecision:
    """One binding (or preemption) made in a scheduling pass."""

    pod: str
    node: str | None
    preempted: list[str] = field(default_factory=list)


class DefaultScheduler:
    """The vanilla scheduler: spread pods, preempt only on priority."""

    def __init__(self, api: ApiServer, enable_preemption: bool = True) -> None:
        self.api = api
        self.enable_preemption = enable_preemption

    # -- one scheduling pass -----------------------------------------------------
    def schedule_pending(self) -> list[SchedulingDecision]:
        """Try to bind every pending pod; returns the decisions made."""
        decisions = []
        pending = self.api.list_pods(phases=[PodPhase.PENDING])
        # Higher priority pods are scheduled first, matching kube-scheduler's
        # priority-ordered active queue.
        pending.sort(key=lambda p: (-p.spec.priority, p.namespace, p.name))
        for pod in pending:
            decision = self._schedule_one(pod)
            decisions.append(decision)
        return decisions

    def _schedule_one(self, pod: Pod) -> SchedulingDecision:
        node_name = self._pick_node(pod.spec.resources)
        if node_name is not None:
            self._bind(pod, node_name)
            return SchedulingDecision(pod.name, node_name)
        if self.enable_preemption:
            node_name, victims = self._preempt(pod)
            if node_name is not None:
                for victim in victims:
                    # Preempted pods are removed immediately so the preemptor
                    # can bind without transiently overcommitting the node.
                    self.api.delete_pod(victim.namespace, victim.name, grace=False)
                self._bind(pod, node_name)
                return SchedulingDecision(pod.name, node_name, [v.name for v in victims])
        self.api.record("PodUnschedulable", f"{pod.namespace}/{pod.name}")
        return SchedulingDecision(pod.name, None)

    # -- node selection ------------------------------------------------------------
    def _pick_node(self, demand: Resources) -> str | None:
        """Least-allocated node that fits the demand (spreading policy)."""
        best: str | None = None
        best_free = -1.0
        for node in self.api.list_nodes(ready_only=True):
            free = self.api.node_free(node.name)
            if demand.fits_within(free) and free.cpu > best_free:
                best = node.name
                best_free = free.cpu
        return best

    def _preempt(self, pod: Pod) -> tuple[str | None, list[Pod]]:
        """Find a node where evicting lower-priority pods makes room.

        Victims are chosen lowest priority first; the node needing the
        fewest victims wins.  Returns (node, victims) or (None, []).
        """
        best_node: str | None = None
        best_victims: list[Pod] = []
        for node in self.api.list_nodes(ready_only=True):
            victims = self._victims_on(node.name, pod)
            if victims is None:
                continue
            if best_node is None or len(victims) < len(best_victims):
                best_node = node.name
                best_victims = victims
        return best_node, best_victims

    def _victims_on(self, node_name: str, pod: Pod) -> list[Pod] | None:
        free = self.api.node_free(node_name)
        needed = pod.spec.resources
        if needed.fits_within(free):
            return []
        candidates = [
            p
            for p in self.api.list_pods(node_name=node_name)
            if p.is_active and p.spec.priority < pod.spec.priority
        ]
        candidates.sort(key=lambda p: (p.spec.priority, -p.spec.resources.cpu))
        victims: list[Pod] = []
        freed = free
        for victim in candidates:
            victims.append(victim)
            freed = freed + victim.spec.resources
            if needed.fits_within(freed):
                return victims
        return None

    def _bind(self, pod: Pod, node_name: str) -> None:
        pod.node_name = node_name
        pod.phase = PodPhase.STARTING
        pod.phase_deadline = self.api.clock + pod.spec.startup_seconds
        self.api.record("PodBound", f"{pod.namespace}/{pod.name}", node_name)
