"""Kubernetes-like API objects used by the simulator.

Only the fields Phoenix and the evaluation need are modelled: labels
(criticality tags travel as labels, exactly as in the paper's deployment),
resource requests, pod phase, node conditions and deployment replica counts.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.cluster.resources import Resources

#: Label key carrying the criticality tag on deployments/pods ("C1".."Cn").
CRITICALITY_LABEL = "phoenix.io/criticality"
#: Label key on namespaces that marks an application as Phoenix-subscribed.
PHOENIX_ENABLED_LABEL = "phoenix"
#: Label key carrying the application (namespace-level) name.
APP_LABEL = "app.kubernetes.io/name"
#: Label key carrying the microservice name.
MICROSERVICE_LABEL = "app.kubernetes.io/component"


class PodPhase(enum.Enum):
    """Subset of Kubernetes pod phases relevant to the simulation."""

    PENDING = "Pending"
    STARTING = "Starting"          # scheduled, container still booting
    RUNNING = "Running"
    TERMINATING = "Terminating"
    FAILED = "Failed"
    DELETED = "Deleted"


class NodeCondition(enum.Enum):
    """Node readiness as reported by the node lifecycle controller."""

    READY = "Ready"
    NOT_READY = "NotReady"


_pod_counter = itertools.count()


def _pod_suffix() -> str:
    return f"{next(_pod_counter):06d}"


@dataclass
class KubeNode:
    """A worker node managed by a kubelet."""

    name: str
    capacity: Resources
    condition: NodeCondition = NodeCondition.READY
    #: Simulated timestamp of the last kubelet heartbeat.
    last_heartbeat: float = 0.0
    labels: dict[str, str] = field(default_factory=dict)

    @property
    def is_ready(self) -> bool:
        return self.condition is NodeCondition.READY


@dataclass
class PodSpec:
    """Immutable part of a pod: what to run and what it needs."""

    app: str
    microservice: str
    resources: Resources
    criticality_label: str | None = None
    priority: int = 0
    #: Seconds a container takes to become Running after binding.
    startup_seconds: float = 10.0
    #: Seconds a graceful termination takes (SIGTERM -> exit).
    termination_seconds: float = 5.0


@dataclass
class Pod:
    """A pod instance tracked by the API server."""

    name: str
    namespace: str
    spec: PodSpec
    labels: dict[str, str] = field(default_factory=dict)
    phase: PodPhase = PodPhase.PENDING
    node_name: str | None = None
    #: Simulated time at which the current phase transition completes.
    phase_deadline: float = 0.0
    #: Owning deployment name (for reconciliation) — None for bare pods.
    owner: str | None = None
    replica_index: int = 0

    @classmethod
    def from_spec(
        cls,
        namespace: str,
        spec: PodSpec,
        owner: str | None = None,
        replica_index: int = 0,
    ) -> "Pod":
        labels = {
            APP_LABEL: spec.app,
            MICROSERVICE_LABEL: spec.microservice,
        }
        if spec.criticality_label is not None:
            labels[CRITICALITY_LABEL] = spec.criticality_label
        name = f"{spec.microservice}-{_pod_suffix()}"
        return cls(name=name, namespace=namespace, spec=spec, labels=labels,
                   owner=owner, replica_index=replica_index)

    @property
    def is_active(self) -> bool:
        """Pod is consuming node resources (scheduled and not yet gone)."""
        return self.node_name is not None and self.phase in (
            PodPhase.STARTING,
            PodPhase.RUNNING,
            PodPhase.TERMINATING,
        )

    @property
    def is_serving(self) -> bool:
        return self.phase is PodPhase.RUNNING


@dataclass
class Deployment:
    """A deployment: desired replica count for one microservice."""

    name: str
    namespace: str
    spec: PodSpec
    replicas: int = 1
    labels: dict[str, str] = field(default_factory=dict)
    paused: bool = False

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError("replicas must be non-negative")
        self.labels.setdefault(APP_LABEL, self.spec.app)
        self.labels.setdefault(MICROSERVICE_LABEL, self.spec.microservice)
        if self.spec.criticality_label is not None:
            self.labels.setdefault(CRITICALITY_LABEL, self.spec.criticality_label)


@dataclass
class Namespace:
    """A namespace groups an application instance's deployments."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)

    @property
    def phoenix_enabled(self) -> bool:
        return self.labels.get(PHOENIX_ENABLED_LABEL) == "enabled"
