"""Adapters that present a :class:`~repro.api.engine.PhoenixEngine` through
the repository's pre-engine surfaces.

:class:`SchemeAdapter` satisfies AdaptLab's ``ResilienceScheme`` protocol
(``respond(state) -> (new_state, planning_seconds)`` plus a ``name``), so an
engine drops into the failure-sweep harness, the replay driver and every
Figure-7-style comparison without touching them.  The stock Phoenix and LP
schemes in :mod:`repro.adaptlab.baselines` are themselves ``SchemeAdapter``
subclasses since the engine redesign.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState

from repro.api.engine import PhoenixEngine


class SchemeAdapter:
    """Adapt an engine to AdaptLab's resilience-scheme protocol.

    The adapter is deliberately paper-thin: ``respond`` is the engine's
    ``respond``, so results are byte-identical to driving the engine
    directly, and identical to the pre-engine hand-wired schemes (enforced
    by the equivalence tests).
    """

    def __init__(self, engine: PhoenixEngine, name: str | None = None) -> None:
        self.engine = engine
        self.name = name if name is not None else engine.name

    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        """Return (enacted target state, planning seconds); ``state`` untouched."""
        return self.engine.respond(state)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, engine={self.engine!r})"
