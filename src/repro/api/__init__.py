"""``repro.api`` — the composable public API over the Phoenix engine.

One engine, many frontends.  Everything that plans, packs, schedules or
reconciles goes through :class:`PhoenixEngine`:

>>> import repro.api as api
>>> eng = api.engine("revenue")                  # the one entrypoint
>>> report = eng.reconcile(state, force=True)    # controller-style round
>>> new_state, seconds = eng.respond(state)      # AdaptLab-scheme semantics

Building blocks:

* :class:`EngineConfig` — declarative engine description: objective,
  fast/reference implementation, packing flags, and the incremental
  reconciliation knobs (``incremental`` keeps a persistent scratch state so
  per-round cost follows churn — on by default and byte-identical to full
  recomputes; ``incremental_dirty_threshold`` bounds the dirty fraction
  before a round falls back to a full rebuild).
* :class:`Ranker` / :class:`Packer` / :class:`Differ` — pluggable pipeline
  stage protocols; stock fast and golden-reference implementations ship.
* :class:`StagePipeline` / :class:`LPPipeline` — pipeline composition.
* Events — :class:`FailureDetected`, :class:`RecoveryDetected`,
  :class:`PlanComputed`, :class:`ActionsExecuted` via ``engine.events``,
  plus the replay hooks :class:`TraceEventApplied` /
  :class:`ReplayStepCompleted` emitted when :mod:`repro.traces` drives the
  engine through a scenario.
* :class:`SchemeAdapter` — present an engine as an AdaptLab resilience
  scheme.
* :func:`backend_for` — auto-wrap cluster states / kubesim clusters into
  the ``ClusterBackend`` protocol.

Fleet re-exports: the federation layer over many engines lives in
:mod:`repro.fleet`; its headline names — :class:`FleetEngine`,
:class:`FleetConfig`, :class:`FleetReplayer` — are re-exported here lazily
(``repro.api.FleetEngine``), so frontends depending only on ``repro.api``
can federate without a second import root.  The import is deferred because
:mod:`repro.fleet` itself builds on this package.
"""

from repro.api.adapters import SchemeAdapter
from repro.api.config import EngineConfig, resolve_objective
from repro.api.engine import (
    LPPipeline,
    PhoenixEngine,
    SchedulePipeline,
    StagePipeline,
    backend_for,
    engine,
)
from repro.api.events import (
    ActionsExecuted,
    EngineEvent,
    EventBus,
    FailureDetected,
    PlanComputed,
    RecoveryDetected,
    ReplayStepCompleted,
    TraceEventApplied,
)
from repro.api.stages import (
    Differ,
    Packer,
    Ranker,
    ReferencePlanner,
    build_stages,
)

#: Names re-exported lazily from :mod:`repro.fleet` (which imports this
#: package, so an eager import here would be circular).
_FLEET_REEXPORTS = ("FleetConfig", "FleetEngine", "FleetReplayer")

__all__ = [
    "SchemeAdapter",
    "EngineConfig",
    "resolve_objective",
    "LPPipeline",
    "PhoenixEngine",
    "SchedulePipeline",
    "StagePipeline",
    "backend_for",
    "engine",
    "ActionsExecuted",
    "EngineEvent",
    "EventBus",
    "FailureDetected",
    "PlanComputed",
    "RecoveryDetected",
    "ReplayStepCompleted",
    "TraceEventApplied",
    "Differ",
    "Packer",
    "Ranker",
    "ReferencePlanner",
    "build_stages",
    *_FLEET_REEXPORTS,
]


def __getattr__(name: str):
    if name in _FLEET_REEXPORTS:
        import repro.fleet as fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
