"""``repro.api`` — the composable public API over the Phoenix engine.

One engine, many frontends.  Everything that plans, packs, schedules or
reconciles goes through :class:`PhoenixEngine`:

>>> import repro.api as api
>>> eng = api.engine("revenue")                  # the one entrypoint
>>> report = eng.reconcile(state, force=True)    # controller-style round
>>> new_state, seconds = eng.respond(state)      # AdaptLab-scheme semantics

Building blocks:

* :class:`EngineConfig` — declarative engine description (objective,
  fast/reference implementation, packing flags).
* :class:`Ranker` / :class:`Packer` / :class:`Differ` — pluggable pipeline
  stage protocols; stock fast and golden-reference implementations ship.
* :class:`StagePipeline` / :class:`LPPipeline` — pipeline composition.
* Events — :class:`FailureDetected`, :class:`RecoveryDetected`,
  :class:`PlanComputed`, :class:`ActionsExecuted` via ``engine.events``,
  plus the replay hooks :class:`TraceEventApplied` /
  :class:`ReplayStepCompleted` emitted when :mod:`repro.traces` drives the
  engine through a scenario.
* :class:`SchemeAdapter` — present an engine as an AdaptLab resilience
  scheme.
* :func:`backend_for` — auto-wrap cluster states / kubesim clusters into
  the ``ClusterBackend`` protocol.
"""

from repro.api.adapters import SchemeAdapter
from repro.api.config import EngineConfig, resolve_objective
from repro.api.engine import (
    LPPipeline,
    PhoenixEngine,
    SchedulePipeline,
    StagePipeline,
    backend_for,
    engine,
)
from repro.api.events import (
    ActionsExecuted,
    EngineEvent,
    EventBus,
    FailureDetected,
    PlanComputed,
    RecoveryDetected,
    ReplayStepCompleted,
    TraceEventApplied,
)
from repro.api.stages import (
    Differ,
    Packer,
    Ranker,
    ReferencePlanner,
    build_stages,
)

__all__ = [
    "SchemeAdapter",
    "EngineConfig",
    "resolve_objective",
    "LPPipeline",
    "PhoenixEngine",
    "SchedulePipeline",
    "StagePipeline",
    "backend_for",
    "engine",
    "ActionsExecuted",
    "EngineEvent",
    "EventBus",
    "FailureDetected",
    "PlanComputed",
    "RecoveryDetected",
    "ReplayStepCompleted",
    "TraceEventApplied",
    "Differ",
    "Packer",
    "Ranker",
    "ReferencePlanner",
    "build_stages",
]
