"""Pluggable pipeline-stage protocols and their stock implementations.

The Phoenix pipeline has three stages — **rank** (order containers by
criticality under an operator objective), **pack** (map the activated prefix
onto nodes) and **diff** (turn the packed target into an executable action
list).  :class:`~repro.api.engine.PhoenixEngine` composes one implementation
of each; anything satisfying the protocols below plugs in:

* :class:`Ranker` — ``plan(state) -> ActivationPlan``.  The stock fast
  implementation is :class:`~repro.core.planner.PhoenixPlanner`;
  :class:`ReferencePlanner` swaps the lazy-rescore heap merge for the golden
  seed loop retained in :mod:`repro.core.reference`.
* :class:`Packer` — ``pack(state, plan) -> PackingResult``.  Stock:
  :class:`~repro.core.packing.PackingHeuristic` (fast) and
  :class:`~repro.core.reference.ReferencePackingHeuristic` (golden).
* :class:`Differ` — ``(live, packing) -> list[Action]``.  Stock:
  :func:`~repro.core.scheduler.diff_actions` (fast) and
  :func:`~repro.core.reference.reference_diff` (golden).

Both stage sets are byte-identical by construction (enforced by the
golden-equivalence suite), so ``implementation="reference"`` is a drop-in
verification mode, not a different policy.
"""

from __future__ import annotations

from typing import Mapping, Protocol, runtime_checkable

from repro.cluster.application import Application
from repro.cluster.state import ClusterState
from repro.core.objectives import OperatorObjective
from repro.core.packing import PackingHeuristic, PackingResult
from repro.core.plan import Action, ActivationPlan
from repro.core.planner import PhoenixPlanner
from repro.core.reference import (
    ReferencePackingHeuristic,
    reference_diff,
    reference_rank,
)
from repro.core.scheduler import diff_actions

from repro.api.config import EngineConfig


@runtime_checkable
class Ranker(Protocol):
    """Stage 1: produce the globally ordered activation plan for a state."""

    def plan(self, state: ClusterState) -> ActivationPlan: ...


@runtime_checkable
class Packer(Protocol):
    """Stage 2: place the activated prefix onto nodes (mutates ``state``).

    ``state`` is a working copy owned by the pipeline; the live cluster is
    never packed directly.
    """

    def pack(self, state: ClusterState, plan: ActivationPlan) -> PackingResult: ...


class Differ(Protocol):
    """Stage 3: actions that transform the live assignment into the packed one."""

    def __call__(self, live: ClusterState, packing: PackingResult) -> list[Action]: ...


class _ReferenceGlobalRanker:
    """Golden drop-in for :class:`~repro.core.planner.GlobalRanker`.

    Always runs the seed's O(containers × applications) rescan loop instead
    of the lazy-rescore heap.
    """

    def __init__(self, objective: OperatorObjective) -> None:
        self._objective = objective

    @property
    def objective(self) -> OperatorObjective:
        return self._objective

    def rank(
        self,
        applications: Mapping[str, Application],
        app_rank: Mapping[str, list[str]],
        capacity: float,
    ) -> ActivationPlan:
        return reference_rank(self._objective, applications, app_rank, capacity)


class ReferencePlanner(PhoenixPlanner):
    """Phoenix planner whose global merge is the golden reference loop.

    Priority estimation and stateful pinning are shared with the fast
    planner (they were never part of the hot-path rewrite); only the global
    merge differs, which is exactly what the equivalence suite exercises.
    """

    def __init__(self, objective: OperatorObjective, cache_plans: bool = False) -> None:
        super().__init__(objective, cache_plans=cache_plans)
        self._ranker = _ReferenceGlobalRanker(objective)


def build_stages(config: EngineConfig) -> tuple[Ranker, Packer, Differ]:
    """Construct the (ranker, packer, differ) triple a config describes.

    Plan memoization follows ``config.incremental``: engine-built planners
    reuse the previous round's plan when applications and capacity are
    unchanged (a pure-function cache, byte-identical output), while
    directly constructed planners — e.g. in microbenchmarks — measure every
    round for real.
    """
    objective = config.resolved_objective()
    if config.implementation == "reference":
        return (
            ReferencePlanner(objective, cache_plans=config.incremental),
            ReferencePackingHeuristic(
                allow_migration=config.allow_migration,
                allow_deletion=config.allow_deletion,
            ),
            reference_diff,
        )
    return (
        PhoenixPlanner(objective, cache_plans=config.incremental),
        PackingHeuristic(
            allow_migration=config.allow_migration,
            allow_deletion=config.allow_deletion,
        ),
        diff_actions,
    )
