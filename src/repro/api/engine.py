"""The Phoenix engine: one facade over the plan → pack → diff pipeline.

:class:`PhoenixEngine` is the single way to drive Phoenix.  Every frontend
in the repository is a thin wrapper over it:

* the controller loop (:class:`repro.core.controller.PhoenixController`)
  calls :meth:`PhoenixEngine.reconcile` per monitoring round,
* the AdaptLab schemes wrap :meth:`PhoenixEngine.respond` through
  :class:`repro.api.adapters.SchemeAdapter`,
* kubesim, chaos and the examples go through :func:`engine` (the module
  entrypoint) and :func:`backend_for` (backend auto-wrapping).

The engine is configured by :class:`~repro.api.config.EngineConfig` and
composed of three pluggable stages (:class:`~repro.api.stages.Ranker`,
:class:`~repro.api.stages.Packer`, :class:`~repro.api.stages.Differ`);
non-stage pipelines (the exact LP) plug in via :class:`SchedulePipeline`.
Observers subscribe to the engine's typed event stream
(:mod:`repro.api.events`).
"""

from __future__ import annotations

import time
from typing import Iterable, Protocol, runtime_checkable

from repro import obs
from repro.cluster.state import ClusterState
from repro.core.controller import ClusterBackend, ReconcileReport, StateBackend
from repro.core.incremental import DEFAULT_DIRTY_NODE_THRESHOLD, IncrementalScheduler
from repro.core.objectives import OperatorObjective
from repro.core.packing import PackingHeuristic
from repro.core.plan import Action, ActivationPlan, SchedulePlan
from repro.core.scheduler import apply_schedule

from repro.api.config import EngineConfig
from repro.api.events import (
    ActionsExecuted,
    EventBus,
    FailureDetected,
    Observer,
    PlanComputed,
    RecoveryDetected,
)
from repro.api.stages import Differ, Packer, Ranker, build_stages


@runtime_checkable
class SchedulePipeline(Protocol):
    """Anything that can turn a cluster state into a schedule.

    The engine only needs ``compute``; the activation plan slot is ``None``
    for pipelines that do not produce one (e.g. the exact LP).
    """

    name: str

    def compute(
        self, state: ClusterState
    ) -> tuple[ActivationPlan | None, SchedulePlan]: ...


class StagePipeline:
    """The Phoenix-shaped pipeline: rank → pack → diff.

    ``schedule`` reproduces :meth:`repro.core.scheduler.PhoenixScheduler.schedule`
    exactly: packing runs on a node-sharing copy of the live state, and the
    differ compares the live assignment against the packed target.

    With ``incremental`` (and the stock fast packer) the per-round copy is
    replaced by the persistent scratch state of
    :class:`repro.core.incremental.IncrementalScheduler`, so reconcile
    rounds against the same live state cost O(churn) instead of O(cluster)
    while producing byte-identical schedules.  Custom packers and the
    golden reference stages silently keep the classic path.
    """

    def __init__(
        self,
        ranker: Ranker,
        packer: Packer,
        differ: Differ,
        name: str = "phoenix",
        *,
        incremental: bool = False,
        dirty_node_threshold: float = DEFAULT_DIRTY_NODE_THRESHOLD,
    ) -> None:
        self.ranker = ranker
        self.packer = packer
        self.differ = differ
        self.name = name
        self._incremental: IncrementalScheduler | None = None
        if incremental and isinstance(packer, PackingHeuristic):
            self._incremental = IncrementalScheduler(
                packer, differ, dirty_node_threshold=dirty_node_threshold
            )

    @property
    def incremental(self) -> IncrementalScheduler | None:
        """The incremental scheduler, when this pipeline runs one."""
        return self._incremental

    def invalidate(self) -> None:
        """Drop incremental caches; the next round recomputes fully."""
        if self._incremental is not None:
            self._incremental.invalidate()

    def plan(self, state: ClusterState) -> ActivationPlan:
        with obs.tracer().span("rank"):
            return self.ranker.plan(state)

    def schedule(self, state: ClusterState, plan: ActivationPlan) -> SchedulePlan:
        if self._incremental is not None:
            # The incremental scheduler fuses pack and diff over its scratch
            # state; it reports its own fast/full mode (see core.incremental).
            with obs.tracer().span("pack", mode="incremental"):
                return self._incremental.schedule(state, plan)
        working = state.copy(share_nodes=True)
        tracer = obs.tracer()
        with tracer.span("pack"):
            packing = self.packer.pack(working, plan)
        with tracer.span("diff"):
            actions = self.differ(state, packing)
        return SchedulePlan(
            target_assignment=packing.assignment,
            actions=actions,
            unplaced=packing.unplaced,
        )

    def compute(self, state: ClusterState) -> tuple[ActivationPlan, SchedulePlan]:
        plan = self.plan(state)
        return plan, self.schedule(state, plan)


class LPPipeline:
    """Exact-solver pipeline: the solver emits the schedule directly.

    ``solver`` is anything with ``solve(state)`` returning an object with
    ``to_schedule_plan(state)`` — both ILP formulations in
    :mod:`repro.core.lp` qualify.
    """

    def __init__(self, solver, name: str = "lp") -> None:
        self.solver = solver
        self.name = name

    def compute(self, state: ClusterState) -> tuple[None, SchedulePlan]:
        solution = self.solver.solve(state)
        return None, solution.to_schedule_plan(state)


def backend_for(target) -> ClusterBackend:
    """Wrap ``target`` into something satisfying the ``ClusterBackend`` protocol.

    * A backend (has ``observe`` and ``execute``) passes through unchanged.
    * A bare :class:`ClusterState` is wrapped in a
      :class:`~repro.core.controller.StateBackend` (instantaneous actions).
    * Anything exposing a ``phoenix_backend()`` factory (e.g.
      :class:`repro.kubesim.KubeCluster`) is asked to produce its own.
    """
    observe = getattr(target, "observe", None)
    execute = getattr(target, "execute", None)
    if callable(observe) and callable(execute):
        return target
    if isinstance(target, ClusterState):
        return StateBackend(target)
    maker = getattr(target, "phoenix_backend", None)
    if callable(maker):
        return maker()
    raise TypeError(
        f"cannot derive a ClusterBackend from {type(target).__name__}: expected a "
        "backend (observe/execute), a ClusterState, or an object with a "
        "phoenix_backend() factory"
    )


class PhoenixEngine:
    """Facade over the Phoenix pipeline: plan, schedule, respond, reconcile.

    Parameters
    ----------
    config:
        Declarative engine description; defaults to ``EngineConfig()``
        (revenue objective, fast stages).
    ranker / packer / differ:
        Per-stage overrides.  Anything satisfying the stage protocols plugs
        in; unspecified stages come from ``config``.
    pipeline:
        A complete :class:`SchedulePipeline` replacing the stage triple
        entirely (used for the exact-LP engines).  Mutually exclusive with
        stage overrides.
    observers:
        Event handlers subscribed to every event at construction.

    One engine drives one cluster: :meth:`reconcile` keeps the failure
    detector's known-failed set across rounds, so interleaving backends of
    different clusters through the same engine confuses detection (build one
    engine per cluster instead — they are cheap).
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        ranker: Ranker | None = None,
        packer: Packer | None = None,
        differ: Differ | None = None,
        pipeline: SchedulePipeline | None = None,
        observers: Iterable[Observer] = (),
        name: str | None = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self._objective: OperatorObjective | None = None
        if pipeline is not None:
            if ranker is not None or packer is not None or differ is not None:
                raise ValueError("pass either a full pipeline or stage overrides, not both")
            self.pipeline: SchedulePipeline = pipeline
        else:
            default_ranker, default_packer, default_differ = build_stages(self.config)
            ranker = ranker if ranker is not None else default_ranker
            objective = getattr(ranker, "objective", None)
            self._objective = (
                objective if isinstance(objective, OperatorObjective) else self.config.resolved_objective()
            )
            self.pipeline = StagePipeline(
                ranker=ranker,
                packer=packer if packer is not None else default_packer,
                differ=differ if differ is not None else default_differ,
                name=f"phoenix-{self._objective.name}",
                incremental=self.config.incremental,
                dirty_node_threshold=self.config.incremental_dirty_threshold,
            )
        self._name = name
        self.events = EventBus()
        for observer in observers:
            self.events.subscribe(observer)
        self._known_failed: set[str] | None = None

    @classmethod
    def from_pipeline(
        cls,
        pipeline: SchedulePipeline,
        name: str | None = None,
        observers: Iterable[Observer] = (),
    ) -> "PhoenixEngine":
        """Build an engine around a complete pipeline (e.g. :class:`LPPipeline`)."""
        return cls(pipeline=pipeline, name=name, observers=observers)

    # -- introspection ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name or self.pipeline.name

    @property
    def objective(self) -> OperatorObjective | None:
        """The operator objective, when the pipeline has one (LP engines: None)."""
        return self._objective

    @property
    def ranker(self) -> Ranker | None:
        return getattr(self.pipeline, "ranker", None)

    @property
    def packer(self) -> Packer | None:
        return getattr(self.pipeline, "packer", None)

    @property
    def differ(self) -> Differ | None:
        return getattr(self.pipeline, "differ", None)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    # -- pipeline surface -------------------------------------------------------------
    def plan(self, state: ClusterState) -> ActivationPlan:
        """Stage 1 only: the globally ordered activation plan for ``state``."""
        planner = getattr(self.pipeline, "plan", None)
        if planner is None:
            raise NotImplementedError(
                f"pipeline {self.pipeline.name!r} does not expose a standalone plan stage"
            )
        return planner(state)

    def schedule(self, state: ClusterState, plan: ActivationPlan | None = None) -> SchedulePlan:
        """Schedule ``plan`` (computed if omitted) on ``state`` without executing."""
        scheduler = getattr(self.pipeline, "schedule", None)
        if scheduler is None:
            return self.pipeline.compute(state)[1]
        if plan is None:
            plan = self.plan(state)
        return scheduler(state, plan)

    # -- scheme surface ---------------------------------------------------------------
    def respond(self, state: ClusterState) -> tuple[ClusterState, float]:
        """AdaptLab semantics: (enacted target state, planning seconds).

        ``state`` is not mutated; the schedule is applied wholesale to a
        copy, exactly as the resilience schemes always did.
        """
        started = time.perf_counter()
        plan, schedule = self.pipeline.compute(state)
        elapsed = time.perf_counter() - started
        new_state = state.copy()
        apply_schedule(new_state, schedule)
        self.events.emit(PlanComputed(plan=plan, schedule=schedule, planning_seconds=elapsed))
        return new_state, elapsed

    # -- controller surface -----------------------------------------------------------
    def _detect_changes(self, state: ClusterState) -> tuple[list[str], list[str]]:
        """Diff the observed failed set against the last observation.

        First observation: every already-failed node is reported as newly
        failed and nothing as recovered.
        """
        current_failed = state.failed_names()
        if self._known_failed is None:
            self._known_failed = current_failed
            return sorted(current_failed), []
        newly_failed = sorted(current_failed - self._known_failed)
        recovered = sorted(self._known_failed - current_failed)
        self._known_failed = current_failed
        return newly_failed, recovered

    def reconcile(self, backend, force: bool = False) -> ReconcileReport:
        """One monitor → detect → plan → execute round against ``backend``.

        ``backend`` may be anything :func:`backend_for` accepts.  Planning
        and execution only happen when the failed set changed (or ``force``).
        ``force`` also drops the pipeline's incremental caches, so a forced
        round is always a full recompute.
        """
        with obs.tracer().span("reconcile.round"):
            report = self._reconcile(backend, force)
        registry = obs.registry()
        if registry.enabled:
            registry.counter("engine.rounds").inc()
            if report.failed_nodes:
                registry.counter("engine.events.failure_detected").inc()
            if report.recovered_nodes:
                registry.counter("engine.events.recovery_detected").inc()
            if report.triggered:
                registry.counter("engine.rounds_triggered").inc()
                # Pure observation of an already-computed value: the timing
                # itself came from the untouched hot path above.
                registry.histogram("engine.planning_seconds").observe(
                    report.planning_seconds
                )
                if report.actions_executed:
                    registry.counter("engine.actions_executed").inc(
                        report.actions_executed
                    )
        return report

    def _reconcile(self, backend, force: bool) -> ReconcileReport:
        backend = backend_for(backend)
        state = backend.observe()
        if force:
            invalidate = getattr(self.pipeline, "invalidate", None)
            if callable(invalidate):
                invalidate()
        failed, recovered = self._detect_changes(state)
        if failed:
            self.events.emit(FailureDetected(nodes=tuple(failed)))
        if recovered:
            self.events.emit(RecoveryDetected(nodes=tuple(recovered)))
        triggered = force or bool(failed) or bool(recovered)
        report = ReconcileReport(
            triggered=triggered, failed_nodes=failed, recovered_nodes=recovered
        )
        if not triggered:
            return report

        started = time.perf_counter()
        plan, schedule = self.pipeline.compute(state)
        report.planning_seconds = time.perf_counter() - started
        report.plan = plan
        report.schedule = schedule
        self.events.emit(
            PlanComputed(plan=plan, schedule=schedule, planning_seconds=report.planning_seconds)
        )

        actions = schedule.ordered_actions()
        self.execute(backend, actions)
        report.actions_executed = len(actions)
        self.events.emit(ActionsExecuted(actions=tuple(actions)))
        return report

    def execute(self, backend, actions: list[Action]) -> None:
        """Default executor: hand the action list to the backend.

        For bare :class:`ClusterState` targets this lands in
        :func:`repro.core.scheduler.apply_actions` via ``StateBackend`` —
        the one shared action-application code path.
        """
        backend_for(backend).execute(actions)

    def summary(
        self,
        backend,
        *,
        name: str = "cluster",
        reference_revenue: float | None = None,
    ):
        """Public snapshot of ``backend``'s observed state as a ``CellSummary``.

        The single-engine twin of :meth:`repro.fleet.FleetEngine.summary`:
        a picklable, JSON-serializable (via ``to_record``) view of the
        cluster — capacity, usage, failure counts, revenue, missing critical
        microservices — so frontends never reach into state internals.
        ``reference_revenue`` defaults to the state's *current* revenue
        potential; pass the pre-failure value to normalize like the fleet
        does.  Pure read: no round runs, no detector state moves.
        """
        from repro.adaptlab.metrics import potential_revenue
        from repro.fleet.summary import summarize_cell

        state = backend_for(backend).observe()
        if reference_revenue is None:
            reference_revenue = potential_revenue(state)
        return summarize_cell(name, state, reference_revenue)

    def reset(self) -> None:
        """Forget failure-detection state (when replaying scenarios)."""
        self._known_failed = None

    @property
    def known_failed(self) -> set[str] | None:
        """The failure detector's last observed failed set (None = virgin).

        Exposed for federating frontends (:mod:`repro.fleet`) that run
        reconcile rounds in worker processes: the detector state is
        checkpointed out of one engine and restored into its successor so
        change detection stays continuous across process boundaries.
        """
        return None if self._known_failed is None else set(self._known_failed)

    @known_failed.setter
    def known_failed(self, value: Iterable[str] | None) -> None:
        self._known_failed = None if value is None else set(value)


def engine(
    objective: OperatorObjective | str = "revenue",
    *,
    implementation: str = "fast",
    allow_migration: bool = True,
    allow_deletion: bool = True,
    monitor_interval: float = 15.0,
    incremental: bool = True,
    observers: Iterable[Observer] = (),
    ranker: Ranker | None = None,
    packer: Packer | None = None,
    differ: Differ | None = None,
) -> PhoenixEngine:
    """The one entrypoint: build a :class:`PhoenixEngine` from plain arguments.

    >>> import repro.api as api
    >>> eng = api.engine("revenue")
    >>> report = eng.reconcile(cluster_state, force=True)   # doctest: +SKIP

    Every keyword maps onto :class:`~repro.api.config.EngineConfig`; stage
    overrides pass through to :class:`PhoenixEngine`.
    """
    config = EngineConfig(
        objective=objective,
        implementation=implementation,
        allow_migration=allow_migration,
        allow_deletion=allow_deletion,
        monitor_interval=monitor_interval,
        incremental=incremental,
    )
    return PhoenixEngine(
        config, ranker=ranker, packer=packer, differ=differ, observers=observers
    )
