"""Typed event stream emitted by :class:`~repro.api.engine.PhoenixEngine`.

Observers subscribe to the engine's :class:`EventBus` and receive immutable
event objects as the engine moves through its monitor → plan → execute loop:

* :class:`FailureDetected` / :class:`RecoveryDetected` — the failure detector
  saw the set of failed nodes change between observations.
* :class:`PlanComputed` — a plan → pack → diff round finished (carries the
  activation plan, the schedule and the wall-clock planning time).
* :class:`ActionsExecuted` — the engine pushed an action list to a backend.

Replay hooks (emitted by :class:`repro.traces.replayer.TraceReplayer` when
it drives an engine through a scenario):

* :class:`TraceEventApplied` — one scenario event (node failure/recovery,
  capacity target, load change) was applied to the cluster state.
* :class:`ReplayStepCompleted` — a full trace step (events + reconcile +
  metric evaluation) finished; carries the step's metric record.

Events are plain frozen dataclasses so observers can pattern-match on type,
log them, or forward them to external systems without touching engine
internals.  Subscribing is cheap; an engine with no observers pays one empty
list iteration per event.
"""

from __future__ import annotations

import threading as _threading
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.plan import Action, ActivationPlan, SchedulePlan


class EngineEvent:
    """Base class for everything the engine emits."""

    __slots__ = ()


@dataclass(frozen=True)
class FailureDetected(EngineEvent):
    """Nodes that newly entered the failed set since the last observation.

    On the engine's *first* observation every already-failed node is reported
    here (first-observation semantics: there is no previous set to diff
    against, so pre-existing failures count as new).
    """

    nodes: tuple[str, ...]


@dataclass(frozen=True)
class RecoveryDetected(EngineEvent):
    """Nodes that left the failed set since the last observation."""

    nodes: tuple[str, ...]


@dataclass(frozen=True)
class PlanComputed(EngineEvent):
    """One planning round finished.

    ``plan`` is ``None`` for pipelines that do not produce an activation plan
    (e.g. the exact-LP pipeline, which emits a schedule directly).
    """

    plan: ActivationPlan | None
    schedule: SchedulePlan
    planning_seconds: float


@dataclass(frozen=True)
class ActionsExecuted(EngineEvent):
    """The engine executed an action list against a backend."""

    actions: tuple[Action, ...]

    @property
    def count(self) -> int:
        return len(self.actions)


@dataclass(frozen=True)
class TraceEventApplied(EngineEvent):
    """A trace replayer applied one scenario event to the cluster state.

    ``payload`` is the event's JSONL record (kind-specific fields included),
    so observers can log or forward scenario context without importing the
    trace schema.
    """

    time: float
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ReplayStepCompleted(EngineEvent):
    """A trace replayer finished one step: events applied, engine reacted.

    ``payload`` is the step's metric record (availability, revenue,
    utilization, …) as emitted into the replay-metrics JSONL.
    """

    time: float
    payload: Mapping[str, object] = field(default_factory=dict)


#: An observer is any callable taking one event.
Observer = Callable[[EngineEvent], None]


class EventBus:
    """Minimal synchronous pub/sub used by the engine.

    Handlers run inline, in subscription order, on the thread that emitted
    the event.  A handler that raises is **isolated**: the exception is
    swallowed, counted in the observability registry
    (``obs.subscriber_errors``) and delivery continues to the remaining
    subscribers — one broken observer must not abort an engine round.
    Construct the bus with ``strict=True`` (or flip the attribute) to get
    the old fail-fast behaviour back for debugging: the error still counts,
    then re-raises.

    Emission is safe under concurrent subscribe/unsubscribe: the subscriber
    list is an immutable tuple swapped under a lock, so every emit walks a
    consistent snapshot — a subscription added or removed mid-emit takes
    effect from the next emit on, and two threads mutating the bus can never
    lose each other's updates.  Handlers themselves still run unlocked (a
    handler may subscribe or unsubscribe without deadlocking).
    """

    def __init__(self, *, strict: bool = False) -> None:
        self._subscribers: tuple[tuple[type | None, Observer], ...] = ()
        self._lock = _threading.Lock()
        #: Re-raise subscriber exceptions instead of isolating them.
        self.strict = strict

    def subscribe(
        self, handler: Observer, event_type: type | None = None
    ) -> Callable[[], None]:
        """Register ``handler`` for ``event_type`` (or every event).

        Returns a zero-argument unsubscribe callable.
        """
        if not callable(handler):
            raise TypeError("event handler must be callable")
        if event_type is not None and not (
            isinstance(event_type, type) and issubclass(event_type, EngineEvent)
        ):
            raise TypeError("event_type must be an EngineEvent subclass")
        entry = (event_type, handler)
        with self._lock:
            self._subscribers = self._subscribers + (entry,)

        def unsubscribe() -> None:
            with self._lock:
                found = False
                kept = []
                for existing in self._subscribers:
                    # Remove one occurrence, like list.remove; identity on
                    # the handler so equal-but-distinct callables survive.
                    if not found and existing[0] is entry[0] and existing[1] is entry[1]:
                        found = True
                        continue
                    kept.append(existing)
                self._subscribers = tuple(kept)

        return unsubscribe

    def unsubscribe(self, handler: Observer) -> None:
        """Remove every subscription of ``handler`` (any event type)."""
        with self._lock:
            self._subscribers = tuple(
                e for e in self._subscribers if e[1] is not handler
            )

    def emit(self, event: EngineEvent) -> None:
        """Deliver ``event`` to every subscriber of the current snapshot."""
        for event_type, handler in self._subscribers:
            if event_type is None or isinstance(event, event_type):
                try:
                    handler(event)
                except Exception:
                    from repro import obs

                    obs.count_subscriber_error()
                    if self.strict:
                        raise

    def __len__(self) -> int:
        return len(self._subscribers)
