"""Engine configuration: one dataclass that describes a Phoenix pipeline.

:class:`EngineConfig` is the single knob surface shared by every frontend —
the controller loop, the AdaptLab schemes, kubesim glue and the examples all
build their engines from it.  The config is declarative: it names an
operator objective, picks the stage *implementation* ("fast" for the
optimized hot path, "reference" for the golden seed algorithms retained in
:mod:`repro.core.reference`), and carries the packing policy flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objectives import (
    FairnessObjective,
    OperatorObjective,
    RevenueObjective,
)

#: Accepted values for :attr:`EngineConfig.implementation`.
IMPLEMENTATIONS = ("fast", "reference")

#: Objective spellings accepted by :func:`resolve_objective`.
_OBJECTIVES = {
    "revenue": RevenueObjective,
    "cost": RevenueObjective,  # the paper's "PhoenixCost" spelling
    "fairness": FairnessObjective,
    "fair": FairnessObjective,
}


def resolve_objective(objective: OperatorObjective | str) -> OperatorObjective:
    """Turn an objective spec (instance or name) into an objective instance.

    Accepted names: ``"revenue"`` / ``"cost"`` (revenue-maximizing) and
    ``"fairness"`` / ``"fair"`` (water-filling max-min fairness).  Passing an
    :class:`OperatorObjective` instance returns it unchanged, so custom
    objectives plug in directly.
    """
    if isinstance(objective, OperatorObjective):
        return objective
    if isinstance(objective, str):
        try:
            return _OBJECTIVES[objective.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown objective {objective!r}; expected one of "
                f"{sorted(set(_OBJECTIVES))} or an OperatorObjective instance"
            ) from None
    raise TypeError(
        f"objective must be an OperatorObjective or a name, got {type(objective).__name__}"
    )


@dataclass
class EngineConfig:
    """Declarative description of a Phoenix engine.

    Parameters
    ----------
    objective:
        Operator objective for global ranking — an
        :class:`~repro.core.objectives.OperatorObjective` instance or one of
        the names accepted by :func:`resolve_objective`.
    implementation:
        ``"fast"`` (default) wires the optimized plan → pack → diff stages;
        ``"reference"`` wires the golden seed implementations from
        :mod:`repro.core.reference` — byte-identical output, useful for
        verification runs and A/B debugging.
    allow_migration / allow_deletion:
        Packing policy flags, passed to the packer (Algorithm 2's repack and
        delete-lower-ranks prongs).
    monitor_interval:
        Seconds between observations in a real deployment (15 s in the
        paper); informational for simulated backends, which drive the loop
        explicitly.
    incremental:
        Keep a persistent scratch state and node index across reconcile
        rounds so per-round cost follows churn rather than cluster size
        (see :mod:`repro.core.incremental`).  On by default — incremental
        rounds are byte-identical to full recomputes; set ``False`` to
        force the classic copy-and-repack path every round (the A/B
        baseline the replay benchmark measures against).  Only the fast
        stages support it; ``implementation="reference"`` always recomputes
        fully.
    incremental_dirty_threshold:
        Fraction of the cluster that may be dirty in one round before the
        incremental path falls back to a full recompute (large capacity
        moves make rebuilding cheaper than resyncing).
    """

    objective: OperatorObjective | str = "revenue"
    implementation: str = "fast"
    allow_migration: bool = True
    allow_deletion: bool = True
    monitor_interval: float = field(default=15.0)
    incremental: bool = True
    incremental_dirty_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.implementation not in IMPLEMENTATIONS:
            raise ValueError(
                f"implementation must be one of {IMPLEMENTATIONS}, got {self.implementation!r}"
            )
        if self.monitor_interval <= 0:
            raise ValueError("monitor_interval must be positive")
        if not 0.0 < self.incremental_dirty_threshold <= 1.0:
            raise ValueError("incremental_dirty_threshold must be in (0, 1]")
        # Fail fast on bad objective specs (instances pass through untouched).
        resolve_objective(self.objective)

    def resolved_objective(self) -> OperatorObjective:
        """The objective instance this config describes.

        Name specs (``"revenue"``) produce a fresh instance per call;
        instance specs return the exact instance, preserving any state the
        caller attached to it.
        """
        return resolve_objective(self.objective)
