"""Real-world application models: Overleaf and DeathStarBench HotelReservation."""

from repro.apps.base import AppTemplate, RequestType, resource_breakdown, retag_for_critical_service
from repro.apps.hotel_reservation import build_hotel_reservation
from repro.apps.loadgen import (
    LoadGenerator,
    LoadReport,
    MultiAppLoadRecorder,
    RequestSample,
    ThroughputTimeline,
    cloudlab_workload,
)
from repro.apps.overleaf import build_overleaf

__all__ = [
    "AppTemplate",
    "RequestType",
    "resource_breakdown",
    "retag_for_critical_service",
    "build_hotel_reservation",
    "LoadGenerator",
    "LoadReport",
    "MultiAppLoadRecorder",
    "RequestSample",
    "ThroughputTimeline",
    "cloudlab_workload",
    "build_overleaf",
]
