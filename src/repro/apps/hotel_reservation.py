"""HotelReservation (DeathStarBench) application model.

HotelReservation is a gRPC microservice benchmark.  Its frontend fans out to
search, reservation, profile, recommendation, user and rate services, with
geo behind search.  As discussed in §5 of the paper the stock application is
not crash-proof; the paper adds error handling so that optional downstream
calls (e.g. ``user`` during reservation, ``recommendation`` during search)
fail gracefully.  The ``reserve`` request models that partial degradation:
it still succeeds without ``user`` but its utility drops to 0.8 (Fig. 6f).

Stateful backends (MongoDB, memcached) run in a separate stateful cluster in
the paper's setup, so they are not part of this model.
"""

from __future__ import annotations

from repro.apps.base import AppTemplate, RequestType
from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.resources import Resources
from repro.criticality import CriticalityTag

#: (name, cpu per replica, memory per replica, criticality, replicas)
_MICROSERVICES: list[tuple[str, float, float, int, int]] = [
    ("frontend", 1.0, 0.75, 1, 3),
    ("search", 1.0, 0.75, 1, 3),
    ("geo", 1.0, 0.5, 1, 2),
    ("rate", 1.0, 0.5, 1, 2),
    ("reservation", 1.0, 0.75, 2, 3),
    ("profile", 1.0, 0.5, 3, 2),
    ("user", 0.5, 0.5, 4, 2),
    ("recommendation", 0.5, 0.5, 5, 2),
]

_EDGES: list[tuple[str, str]] = [
    ("frontend", "search"),
    ("frontend", "reservation"),
    ("frontend", "profile"),
    ("frontend", "recommendation"),
    ("frontend", "user"),
    ("search", "geo"),
    ("search", "rate"),
    ("reservation", "user"),
    ("recommendation", "profile"),
]


def build_hotel_reservation(
    name: str = "hotelreservation",
    price_per_unit: float = 1.0,
    critical_service: str = "search",
    scale: float = 1.0,
) -> AppTemplate:
    """Build a HotelReservation instance (the paper runs HR0 and HR1)."""
    microservices = [
        Microservice(
            name=ms_name,
            resources=Resources(cpu=cpu * scale, memory=mem * scale),
            criticality=CriticalityTag(level),
            replicas=replicas,
        )
        for ms_name, cpu, mem, level, replicas in _MICROSERVICES
    ]
    application = Application.from_microservices(
        name,
        microservices,
        dependency_edges=_EDGES,
        price_per_unit=price_per_unit,
        critical_service=critical_service,
    )
    request_types = {
        "search": RequestType(
            name="search",
            microservices=("frontend", "search", "geo", "rate"),
            optional_microservices=("profile",),
            rate=30.0,
            utility=1.0,
            degraded_utility=0.9,
            latency_ms=53.26,
        ),
        "reserve": RequestType(
            name="reserve",
            microservices=("frontend", "reservation", "rate"),
            optional_microservices=("user",),
            rate=12.0,
            utility=1.0,
            degraded_utility=0.8,
            latency_ms=55.33,
        ),
        "recommend": RequestType(
            name="recommend",
            microservices=("frontend", "recommendation", "profile"),
            rate=8.0,
            utility=0.4,
            degraded_utility=0.4,
            latency_ms=47.43,
        ),
        "login": RequestType(
            name="login",
            microservices=("frontend", "user"),
            rate=5.0,
            utility=0.3,
            degraded_utility=0.3,
            latency_ms=41.8,
        ),
    }
    return AppTemplate(application=application, request_types=request_types)
