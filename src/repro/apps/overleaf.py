"""Overleaf application model.

Overleaf is a collaborative LaTeX editor composed of 14 microservices (§3.2).
Edits flow over web sockets through ``real-time`` and ``document-updater``;
compiles go through ``clsi``; most other features (chat, tags, spelling,
history/versions) are independent REST services that can be turned off
without breaking the core editing experience — which is what makes Overleaf
diagonal-scaling compliant out of the box.

Resource numbers are calibrated so that the CloudLab-style workload
(:func:`repro.apps.loadgen.cloudlab_workload`) reproduces the roughly 60:40
split between critical (C1) and lower-criticality resources reported in
Appendix F.1 (Figure 9), with the whole workload filling about 70 % of a
200-CPU cluster.
"""

from __future__ import annotations

from repro.apps.base import AppTemplate, RequestType
from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.resources import Resources
from repro.criticality import CriticalityTag

#: The 14 Overleaf microservices with (cpu, memory, criticality, replicas).
#: Resources are per replica; busy services run several replicas, as they do
#: in the paper's CloudLab deployment.
_MICROSERVICES: list[tuple[str, float, float, int, int]] = [
    ("web", 1.5, 1.5, 1, 3),               # main frontend / API gateway
    ("real-time", 1.0, 0.75, 1, 3),        # websocket edit sessions
    ("document-updater", 1.0, 0.75, 1, 3), # operational-transform edit pipeline
    ("docstore", 1.0, 1.0, 1, 2),          # document persistence API (stateless tier)
    ("filestore", 1.0, 1.0, 2, 2),         # binary/image uploads
    ("clsi", 1.5, 1.5, 2, 3),              # LaTeX compile service
    ("track-changes", 1.0, 1.0, 3, 2),     # versioning / history
    ("project-history", 1.0, 1.0, 3, 2),   # project-level history
    ("spelling", 1.0, 1.0, 4, 2),          # spell-check
    ("chat", 0.5, 0.5, 5, 2),              # in-project chat
    ("tags", 0.5, 0.5, 5, 2),              # project tagging / folders
    ("notifications", 0.5, 0.5, 5, 2),     # in-app notifications
    ("contacts", 0.5, 0.5, 5, 2),          # collaborator auto-complete
    ("references", 0.5, 0.5, 4, 2),        # bibliography indexing
]

#: Caller -> callee edges of the Overleaf dependency graph.
_EDGES: list[tuple[str, str]] = [
    ("web", "real-time"),
    ("web", "docstore"),
    ("web", "filestore"),
    ("web", "clsi"),
    ("web", "spelling"),
    ("web", "chat"),
    ("web", "tags"),
    ("web", "notifications"),
    ("web", "contacts"),
    ("web", "references"),
    ("web", "track-changes"),
    ("web", "project-history"),
    ("real-time", "document-updater"),
    ("document-updater", "docstore"),
    ("document-updater", "track-changes"),
    ("clsi", "filestore"),
]


def build_overleaf(
    name: str = "overleaf",
    price_per_unit: float = 1.0,
    critical_service: str = "document-edits",
    scale: float = 1.0,
) -> AppTemplate:
    """Build an Overleaf application instance.

    Parameters
    ----------
    name:
        Instance name (the CloudLab experiment runs overleaf0/1/2).
    price_per_unit:
        Willingness-to-pay used by revenue-based objectives.
    critical_service:
        Which request type defines this instance's steady state — the paper
        uses document-edits, versions and downloads for the three instances.
    scale:
        Multiplier applied to every microservice's resources, so instances
        can differ in load (the paper tweaks load-generator parameters per
        instance).
    """
    microservices = [
        Microservice(
            name=ms_name,
            resources=Resources(cpu=cpu * scale, memory=mem * scale),
            criticality=CriticalityTag(level),
            replicas=replicas,
        )
        for ms_name, cpu, mem, level, replicas in _MICROSERVICES
    ]
    application = Application.from_microservices(
        name,
        microservices,
        dependency_edges=_EDGES,
        price_per_unit=price_per_unit,
        critical_service=critical_service,
    )
    request_types = {
        "document-edits": RequestType(
            name="document-edits",
            microservices=("web", "real-time", "document-updater", "docstore"),
            optional_microservices=("track-changes",),
            rate=40.0,
            utility=1.0,
            degraded_utility=0.95,
            latency_ms=141.0,
        ),
        "compile": RequestType(
            name="compile",
            microservices=("web", "clsi", "filestore"),
            rate=6.0,
            utility=0.8,
            degraded_utility=0.8,
            latency_ms=4317.9,
        ),
        "spell-check": RequestType(
            name="spell-check",
            microservices=("web", "spelling"),
            rate=20.0,
            utility=0.4,
            degraded_utility=0.4,
            latency_ms=2296.7,
        ),
        "versions": RequestType(
            name="versions",
            microservices=("web", "track-changes", "project-history", "docstore"),
            rate=8.0,
            utility=0.6,
            degraded_utility=0.6,
            latency_ms=180.0,
        ),
        "downloads": RequestType(
            name="downloads",
            microservices=("web", "filestore", "docstore"),
            rate=5.0,
            utility=0.6,
            degraded_utility=0.6,
            latency_ms=220.0,
        ),
        "chat": RequestType(
            name="chat",
            microservices=("web", "chat"),
            rate=4.0,
            utility=0.2,
            degraded_utility=0.2,
            latency_ms=90.0,
        ),
        "project-management": RequestType(
            name="project-management",
            microservices=("web", "tags", "notifications", "contacts"),
            rate=3.0,
            utility=0.2,
            degraded_utility=0.2,
            latency_ms=120.0,
        ),
    }
    return AppTemplate(application=application, request_types=request_types)
