"""Shared helpers for the real-world application models.

Each application model describes its microservices (resources, criticality
tags, replicas), its dependency graph, and the *request types* end users
issue.  A request type maps to the set of microservices that must be serving
for the request to succeed, plus a utility value ("harvest", following Fox &
Brewer 1999 as the paper does) so degraded operation can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cluster.application import Application


@dataclass(frozen=True, slots=True)
class RequestType:
    """One kind of end-user request an application serves.

    Attributes
    ----------
    name:
        Request type name (e.g. ``"document-edits"``).
    microservices:
        Microservices that must all be serving for the request to succeed.
    optional_microservices:
        Microservices that enrich the response but whose absence only lowers
        utility (e.g. the ``user`` service for HotelReservation's "reserve"
        — reservations still work as a guest, utility drops to 0.8).
    rate:
        Nominal request rate (requests/second) under the standard load mix.
    utility:
        Utility earned by a fully successful request.
    degraded_utility:
        Utility earned when required microservices are up but one or more
        optional microservices are down.
    latency_ms:
        Nominal P95 latency when fully served (used for Table 1).
    """

    name: str
    microservices: tuple[str, ...]
    optional_microservices: tuple[str, ...] = ()
    rate: float = 1.0
    utility: float = 1.0
    degraded_utility: float = 1.0
    latency_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if not self.microservices:
            raise ValueError("a request type needs at least one microservice")


@dataclass
class AppTemplate:
    """A reusable application blueprint: application + request types."""

    application: Application
    request_types: dict[str, RequestType] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for request in self.request_types.values():
            for ms in (*request.microservices, *request.optional_microservices):
                if ms not in self.application:
                    raise ValueError(
                        f"request type {request.name!r} references unknown microservice {ms!r}"
                    )

    @property
    def name(self) -> str:
        return self.application.name

    def request(self, name: str) -> RequestType:
        return self.request_types[name]

    def critical_request(self) -> RequestType:
        """The request type defining the application's steady state (Table 4)."""
        critical = self.application.critical_service
        if critical is None or critical not in self.request_types:
            # Fall back to the highest-rate request type.
            return max(self.request_types.values(), key=lambda r: r.rate)
        return self.request_types[critical]

    def microservices_for(self, request_names: Iterable[str]) -> set[str]:
        needed: set[str] = set()
        for name in request_names:
            request = self.request_types[name]
            needed.update(request.microservices)
        return needed

    def rename(self, new_name: str, price_per_unit: float | None = None) -> "AppTemplate":
        """Clone this template under a new application-instance name.

        The CloudLab experiment runs several instances of the same app
        (Overleaf0..2, HR0..1) with different critical services and prices;
        renaming keeps microservice names intact while giving each instance
        its own namespace.
        """
        app = self.application
        clone = Application(
            name=new_name,
            microservices=dict(app.microservices),
            dependency_graph=app.dependency_graph.copy() if app.dependency_graph is not None else None,
            price_per_unit=price_per_unit if price_per_unit is not None else app.price_per_unit,
            critical_service=app.critical_service,
        )
        return AppTemplate(application=clone, request_types=dict(self.request_types))

    def with_critical_service(self, request_name: str) -> "AppTemplate":
        """Clone with a different business-critical request type."""
        if request_name not in self.request_types:
            raise KeyError(request_name)
        app = self.application
        clone = Application(
            name=app.name,
            microservices=dict(app.microservices),
            dependency_graph=app.dependency_graph.copy() if app.dependency_graph is not None else None,
            price_per_unit=app.price_per_unit,
            critical_service=request_name,
        )
        return AppTemplate(application=clone, request_types=dict(self.request_types))


def retag_for_critical_service(template: AppTemplate) -> AppTemplate:
    """Re-assign criticality tags so the critical request's services are C1.

    This mirrors the paper's CloudLab tagging methodology (§6.1): the
    microservices supporting the designated critical service are tagged C1;
    everything else keeps its (lower) criticality, or is demoted to at most
    C2 if it was previously C1.
    """
    from repro.criticality import CriticalityTag

    critical = template.critical_request()
    critical_set = set(critical.microservices)
    tags: dict[str, CriticalityTag] = {}
    for name, ms in template.application.microservices.items():
        if name in critical_set:
            tags[name] = CriticalityTag(1)
        elif ms.criticality.level == 1:
            tags[name] = CriticalityTag(2)
        else:
            tags[name] = ms.criticality
    retagged = template.application.with_tags(tags)
    return AppTemplate(application=retagged, request_types=dict(template.request_types))


def resource_breakdown(templates: Mapping[str, AppTemplate]) -> dict[str, float]:
    """Aggregate CPU demand per criticality level across app instances (Fig. 9)."""
    breakdown: dict[str, float] = {}
    for template in templates.values():
        for tag, resources in template.application.demand_by_criticality().items():
            breakdown[str(tag)] = breakdown.get(str(tag), 0.0) + resources.cpu
    return dict(sorted(breakdown.items()))
