"""Load generation and utility ("harvest/yield") accounting.

The paper drives Overleaf with Sieve/ShareLatex load generators and
HotelReservation with wrk2, and augments them to attach a utility score to
each successful request (§6.1).  This module reproduces that measurement
path in-process: given which microservices are currently serving, the
generator reports per-request-type throughput (requests/second), per-request
utility, and P95 latency — everything Figures 6c-6f and Table 1 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.apps.base import AppTemplate, RequestType, retag_for_critical_service
from repro.apps.hotel_reservation import build_hotel_reservation
from repro.apps.overleaf import build_overleaf

#: Latency speed-up applied when optional downstream calls are pruned —
#: gRPC/HTTP2 fails fast on missing endpoints, so P95 drops slightly
#: (Table 1: HR "reserve" 55.33 ms -> 50.11 ms).
_FAIL_FAST_FACTOR = 0.905


@dataclass(frozen=True, slots=True)
class RequestSample:
    """Observed behaviour of one request type over a sampling window."""

    request: str
    offered_rps: float
    served_rps: float
    utility: float
    p95_latency_ms: float | None

    @property
    def success_ratio(self) -> float:
        if self.offered_rps <= 0:
            return 0.0
        return self.served_rps / self.offered_rps


@dataclass
class LoadReport:
    """All request types of one application instance at one point in time."""

    app: str
    time: float
    samples: dict[str, RequestSample] = field(default_factory=dict)

    @property
    def total_served_rps(self) -> float:
        return sum(s.served_rps for s in self.samples.values())

    @property
    def total_utility_rate(self) -> float:
        """Utility earned per second (sum of served rate × per-request utility)."""
        return sum(s.served_rps * s.utility for s in self.samples.values())

    def sample(self, request: str) -> RequestSample:
        return self.samples[request]

    def critical_service_available(self, critical_request: str) -> bool:
        sample = self.samples.get(critical_request)
        return sample is not None and sample.success_ratio >= 0.999


class LoadGenerator:
    """Evaluates a template's request mix against the set of serving services."""

    def __init__(self, template: AppTemplate) -> None:
        self.template = template

    def evaluate_request(self, request: RequestType, serving: Iterable[str]) -> RequestSample:
        serving_set = set(serving)
        required_up = all(ms in serving_set for ms in request.microservices)
        if not required_up:
            return RequestSample(
                request=request.name,
                offered_rps=request.rate,
                served_rps=0.0,
                utility=0.0,
                p95_latency_ms=None,
            )
        optional_up = all(ms in serving_set for ms in request.optional_microservices)
        utility = request.utility if optional_up else request.degraded_utility
        latency = request.latency_ms if optional_up else request.latency_ms * _FAIL_FAST_FACTOR
        return RequestSample(
            request=request.name,
            offered_rps=request.rate,
            served_rps=request.rate,
            utility=utility,
            p95_latency_ms=latency,
        )

    def report(self, serving: Iterable[str], time: float = 0.0) -> LoadReport:
        serving_set = set(serving)
        report = LoadReport(app=self.template.name, time=time)
        for request in self.template.request_types.values():
            report.samples[request.name] = self.evaluate_request(request, serving_set)
        return report


@dataclass
class ThroughputTimeline:
    """Time series of load reports for one application (Figures 6a-6f)."""

    app: str
    reports: list[LoadReport] = field(default_factory=list)

    def record(self, report: LoadReport) -> None:
        self.reports.append(report)

    def series(self, request: str) -> list[tuple[float, float]]:
        """(time, served RPS) points for one request type."""
        return [(r.time, r.samples[request].served_rps) for r in self.reports if request in r.samples]

    def utility_series(self, request: str) -> list[tuple[float, float]]:
        return [(r.time, r.samples[request].utility) for r in self.reports if request in r.samples]

    def availability_series(self, critical_request: str) -> list[tuple[float, bool]]:
        return [(r.time, r.critical_service_available(critical_request)) for r in self.reports]

    def downtime(self, critical_request: str) -> float:
        """Total time (in recorded steps) the critical service was unavailable."""
        total = 0.0
        points = self.availability_series(critical_request)
        for (t0, up), (t1, _) in zip(points, points[1:]):
            if not up:
                total += t1 - t0
        return total


class MultiAppLoadRecorder:
    """Records timelines for several application instances at once."""

    def __init__(self, templates: Mapping[str, AppTemplate]) -> None:
        self.templates = dict(templates)
        self.generators = {name: LoadGenerator(t) for name, t in self.templates.items()}
        self.timelines = {name: ThroughputTimeline(app=name) for name in self.templates}

    def observe(self, time: float, serving_lookup: Callable[[str], Iterable[str]]) -> dict[str, LoadReport]:
        """Sample every application at ``time``.

        ``serving_lookup(app_name)`` must return the microservices currently
        serving for that application (e.g. ``KubeCluster.serving_microservices``).
        """
        reports = {}
        for name, generator in self.generators.items():
            report = generator.report(serving_lookup(name), time=time)
            self.timelines[name].record(report)
            reports[name] = report
        return reports

    def apps_meeting_goal(self, time_index: int = -1) -> int:
        """How many applications meet their critical-service goal at a sample."""
        count = 0
        for name, timeline in self.timelines.items():
            if not timeline.reports:
                continue
            critical = self.templates[name].critical_request().name
            report = timeline.reports[time_index]
            if report.critical_service_available(critical):
                count += 1
        return count


def cloudlab_workload(total_capacity_cpu: float = 200.0) -> dict[str, AppTemplate]:
    """The five application instances of the CloudLab experiment (Table 4).

    Three Overleaf instances (critical services: document-edits, versions,
    downloads) and two HotelReservation instances (search, reserve), scaled
    so their aggregate demand is roughly 70 % of the cluster capacity with
    differing per-instance resource mixes — matching Appendix F.1.
    """
    specs = [
        ("overleaf0", build_overleaf, "document-edits", 1.20, 3.0),
        ("overleaf1", build_overleaf, "versions", 1.00, 2.0),
        ("overleaf2", build_overleaf, "downloads", 1.10, 1.5),
        ("hr0", build_hotel_reservation, "search", 1.30, 2.5),
        ("hr1", build_hotel_reservation, "reserve", 1.10, 1.0),
    ]
    nominal_total = 0.0
    built: dict[str, AppTemplate] = {}
    for name, builder, critical, scale, price in specs:
        template = builder(name=name, price_per_unit=price, critical_service=critical, scale=scale)
        template = retag_for_critical_service(template)
        built[name] = template
        nominal_total += template.application.total_demand().cpu
    # Normalize so the workload fills ~70 % of the requested capacity.
    target = 0.70 * total_capacity_cpu
    factor = target / nominal_total if nominal_total > 0 else 1.0
    if abs(factor - 1.0) > 0.01:
        rescaled: dict[str, AppTemplate] = {}
        for name, (_, builder, critical, scale, price) in zip(built, specs):
            template = builder(
                name=name,
                price_per_unit=price,
                critical_service=critical,
                scale=scale * factor,
            )
            rescaled[name] = retag_for_critical_service(template)
        return rescaled
    return built
