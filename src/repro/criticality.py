"""Criticality tags — the application-facing interface of Phoenix.

Applications express their resilience requirements by tagging each container
with a criticality level ``C1, C2, ... Cn`` where a *lower* number means
*higher* importance (§3 of the paper).  Untagged containers default to the
highest criticality, which makes partial adoption safe (§5, "Partial
Tagging"): an operator can never accidentally turn off something the
application did not explicitly mark as degradable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

#: Number of criticality levels used by default throughout the repo and in
#: the paper's experiments (C1 .. C10).  Tags beyond this are still valid.
DEFAULT_LEVELS = 10

_TAG_RE = re.compile(r"^[Cc](\d+)$")


@dataclass(frozen=True, order=False, slots=True)
class CriticalityTag:
    """A criticality level.  ``CriticalityTag(1)`` is the most critical.

    Ordering is defined so that *higher priority sorts first*:
    ``CriticalityTag(1) < CriticalityTag(2)``.
    """

    level: int

    def __post_init__(self) -> None:
        if not isinstance(self.level, int) or isinstance(self.level, bool):
            raise TypeError(f"criticality level must be an int, got {self.level!r}")
        if self.level < 1:
            raise ValueError(f"criticality level must be >= 1, got {self.level}")

    # -- construction -------------------------------------------------------
    @classmethod
    def parse(cls, value: "CriticalityTag | int | str") -> "CriticalityTag":
        """Parse a tag from an int (``1``), string (``"C1"``/``"c1"``) or tag."""
        if isinstance(value, CriticalityTag):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(value)
        if isinstance(value, str):
            match = _TAG_RE.match(value.strip())
            if match:
                return cls(int(match.group(1)))
            if value.strip().isdigit():
                return cls(int(value.strip()))
        raise ValueError(f"cannot parse criticality tag from {value!r}")

    # -- ordering ------------------------------------------------------------
    def __lt__(self, other: "CriticalityTag") -> bool:
        return self.level < other.level

    def __le__(self, other: "CriticalityTag") -> bool:
        return self.level <= other.level

    def __gt__(self, other: "CriticalityTag") -> bool:
        return self.level > other.level

    def __ge__(self, other: "CriticalityTag") -> bool:
        return self.level >= other.level

    def is_more_critical_than(self, other: "CriticalityTag") -> bool:
        """True when this tag outranks ``other`` (lower level number)."""
        return self.level < other.level

    def __str__(self) -> str:
        return f"C{self.level}"


#: The default tag for untagged containers.
HIGHEST_CRITICALITY = CriticalityTag(1)

#: Lowest commonly used tag (good-to-have features).
LOWEST_DEFAULT_CRITICALITY = CriticalityTag(DEFAULT_LEVELS)


def normalize_tags(
    tags: Mapping[str, "CriticalityTag | int | str"] | None,
    names: Iterable[str],
) -> dict[str, CriticalityTag]:
    """Produce a complete name -> tag mapping for ``names``.

    Missing or ``None`` entries default to :data:`HIGHEST_CRITICALITY`,
    implementing the paper's partial-tagging rule.
    """
    tags = dict(tags or {})
    normalized: dict[str, CriticalityTag] = {}
    for name in names:
        raw = tags.get(name)
        normalized[name] = HIGHEST_CRITICALITY if raw is None else CriticalityTag.parse(raw)
    return normalized


def criticality_breakdown(
    tagged_resources: Mapping[CriticalityTag, float],
) -> dict[str, float]:
    """Return the fraction of resources at each criticality level.

    Used to regenerate Figure 9 (resource breakdown across criticalities).
    """
    total = sum(tagged_resources.values())
    if total <= 0:
        return {str(tag): 0.0 for tag in tagged_resources}
    return {str(tag): value / total for tag, value in sorted(tagged_resources.items())}
