"""repro — reproduction of "Cooperative Graceful Degradation in Containerized
Clouds" (Phoenix + AdaptLab, ASPLOS 2025).

Public API highlights
---------------------
* :mod:`repro.core` — the Phoenix planner, scheduler, LP formulations and
  controller, plus criticality tags and operator objectives.
* :mod:`repro.cluster` — the cluster substrate (nodes, microservices,
  applications, cluster state).
* :mod:`repro.kubesim` — a Kubernetes-like discrete simulator used for the
  CloudLab-style experiments.
* :mod:`repro.apps` — models of Overleaf and DeathStarBench HotelReservation
  with load generators and utility accounting.
* :mod:`repro.adaptlab` — the AdaptLab resilience benchmarking platform.
* :mod:`repro.chaos` — the chaos-testing service for criticality tags.
"""

from repro.cluster import (
    Application,
    ClusterState,
    Microservice,
    Node,
    ReplicaId,
    Resources,
    build_uniform_cluster,
)
from repro.core import (
    CriticalityTag,
    FairnessObjective,
    PhoenixController,
    PhoenixPlanner,
    PhoenixScheduler,
    RevenueObjective,
)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ClusterState",
    "Microservice",
    "Node",
    "ReplicaId",
    "Resources",
    "build_uniform_cluster",
    "CriticalityTag",
    "FairnessObjective",
    "PhoenixController",
    "PhoenixPlanner",
    "PhoenixScheduler",
    "RevenueObjective",
    "__version__",
]
