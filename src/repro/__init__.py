"""repro — reproduction of "Cooperative Graceful Degradation in Containerized
Clouds" (Phoenix + AdaptLab, ASPLOS 2025).

Public API highlights
---------------------
* :mod:`repro.api` — **the** public API: the :class:`PhoenixEngine` facade,
  :class:`EngineConfig`, pluggable pipeline stages and the typed event
  stream.  Start here: ``repro.api.engine("revenue")``.
* :mod:`repro.core` — the Phoenix planner, scheduler, LP formulations and
  controller, plus criticality tags and operator objectives.
* :mod:`repro.cluster` — the cluster substrate (nodes, microservices,
  applications, cluster state).
* :mod:`repro.kubesim` — a Kubernetes-like discrete simulator used for the
  CloudLab-style experiments.
* :mod:`repro.apps` — models of Overleaf and DeathStarBench HotelReservation
  with load generators and utility accounting.
* :mod:`repro.adaptlab` — the AdaptLab resilience benchmarking platform.
* :mod:`repro.chaos` — the chaos-testing service for criticality tags.
* :mod:`repro.traces` — the scenario subsystem: versioned JSONL traces,
  seeded generators, fleet scenarios and the :class:`TraceReplayer`.
* :mod:`repro.fleet` — the federation layer: :class:`FleetEngine` composes
  many per-cell engines into one sharded, parallel control plane with
  cross-cell capacity spillover.
* :mod:`repro.cli` — the ``python -m repro`` command line (sweeps, trace
  replay, fleet scenarios, chaos checks, figure benchmarks).
"""

from repro.adaptlab import default_scheme_suite, run_failure_sweep, summarize
from repro.api import EngineConfig, PhoenixEngine, SchemeAdapter, backend_for, engine
from repro.fleet import FleetConfig, FleetEngine, FleetReplayer
from repro.cluster import (
    Application,
    ClusterState,
    Microservice,
    Node,
    ReplicaId,
    Resources,
    build_uniform_cluster,
)
from repro.core import (
    CriticalityTag,
    FairnessObjective,
    PhoenixController,
    PhoenixPlanner,
    PhoenixScheduler,
    RevenueObjective,
)
from repro.traces import Trace, TraceReplayer, fleet_scenario

__version__ = "1.3.0"

__all__ = [
    "default_scheme_suite",
    "run_failure_sweep",
    "summarize",
    "EngineConfig",
    "PhoenixEngine",
    "SchemeAdapter",
    "backend_for",
    "engine",
    "FleetConfig",
    "FleetEngine",
    "FleetReplayer",
    "Application",
    "ClusterState",
    "Microservice",
    "Node",
    "ReplicaId",
    "Resources",
    "build_uniform_cluster",
    "CriticalityTag",
    "FairnessObjective",
    "PhoenixController",
    "PhoenixPlanner",
    "PhoenixScheduler",
    "RevenueObjective",
    "Trace",
    "TraceReplayer",
    "fleet_scenario",
    "__version__",
]
