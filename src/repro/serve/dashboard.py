"""The single-file dashboard served at ``/`` — no build step, no assets.

One HTML string: connects to ``/ws``, renders the live event feed and
per-cell healthy-capacity bars from ``Hello``/``RoundCommitted`` messages
(which carry full cell-summary records), and shows the admission counters
polled from ``/metrics``.  Deliberately plain: the dashboard is an
observability window onto the control plane, not a product surface.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve — fleet control plane</title>
<style>
  body { font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 0; background: #111418; color: #d8dee4; }
  header { padding: 10px 16px; background: #1b2026; display: flex;
           gap: 24px; align-items: baseline; border-bottom: 1px solid #2a313a; }
  header h1 { font-size: 14px; margin: 0; color: #8fd3ff; }
  header .stat b { color: #ffd479; }
  main { display: grid; grid-template-columns: 340px 1fr; gap: 0; }
  #cells { padding: 12px 16px; border-right: 1px solid #2a313a; }
  .cell { margin-bottom: 14px; }
  .cell .name { color: #9ecbff; }
  .bar { height: 10px; background: #30363d; border-radius: 3px;
         overflow: hidden; margin: 3px 0; }
  .bar span { display: block; height: 100%; background: #3fb950; }
  .bar.degraded span { background: #f85149; }
  .cell small { color: #8b949e; }
  #feed { padding: 12px 16px; max-height: calc(100vh - 60px); overflow-y: auto; }
  #feed div { white-space: pre-wrap; border-bottom: 1px solid #1b2026;
              padding: 2px 0; }
  #feed .kind { color: #d2a8ff; }
  .off { color: #f85149; }
</style>
</head>
<body>
<header>
  <h1>repro serve</h1>
  <span class="stat">round <b id="round">–</b></span>
  <span class="stat">admitted <b id="admitted">–</b></span>
  <span class="stat">rejected <b id="rejected">–</b></span>
  <span class="stat">queue <b id="queue">–</b></span>
  <span class="stat">round p50/p99 <b id="latency">–</b></span>
  <span class="stat" id="link">connecting…</span>
</header>
<main>
  <section id="cells"></section>
  <section id="feed"></section>
</main>
<script>
"use strict";
const feed = document.getElementById("feed");
const cells = document.getElementById("cells");
const FEED_LIMIT = 200;

function renderCells(records) {
  cells.innerHTML = "";
  for (const cell of records) {
    const frac = cell.capacity_cpu > 0 ? cell.healthy_cpu / cell.capacity_cpu : 0;
    const div = document.createElement("div");
    div.className = "cell";
    div.innerHTML =
      '<span class="name"></span> ' +
      '<small></small>' +
      '<div class="bar' + (cell.degraded ? " degraded" : "") +
      '"><span style="width:' + (100 * frac).toFixed(1) + '%"></span></div>' +
      '<small>failed ' + cell.failed_count + ' · revenue ' +
      cell.revenue.toFixed(3) + ' · actions ' + cell.actions + '</small>';
    div.querySelector(".name").textContent = cell.cell;
    div.querySelector("small").textContent = (100 * frac).toFixed(1) + "% healthy";
    cells.appendChild(div);
  }
}

function pushFeed(message) {
  const div = document.createElement("div");
  const kind = message.event || "?";
  const rest = Object.entries(message)
    .filter(([k]) => k !== "event" && k !== "cells")
    .map(([k, v]) => k + "=" + JSON.stringify(v)).join(" ");
  div.innerHTML = '<span class="kind"></span> ';
  div.querySelector(".kind").textContent = kind;
  div.appendChild(document.createTextNode(rest));
  feed.prepend(div);
  while (feed.childNodes.length > FEED_LIMIT) feed.removeChild(feed.lastChild);
}

function connect() {
  const ws = new WebSocket("ws://" + location.host + "/ws");
  const link = document.getElementById("link");
  ws.onopen = () => { link.textContent = "live"; link.className = "stat"; };
  ws.onclose = () => {
    link.textContent = "disconnected — retrying";
    link.className = "stat off";
    setTimeout(connect, 2000);
  };
  ws.onmessage = (frame) => {
    const message = JSON.parse(frame.data);
    if (message.cells) renderCells(message.cells);
    if (message.round !== undefined)
      document.getElementById("round").textContent = message.round;
    pushFeed(message);
  };
}

async function pollMetrics() {
  try {
    const metrics = await (await fetch("/metrics")).json();
    document.getElementById("admitted").textContent = metrics.admitted;
    document.getElementById("rejected").textContent = metrics.rejected;
    document.getElementById("queue").textContent = metrics.pending;
    const rs = metrics.round_seconds || {};
    document.getElementById("latency").textContent =
      rs.count ? (1000 * rs.p50).toFixed(1) + "ms / " +
                 (1000 * rs.p99).toFixed(1) + "ms" : "–";
  } catch (err) { /* server restarting; the ws handler drives reconnect */ }
  setTimeout(pollMetrics, 2000);
}

connect();
pollMetrics();
</script>
</body>
</html>
"""
