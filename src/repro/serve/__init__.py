"""repro.serve — a live async control plane over the fleet.

The layer that turns the repository's replay engines into a *served*
system: one stdlib-only asyncio server (hand-rolled HTTP/1.1 and
WebSocket, like the fleet's wire codec) owning one
:class:`~repro.fleet.engine.FleetEngine`, admitting concurrent mutations
through a deterministic batcher, streaming the typed event bus, and
recording every admitted batch as a replayable schema-v1 trace.

Entry points: ``python -m repro serve`` boots a server,
``python -m repro serve-load`` drives one open-loop; programmatic use goes
through :class:`ControlPlane` and :func:`run_load`.
"""

from repro.serve.admission import AdmissionBatcher, AdmissionFull, canonical_key
from repro.serve.app import (
    ControlPlane,
    ServeCrash,
    build_fleet,
    event_record,
    percentiles,
)
from repro.serve.http1 import HttpConnection, HttpError
from repro.serve.loadgen import run_load
from repro.serve.session import SessionRecorder, fleet_digest, state_digest
from repro.serve.wal import WalError, WriteAheadLog, resume_control_plane
from repro.serve.websocket import WebSocketClient, WebSocketError

__all__ = [
    "AdmissionBatcher",
    "AdmissionFull",
    "ControlPlane",
    "HttpConnection",
    "HttpError",
    "ServeCrash",
    "SessionRecorder",
    "WalError",
    "WebSocketClient",
    "WebSocketError",
    "WriteAheadLog",
    "build_fleet",
    "canonical_key",
    "event_record",
    "fleet_digest",
    "percentiles",
    "resume_control_plane",
    "run_load",
    "state_digest",
]
