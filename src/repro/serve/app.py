"""The live control plane: one asyncio server owning one fleet.

:class:`ControlPlane` turns a :class:`~repro.fleet.engine.FleetEngine`
from a replay substrate into a *served* system: HTTP clients POST
mutations (trace-event records, schema v1), GET summaries/metrics/config,
and subscribe to the typed event bus over a WebSocket — all on one port,
all stdlib.

Determinism contract
--------------------
The round driver is the **only** coroutine that touches the fleet.  It
drains the admission batcher (canonical order, see
:mod:`repro.serve.admission`) and folds each batch exactly the way
:class:`~repro.fleet.replay.FleetReplayer`'s serial executor folds one
timeline step: :func:`~repro.fleet.engine.step_cells` → bus emissions →
``plan_spillover`` → ``apply_spillover`` → ``commit_spillover`` → one
:class:`~repro.fleet.replay.FleetReplayStep` at ``time = round index``.
Every admitted batch is also appended to the session recorder, so replaying
``recorder.scenario()`` offline through a ``FleetReplayer`` over an
identically built fleet reproduces the served fleet state (equal
:func:`~repro.serve.session.fleet_digest`) and the served step records,
byte for byte.  That equivalence is asserted by the tests and the CI
serve-smoke job, not just promised here.

Engine rounds run synchronously inside the driver (single-threaded
asyncio), so admissions only accumulate *between* rounds — which is what
makes "whatever queued during round N becomes batch N+1" a complete
description of batching.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time as _time
from typing import Mapping

from repro import obs
from repro.fleet.checkpoint import save_checkpoint
from repro.fleet.engine import FleetEngine, step_cells
from repro.fleet.events import CellEvent, CellReconciled
from repro.fleet.replay import FleetReplayStep
from repro.fleet.summary import (
    fleet_availability,
    fleet_revenue,
    fleet_utilization,
    is_clone,
)
from repro.api.events import EngineEvent, FailureDetected, RecoveryDetected
from repro.traces.schema import TraceError, parse_event

from repro.serve.admission import AdmissionBatcher, AdmissionFull
from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.http1 import (
    HttpError,
    HttpRequest,
    json_body,
    read_request,
    write_response,
)
from repro.serve.session import SessionRecorder, fleet_digest
from repro.serve.websocket import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    accept_key,
    encode_frame,
    read_frame,
    text_frame,
)

#: Per-subscriber event queue depth; a slow reader drops, never blocks rounds.
SUBSCRIBER_QUEUE = 512


class ServeCrash(RuntimeError):
    """Injected control-plane crash (see :class:`repro.chaos.infra.FaultPlan`).

    Raised by the round driver *after* the batch is journaled but *before*
    it applies — the exact window the WAL recovery path must cover.  Only
    fault plans raise this; production code never does.
    """


def build_fleet(
    *,
    cells: int = 3,
    nodes_per_cell: int = 40,
    apps: int = 4,
    tagging: str = "service-p90",
    resource_model: str = "cpm",
    utilization: float = 0.7,
    env_seed: int = 2025,
    objective: str = "revenue",
    spillover: str = "packed",
) -> FleetEngine:
    """A converged fleet from AdaptLab environments (cell ``i`` ← seed+i).

    The same construction the ``repro fleet`` CLI commands use — and the
    construction the offline-equivalence check must repeat, so the served
    ``/config`` endpoint echoes exactly these parameters back.
    """
    from repro.adaptlab import build_environment
    from repro.fleet import FleetConfig

    environments = [
        build_environment(
            node_count=nodes_per_cell,
            n_apps=apps,
            tagging_scheme=tagging,
            resource_model=resource_model,
            target_utilization=utilization,
            seed=env_seed + index,
        )
        for index in range(cells)
    ]
    config = FleetConfig(cells=cells, objective=objective, spillover=spillover)
    fleet = FleetEngine(config, states=[env.fresh_state() for env in environments])
    fleet.reconcile(force=True, workers=1)
    return fleet


def event_record(event) -> dict[str, object]:
    """Serialize one typed bus event to a JSON-able record, recursively.

    :class:`CellEvent` is a pure cell-tag wrapper, so it is flattened: the
    inner event's record plus a ``cell`` key — subscribers see
    ``{"event": "FailureDetected", "cell": "cell-0", ...}`` rather than a
    nested envelope.
    """
    if isinstance(event, CellEvent):
        return event_record(event.event) | {"cell": event.cell}
    record: dict[str, object] = {"event": type(event).__name__}
    for spec in dataclasses.fields(event):
        record[spec.name] = _jsonable(getattr(event, spec.name))
    return record


def _jsonable(value):
    if isinstance(value, EngineEvent):
        return event_record(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            spec.name: _jsonable(getattr(value, spec.name))
            for spec in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def percentiles(samples: list[float]) -> dict[str, float]:
    """p50/p90/p99/p999 by nearest-rank over a sorted copy (stdlib only)."""
    if not samples:
        return {}
    ordered = sorted(samples)
    last = len(ordered) - 1

    def rank(q: float) -> float:
        return ordered[min(last, int(q * len(ordered)))]

    return {
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "p999": rank(0.999),
        "max": ordered[last],
        "count": len(ordered),
    }


class ControlPlane:
    """One served fleet: HTTP control surface + admission-batched rounds."""

    def __init__(
        self,
        fleet: FleetEngine,
        *,
        seed: int = 0,
        force_each_step: bool = False,
        queue_limit: int = 1024,
        retry_after: float = 1.0,
        fleet_params: dict[str, object] | None = None,
        wal=None,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        fault_plan=None,
    ) -> None:
        self.fleet = fleet
        self.seed = seed
        self.force_each_step = force_each_step
        #: Construction parameters echoed by ``/config`` so a client can
        #: rebuild the identical fleet for offline-replay verification.
        self.fleet_params = dict(fleet_params or {})
        #: Optional :class:`~repro.serve.wal.WriteAheadLog`; every admitted
        #: batch is journaled (fsync) before the round applies.
        self.wal = wal
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        #: Optional :class:`~repro.chaos.infra.FaultPlan` (duck-typed: only
        #: ``wal_crash_round`` / ``ws_drop_after`` are read here).
        self.fault_plan = fault_plan
        self._resumed = False
        self.batcher = AdmissionBatcher(queue_limit=queue_limit, retry_after=retry_after)
        self.recorder = SessionRecorder(
            fleet.cell_names,
            metadata={"generator": "serve", "seed": seed},
        )
        self.steps: list[FleetReplayStep] = []
        self.round_seconds: list[float] = []
        self._subscribers: dict[int, asyncio.Queue] = {}
        self._next_subscriber = 0
        self.dropped_events = 0
        self._server: asyncio.AbstractServer | None = None
        self._driver: asyncio.Task | None = None
        self._unsubscribe = None
        self._with_events = True
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle -------------------------------------------------------------

    def mark_resumed(self) -> None:
        """Flag this plane as WAL-recovered: :meth:`start` must keep the
        rebuilt fleet state instead of resetting it."""
        self._resumed = True

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Reset the fleet, start the round driver and bind the listener.

        The reset mirrors :meth:`FleetReplayer.run`'s entry (detector state
        forgotten, pool torn down), so a served session starts from the
        same point an offline replay of its recorded trace will.  A plane
        rebuilt by :func:`~repro.serve.wal.resume_control_plane` skips the
        reset — its state *is* the replayed session.
        """
        if self._server is not None:
            raise RuntimeError("control plane already started")
        if not self._resumed:
            self.fleet.reset()
        self._unsubscribe = self.fleet.events.subscribe(self._on_bus_event)
        self._with_events = bool(self.fleet.events)
        self._driver = asyncio.create_task(self._drive())
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop admitting, drain the driver, close the listener and streams."""
        self.batcher.close()
        if self._driver is not None:
            await self._driver
            self._driver = None
        self.batcher.fail_pending(RuntimeError("control plane shut down"))
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        for queue in list(self._subscribers.values()):
            _offer(queue, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.wal is not None:
            self.wal.close()
        self.fleet.close()

    # -- the round driver ------------------------------------------------------

    async def _drive(self) -> None:
        while True:
            batch = await self.batcher.next_batch()
            if not batch:
                return
            started = _time.perf_counter()
            events_by_cell: dict[str, list] = {}
            for mutation in batch:
                events_by_cell.setdefault(mutation.cell, []).append(mutation.event)
            round_index = self.recorder.record_batch(
                (mutation.cell, mutation.event) for mutation in batch
            )
            if self.wal is not None:
                # Durability point: once this returns, the batch survives a
                # crash — apply must never precede it.
                self.wal.append_batch(
                    round_index,
                    [(mutation.cell, mutation.record) for mutation in batch],
                )
            if (
                self.fault_plan is not None
                and getattr(self.fault_plan, "wal_crash_round", None) == round_index
            ):
                crash = ServeCrash(
                    f"injected crash after journaling round {round_index}"
                )
                for mutation in batch:
                    if not mutation.future.done():
                        mutation.future.set_exception(crash)
                raise crash
            try:
                with obs.tracer().span("serve.batch", size=len(batch)):
                    step = self._apply_round(round_index, events_by_cell)
            except Exception as exc:  # engine invariant broken: fail loudly
                for mutation in batch:
                    if not mutation.future.done():
                        mutation.future.set_exception(exc)
                raise
            self.steps.append(step)
            elapsed = _time.perf_counter() - started
            self.round_seconds.append(elapsed)
            registry = obs.registry()
            if registry.enabled:
                registry.counter("serve.rounds").inc()
                registry.counter("serve.mutations").inc(len(batch))
                registry.histogram("serve.round_seconds").observe(elapsed)
                registry.gauge("serve.queue_depth").set(len(self.batcher))
            if (
                self.checkpoint_path is not None
                and self.checkpoint_every > 0
                and (round_index + 1) % self.checkpoint_every == 0
            ):
                save_checkpoint(
                    self.fleet,
                    self.checkpoint_path,
                    # Steps ride along so a checkpoint-fast-forwarded resume
                    # serves a complete /steps list (wal.resume_control_plane
                    # skips re-applying these rounds but still needs their
                    # step records).
                    extra={
                        "rounds": round_index + 1,
                        "steps": [step.to_record() for step in self.steps],
                    },
                )
            record = step.to_record()
            result = {"round": round_index, "step": record}
            for mutation in batch:
                if not mutation.future.done():
                    mutation.future.set_result(result)
            self._broadcast(
                {
                    "event": "RoundCommitted",
                    "round": round_index,
                    "step": record,
                    "cells": self._cell_records(),
                }
            )

    def _apply_round(
        self, round_index: int, events_by_cell: Mapping[str, list]
    ) -> FleetReplayStep:
        """One fleet round over one admitted batch — the replayer's serial
        fold verbatim, with ``time = round index``."""
        fleet = self.fleet
        bus = fleet.events
        summaries = step_cells(
            fleet.cells,
            events_by_cell,
            self.seed,
            self.force_each_step,
            with_events=self._with_events,
        )
        if bus:
            for summary in summaries:
                if summary.failed_nodes:
                    bus.emit(
                        CellEvent(summary.cell, FailureDetected(nodes=summary.failed_nodes))
                    )
                if summary.recovered_nodes:
                    bus.emit(
                        CellEvent(summary.cell, RecoveryDetected(nodes=summary.recovered_nodes))
                    )
                bus.emit(
                    CellReconciled(
                        cell=summary.cell,
                        triggered=summary.triggered,
                        actions=summary.actions,
                    )
                )
        plan = fleet.plan_spillover(summaries)
        updated: dict = {}
        failed: list = []
        if plan:
            updated, _reports, failed = fleet.apply_spillover(plan)
        fleet.commit_spillover(plan, failed)
        final = {s.cell: s for s in summaries}
        final.update(updated)
        ordered = [final[name] for name in fleet.cell_names]
        capacity = sum(s.capacity_cpu for s in ordered)
        healthy = sum(s.healthy_cpu for s in ordered)
        return FleetReplayStep(
            time=float(round_index),
            events=tuple(
                f"{cell}:{event.kind}"
                for cell in fleet.cell_names
                for event in events_by_cell.get(cell, ())
            ),
            failed_nodes=sum(s.failed_count for s in ordered),
            available_fraction=(healthy / capacity if capacity > 0 else 0.0),
            availability=fleet_availability(ordered, fleet.spillovers),
            revenue=fleet_revenue(ordered),
            utilization=fleet_utilization(ordered),
            degraded_cells=tuple(
                s.cell
                for s in ordered
                if any(
                    not is_clone(app) and (s.cell, app) not in fleet.spillovers
                    for app, _ in s.missing_critical
                )
            ),
            spillovers_planned=len(plan.assignments) - len(failed),
            spillovers_released=len(plan.releases),
            spillovers_active=len(fleet.spillovers),
            triggered=sum(1 for s in summaries if s.triggered),
            actions=sum(s.actions for s in summaries)
            + sum(s.actions for s in updated.values()),
        )

    # -- event fan-out ---------------------------------------------------------

    def _on_bus_event(self, event) -> None:
        self._broadcast(event_record(event))

    def _broadcast(self, record: dict[str, object]) -> None:
        if not self._subscribers:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        for queue in self._subscribers.values():
            if not _offer(queue, line):
                self.dropped_events += 1

    def _cell_records(self) -> list[dict[str, object]]:
        return [summary.to_record() for summary in self.fleet.summarize()]

    # -- HTTP ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer,
                        exc.status,
                        json_body({"error": exc.message}),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                if request.path == "/ws":
                    await self._handle_ws(request, reader, writer)
                    return
                keep_alive = request.keep_alive
                try:
                    await self._route(request, writer, keep_alive)
                except HttpError as exc:
                    headers = (
                        {"Retry-After": str(exc.retry_after)}
                        if exc.status == 429 and hasattr(exc, "retry_after")
                        else None
                    )
                    await write_response(
                        writer,
                        exc.status,
                        json_body({"error": exc.message}),
                        headers=headers,
                        keep_alive=keep_alive,
                    )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown mid-connection; fall through and close
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _route(
        self, request: HttpRequest, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        path = request.path
        if request.method == "POST":
            if path == "/mutations":
                payload = await self._post_mutations(request)
                await write_response(writer, 200, json_body(payload), keep_alive=keep_alive)
                return
            if path in ("/healthz", "/config", "/cells", "/metrics", "/digest", "/trace", "/steps", "/spans"):
                raise HttpError(405, f"{path} is read-only (GET)")
            raise HttpError(404, f"no POST route {path!r}")
        if request.method != "GET":
            raise HttpError(405, f"method {request.method} not allowed")
        if path == "/":
            await write_response(
                writer,
                200,
                DASHBOARD_HTML,
                content_type="text/html; charset=utf-8",
                keep_alive=keep_alive,
            )
            return
        if path == "/metrics":
            accept = request.headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                # Prometheus scrape; JSON stays the default so the dashboard
                # and every existing client keep their shape.
                await write_response(
                    writer,
                    200,
                    self._prometheus_metrics(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                    keep_alive=keep_alive,
                )
                return
        if path == "/spans":
            await write_response(
                writer,
                200,
                obs.tracer().to_jsonl(),
                content_type="application/x-ndjson",
                keep_alive=keep_alive,
            )
            return
        payload = self._get(path)
        await write_response(writer, 200, json_body(payload), keep_alive=keep_alive)

    def _get(self, path: str):
        fleet = self.fleet
        if path == "/healthz":
            return {
                "status": "ok",
                "rounds": self.recorder.rounds,
                "pending": len(self.batcher),
                "cells": len(fleet.cells),
            }
        if path == "/config":
            return {
                "fleet": self.fleet_params,
                "seed": self.seed,
                "force_each_step": self.force_each_step,
                "cells": list(fleet.cell_names),
                "policy": fleet.policy.name,
                "queue_limit": self.batcher.queue_limit,
            }
        if path == "/cells":
            return {"cells": self._cell_records()}
        if path.startswith("/cells/"):
            rest = path[len("/cells/") :]
            name, _, tail = rest.partition("/")
            if name not in fleet.cell_names:
                raise HttpError(404, f"unknown cell {name!r}")
            if tail == "nodes":
                state = fleet.cell(name).state
                return {
                    "cell": name,
                    "nodes": [
                        {
                            "node": node_name,
                            "failed": node.failed,
                            "capacity_cpu": node.capacity.cpu,
                            "capacity_mem": node.capacity.memory,
                        }
                        for node_name, node in sorted(state.nodes.items())
                    ],
                }
            if tail:
                raise HttpError(404, f"no route {path!r}")
            return fleet.summary()[name].to_record()
        if path == "/metrics":
            return {
                "admitted": self.batcher.admitted,
                "rejected": self.batcher.rejected,
                "rounds": self.recorder.rounds,
                "mutations": self.recorder.mutations,
                "pending": len(self.batcher),
                "subscribers": len(self._subscribers),
                "dropped_events": self.dropped_events,
                "round_seconds": percentiles(self.round_seconds),
                "spillovers_active": len(fleet.spillovers),
            }
        if path == "/digest":
            return {"digest": fleet_digest(fleet), "rounds": self.recorder.rounds}
        if path == "/spans":
            # JSON fallback for clients that hit /spans through _get (tests);
            # the HTTP route serves the raw JSONL body directly.
            return {"spans": obs.tracer().to_jsonl()}
        if path == "/trace":
            return {
                "metadata": dict(self.recorder.metadata),
                "rounds": self.recorder.rounds,
                "cells": self.recorder.traces_jsonl(),
            }
        if path == "/steps":
            return {"steps": [step.to_record() for step in self.steps]}
        raise HttpError(404, f"no route {path!r}")

    def _prometheus_metrics(self) -> str:
        """Prometheus text exposition: the core serve block under
        ``repro_serve_*`` plus the whole observability registry under
        ``repro_obs_*`` (distinct prefixes, so the two sources can never
        collide on a family name)."""
        core = self._get("/metrics")
        round_seconds = core["round_seconds"]
        text = obs.render_prometheus(
            counters={
                f"repro_serve_{key}": core[key]
                for key in ("admitted", "rejected", "rounds", "mutations", "dropped_events")
            },
            gauges={
                f"repro_serve_{key}": core[key]
                for key in ("pending", "subscribers", "spillovers_active")
            },
            summaries=(
                {"repro_serve_round_seconds": round_seconds} if round_seconds else None
            ),
        )
        return text + obs.registry().prometheus_text()

    async def _post_mutations(self, request: HttpRequest) -> dict[str, object]:
        payload = request.json()
        if isinstance(payload, Mapping) and "mutations" in payload:
            items = payload["mutations"]
            if not isinstance(items, list) or not items:
                raise HttpError(400, "'mutations' must be a non-empty list")
        else:
            items = [payload]
        futures = []
        admitted = 0
        registry = obs.registry()
        try:
            with obs.tracer().span("serve.admit", items=len(items)):
                for item in items:
                    if not isinstance(item, Mapping):
                        raise HttpError(400, "each mutation must be an object")
                    cell = item.get("cell")
                    if cell not in self.fleet.cell_names:
                        raise HttpError(
                            400,
                            f"unknown cell {cell!r}; fleet has {list(self.fleet.cell_names)}",
                        )
                    record = item.get("event")
                    if not isinstance(record, Mapping):
                        raise HttpError(400, "mutation needs an 'event' record (schema v1)")
                    try:
                        event = parse_event(record, default_time=0.0)
                    except TraceError as exc:
                        raise HttpError(400, str(exc)) from None
                    try:
                        futures.append(self.batcher.submit(cell, event, dict(record)))
                    except AdmissionFull as exc:
                        if registry.enabled:
                            # Back-pressure signal: queue full, client told 429.
                            registry.counter("serve.rejected").inc()
                        error = HttpError(429, str(exc))
                        error.retry_after = exc.retry_after
                        raise error from None
                    admitted += 1
        except HttpError:
            # Partially admitted items still commit (they are queued); the
            # client learns the cutoff from 'admitted' in later retries.
            if registry.enabled and admitted:
                registry.counter("serve.admitted").inc(admitted)
            raise
        if registry.enabled:
            registry.counter("serve.admitted").inc(admitted)
        results = await asyncio.gather(*futures)
        last = results[-1]
        return {
            "admitted": admitted,
            "round": last["round"],
            "rounds": sorted({result["round"] for result in results}),
            "step": last["step"],
        }

    # -- WebSocket -------------------------------------------------------------

    async def _handle_ws(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        upgrade = request.headers.get("upgrade", "").lower()
        if request.method != "GET" or upgrade != "websocket" or not key:
            await write_response(
                writer,
                426,
                json_body({"error": "'/ws' requires a WebSocket upgrade"}),
                headers={"Upgrade": "websocket"},
                keep_alive=False,
            )
            return
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept_key(key)}\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_QUEUE)
        token = self._next_subscriber
        self._next_subscriber += 1
        self._subscribers[token] = queue
        hello = {
            "event": "Hello",
            "round": self.recorder.rounds,
            "cells": self._cell_records(),
        }
        writer.write(
            text_frame(json.dumps(hello, sort_keys=True, separators=(",", ":")))
        )
        await writer.drain()
        sender = asyncio.create_task(self._ws_sender(queue, writer))
        try:
            while True:
                try:
                    opcode, payload = await read_frame(reader, require_mask=True)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if opcode == OP_CLOSE:
                    return
                if opcode == OP_PING:
                    writer.write(encode_frame(OP_PONG, payload))
                    await writer.drain()
                # Text/pong from clients is ignored: the stream is one-way.
        finally:
            self._subscribers.pop(token, None)
            sender.cancel()
            try:
                await sender
            except asyncio.CancelledError:
                pass

    async def _ws_sender(self, queue: asyncio.Queue, writer: asyncio.StreamWriter) -> None:
        drop_after = (
            getattr(self.fault_plan, "ws_drop_after", None)
            if self.fault_plan is not None
            else None
        )
        sent = 0
        try:
            while True:
                line = await queue.get()
                if line is None:
                    writer.write(encode_frame(OP_CLOSE))
                    await writer.drain()
                    return
                if drop_after is not None and sent >= drop_after:
                    # Injected infrastructure fault: hard-drop the peer
                    # (no close frame), as a dying network path would.
                    writer.transport.abort()
                    return
                writer.write(text_frame(line))
                await writer.drain()
                sent += 1
        except (ConnectionError, OSError):
            pass  # the reader loop notices the dead peer and unregisters us


def _offer(queue: asyncio.Queue, item) -> bool:
    try:
        queue.put_nowait(item)
    except asyncio.QueueFull:
        return False
    return True
