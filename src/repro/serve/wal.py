"""Write-ahead journal + crash recovery for served sessions.

Durability contract: every admitted batch is appended to the journal —
flushed and fsynced — *before* the round applies to the fleet
(:meth:`ControlPlane._drive` sequences record → append → apply).  A crash
at any point therefore loses at most work the client was never told
committed; ``python -m repro serve --resume`` rebuilds the fleet by
replaying the journal (optionally fast-forwarded from a
:mod:`repro.fleet.checkpoint` file) and the resumed session's recorded
trace and fleet digest equal an uncrashed run's, byte for byte — the
recovery gate the tests and the CI ``infra-chaos-smoke`` job assert.

Format: JSONL.  Line one is a header recording everything needed to
rebuild the fleet (the ``build_fleet`` parameters plus the control plane's
seed/force/queue settings); each following line is one batch::

    {"record": "wal", "version": 1, "fleet": {...}, "seed": 0, ...}
    {"record": "batch", "round": 0, "mutations": [["cell-0", {...}], ...]}

Torn tail: a crash can leave one partially written final line; the reader
drops it (that batch never applied — the crash happened during the append,
so its round never ran and no client saw it commit), and reopening for
append truncates it first, so the next record starts on a fresh line
instead of concatenating onto the fragment.  A malformed line *before*
the tail is real corruption and raises :exc:`WalError`.
"""

from __future__ import annotations

import json
import os

from repro import obs
from repro.traces.schema import parse_event

#: Journal format version (bump on incompatible record changes).
WAL_VERSION = 1


class WalError(RuntimeError):
    """A journal file is damaged, incompatible, or inconsistent."""


class WriteAheadLog:
    """Append-only JSONL journal of admitted mutation batches.

    Pass ``header`` to start a fresh journal (truncates any existing file);
    omit it to reopen an existing journal for appending (the resume path).
    Every append is flushed and fsynced before returning — the driver's
    "append before apply" sequencing is only durable because of that.
    """

    def __init__(self, path, *, header: dict | None = None) -> None:
        self.path = os.fspath(path)
        if header is not None:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._write_line(
                {"record": "wal", "version": WAL_VERSION} | dict(header)
            )
        else:
            if not os.path.exists(self.path):
                raise WalError(f"{self.path}: cannot append to a missing journal")
            self._truncate_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        """Drop a partially written final line before appending resumes.

        Each record is written as one ``line + "\\n"`` call, so a crash
        mid-append leaves a *prefix* of that line — which, because the JSON
        payload contains no newlines, never includes the terminator.  A
        file not ending in ``"\\n"`` therefore ends in exactly the torn
        fragment the reader drops; cutting back to the last newline keeps
        the on-disk journal and :meth:`read`'s view identical, so the next
        append starts a fresh record instead of merging into garbage.
        """
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1
        if cut == 0:
            raise WalError(f"{self.path}: no intact journal header")
        os.truncate(self.path, cut)

    def _write_line(self, record: dict) -> None:
        registry = obs.registry()
        with obs.tracer().span("wal.append"):
            self._handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )
            self._handle.flush()
            # Timed only when the registry is on: the fsync dominates append
            # latency and the extra clock reads must not ride the off path.
            started = registry.clock() if registry.enabled else 0.0
            with obs.tracer().span("wal.fsync"):
                os.fsync(self._handle.fileno())
            if registry.enabled:
                registry.histogram("wal.fsync_seconds").observe(
                    registry.clock() - started
                )
                registry.counter("wal.appends").inc()

    def append_batch(self, round_index: int, mutations) -> None:
        """Journal one admitted batch: ``[(cell, event record), ...]``."""
        self._write_line(
            {
                "record": "batch",
                "round": round_index,
                "mutations": [[cell, dict(record)] for cell, record in mutations],
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path) -> tuple[dict, list[dict]]:
        """Load a journal: ``(header, batch records)``, torn-tail tolerant."""
        path = os.fspath(path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise WalError(f"{path}: empty journal")
        records: list[dict] = []
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "record" not in record:
                    raise ValueError("not a journal record")
            except ValueError as exc:
                if index == len(lines) - 1:
                    break  # torn tail: the crash interrupted this append
                raise WalError(f"{path}: corrupt journal line {index + 1}: {exc}") from exc
            records.append(record)
        if not records:
            raise WalError(f"{path}: no intact journal header")
        header = records[0]
        if header.get("record") != "wal":
            raise WalError(f"{path}: first line is not a journal header")
        if header.get("version") != WAL_VERSION:
            raise WalError(
                f"{path}: journal version {header.get('version')} unsupported "
                f"(this build reads version {WAL_VERSION})"
            )
        batches = []
        for record in records[1:]:
            if record.get("record") != "batch":
                raise WalError(f"{path}: unexpected record {record.get('record')!r}")
            if record.get("round") != len(batches):
                raise WalError(
                    f"{path}: journal round {record.get('round')} out of order "
                    f"(expected {len(batches)})"
                )
            batches.append(record)
        return header, batches


def resume_control_plane(
    wal_path,
    *,
    checkpoint_path=None,
    checkpoint_every: int = 0,
    queue_limit: int | None = None,
    retry_after: float = 1.0,
):
    """Rebuild a :class:`~repro.serve.app.ControlPlane` from its journal.

    Reconstruction is the serve determinism contract run backwards: rebuild
    the identical fleet from the journal header's construction parameters,
    take the same entry point a fresh session takes (``fleet.reset()``),
    then re-apply every journaled batch through the *same* fold the live
    driver uses.  With a checkpoint, the fleet fast-forwards to the
    checkpointed round first and only the journal tail replays — the
    result is identical either way, the checkpoint just bounds recovery
    time.  Every batch (replayed or skipped) is re-recorded into a fresh
    session recorder, and fast-forwarded rounds take their step records
    from the checkpoint, so the resumed plane's ``/trace``, ``/digest``
    *and* ``/steps`` match an uncrashed run's.  A checkpoint that does not
    carry step records (or carries an incomplete list) is ignored and the
    whole journal replays instead — slower, never wrong.

    The returned plane has the journal reopened for appending and is
    flagged resumed, so :meth:`~repro.serve.app.ControlPlane.start` keeps
    the recovered state instead of resetting it.  Call ``start()`` next.
    """
    from repro.fleet.checkpoint import load_checkpoint, restore_checkpoint
    from repro.fleet.replay import FleetReplayStep
    from repro.serve.app import ControlPlane, build_fleet

    header, batches = WriteAheadLog.read(wal_path)
    params = dict(header.get("fleet", {}))
    fleet = build_fleet(**params)
    plane = ControlPlane(
        fleet,
        seed=int(header.get("seed", 0)),
        force_each_step=bool(header.get("force_each_step", False)),
        queue_limit=(
            int(header["queue_limit"]) if queue_limit is None else queue_limit
        ),
        retry_after=retry_after,
        fleet_params=params,
        wal=WriteAheadLog(wal_path),
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
    fleet.reset()  # the same starting point ControlPlane.start() takes
    start_round = 0
    checkpointed_steps: list = []
    if checkpoint_path is not None and os.path.exists(os.fspath(checkpoint_path)):
        checkpoint = load_checkpoint(checkpoint_path)
        rounds = int(checkpoint.extra.get("rounds", 0))
        if rounds > len(batches):
            raise WalError(
                f"checkpoint is ahead of the journal ({rounds} rounds "
                f"checkpointed, {len(batches)} journaled)"
            )
        step_records = checkpoint.extra.get("steps")
        if isinstance(step_records, list) and len(step_records) == rounds:
            restore_checkpoint(fleet, checkpoint)
            start_round = rounds
            checkpointed_steps = [
                FleetReplayStep.from_record(record) for record in step_records
            ]
        # else: a checkpoint without its step records cannot rebuild a
        # complete /steps list — fall through to full journal replay.
    for record in batches:
        pairs = []
        events_by_cell: dict[str, list] = {}
        for cell, event_record in record["mutations"]:
            event = parse_event(event_record, default_time=0.0)
            pairs.append((cell, event))
            events_by_cell.setdefault(cell, []).append(event)
        round_index = plane.recorder.record_batch(pairs)
        if round_index < start_round:
            # Already folded into the checkpointed state; the step record
            # comes from the checkpoint so /steps stays complete.
            plane.steps.append(checkpointed_steps[round_index])
            continue
        plane.steps.append(plane._apply_round(round_index, events_by_cell))
    plane.mark_resumed()
    return plane


__all__ = ["WAL_VERSION", "WalError", "WriteAheadLog", "resume_control_plane"]
