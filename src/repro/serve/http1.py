"""Minimal HTTP/1.1 over asyncio streams (stdlib only).

The serve layer's transport floor: just enough HTTP to run a JSON control
plane and a WebSocket upgrade on one port — request-line + header parsing,
``Content-Length`` bodies, keep-alive, and canonical response writing.  The
same helpers back the server (:mod:`repro.serve.app`) and the client used
by the load generator (:mod:`repro.serve.loadgen`), the discipline the
fleet's wire codec set: one hand-rolled protocol module, exercised from
both ends, zero new dependencies.

Deliberately *not* a general HTTP implementation: no chunked bodies, no
multipart, no compression, no TLS.  Requests it cannot parse raise
:class:`HttpError` with the status the server should answer before closing
the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bounds keeping a malformed or hostile peer from ballooning memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the statuses the control plane actually emits.
REASONS = {
    101: "Switching Protocols",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request the server refuses; carries the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: line, lower-cased headers, raw body."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return "close" not in connection

    def json(self):
        """The body parsed as JSON (:class:`HttpError` 400 on failure)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request from ``reader``; ``None`` on clean EOF (peer closed).

    Raises :class:`HttpError` on malformed input and
    :class:`asyncio.IncompleteReadError` when the peer dies mid-request.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(431, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "connection closed inside headers") from None
        if raw == b"\r\n":
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, "headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {text!r}")
        # Last occurrence wins; the control plane has no multi-valued needs.
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "content-length is not an integer") from None
        if length < 0:
            raise HttpError(400, "content-length is negative")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body larger than {MAX_BODY_BYTES} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed inside body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer encoding is not supported")

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def render_response(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one full HTTP/1.1 response (status line, headers, body)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    base = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        base.update(headers)
    lines.extend(f"{name}: {value}" for name, value in base.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload, *, sort_keys: bool = True) -> str:
    """Canonical JSON body text (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=sort_keys, separators=(",", ":")) + "\n"


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> None:
    writer.write(
        render_response(
            status,
            body,
            content_type=content_type,
            headers=headers,
            keep_alive=keep_alive,
        )
    )
    await writer.drain()


# -- the client half (used by the load generator and the smoke tests) ----------


class HttpConnection:
    """One keep-alive client connection to the control plane."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _ensure(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        assert self._reader is not None and self._writer is not None
        return self._reader, self._writer

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | str | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Send one request, read one response: (status, headers, body).

        Retries once on a stale keep-alive connection (server closed it
        between requests); any other transport failure propagates.
        """
        if isinstance(body, str):
            body = body.encode("utf-8")
        for attempt in (0, 1):
            reader, writer = await self._ensure()
            try:
                base = {"Host": f"{self.host}:{self.port}"}
                if body is not None:
                    base["Content-Length"] = str(len(body))
                    base.setdefault("Content-Type", "application/json")
                if headers:
                    base.update(headers)
                lines = [f"{method} {path} HTTP/1.1"]
                lines.extend(f"{name}: {value}" for name, value in base.items())
                writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
                if body:
                    writer.write(body)
                await writer.drain()
                return await self._read_response(reader)
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        raise RuntimeError("unreachable")  # pragma: no cover

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, str], bytes]:
        line = await reader.readuntil(b"\r\n")
        parts = line.decode("latin-1").rstrip("\r\n").split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise HttpError(500, f"malformed status line from server: {line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readuntil(b"\r\n")
            if raw == b"\r\n":
                break
            name, _, value = raw.decode("latin-1").rstrip("\r\n").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, body

    async def get_json(self, path: str):
        status, _headers, body = await self.request("GET", path)
        if status != 200:
            raise HttpError(status, body.decode("utf-8", "replace"))
        return json.loads(body.decode("utf-8"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "HttpConnection":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
