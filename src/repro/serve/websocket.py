"""Hand-rolled WebSocket framing (RFC 6455), server and client halves.

Covers exactly what the event stream needs: the HTTP upgrade handshake,
text/binary/ping/pong/close frames, client-to-server masking (required by
the RFC; the server never masks), and 16/64-bit extended lengths.  No
extensions, no fragmentation (frames are sent FIN-flagged and a fragmented
peer frame is refused loudly) — the stream carries small JSON event records,
so one frame per message is the honest shape.

Shared by :mod:`repro.serve.app` (server side) and the subscriber client
used by the load generator, the smoke script and the tests.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

#: RFC 6455 §1.3 magic GUID appended to the client key before hashing.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Frame opcodes.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Refuse absurd frames instead of allocating for them.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class WebSocketError(Exception):
    """A protocol violation on the WebSocket layer."""


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def encode_frame(
    opcode: int, payload: bytes = b"", *, mask: bool = False
) -> bytes:
    """One FIN-flagged frame; ``mask=True`` for the client side."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WebSocketError(f"frame larger than {MAX_FRAME_BYTES} bytes")
    head = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def text_frame(text: str, *, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def close_frame(code: int = 1000, *, mask: bool = False) -> bytes:
    return encode_frame(OP_CLOSE, struct.pack(">H", code), mask=mask)


async def read_frame(
    reader: asyncio.StreamReader, *, require_mask: bool | None = None
) -> tuple[int, bytes]:
    """Read one frame: ``(opcode, unmasked payload)``.

    ``require_mask=True`` enforces the server-side rule that every client
    frame is masked; ``False`` enforces the client-side rule that server
    frames are not.  Raises :class:`asyncio.IncompleteReadError` on EOF.
    """
    first, second = await reader.readexactly(2)
    if not first & 0x80:
        raise WebSocketError("fragmented frames are not supported")
    if first & 0x70:
        raise WebSocketError("reserved frame bits set (no extensions negotiated)")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    if require_mask is True and not masked:
        raise WebSocketError("client frames must be masked")
    if require_mask is False and masked:
        raise WebSocketError("server frames must not be masked")
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_FRAME_BYTES:
        raise WebSocketError(f"frame larger than {MAX_FRAME_BYTES} bytes")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


class WebSocketClient:
    """Minimal subscriber client for the control plane's ``/ws`` stream."""

    def __init__(self, host: str, port: int, path: str = "/ws") -> None:
        self.host = host
        self.port = port
        self.path = path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        request = (
            f"GET {self.path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n\r\n"
        )
        writer.write(request.encode("latin-1"))
        await writer.drain()
        status_line = await reader.readuntil(b"\r\n")
        if b" 101 " not in status_line:
            writer.close()
            raise WebSocketError(f"upgrade refused: {status_line!r}")
        accept = None
        while True:
            raw = await reader.readuntil(b"\r\n")
            if raw == b"\r\n":
                break
            name, _, value = raw.decode("latin-1").rstrip("\r\n").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != accept_key(key):
            writer.close()
            raise WebSocketError("Sec-WebSocket-Accept mismatch")
        self._reader, self._writer = reader, writer

    async def recv_text(self, timeout: float | None = None) -> str | None:
        """Next text message; ``None`` when the server closed the stream."""
        if self._reader is None or self._writer is None:
            raise WebSocketError("not connected")
        while True:
            task = read_frame(self._reader, require_mask=False)
            try:
                opcode, payload = await (
                    asyncio.wait_for(task, timeout) if timeout is not None else task
                )
            except asyncio.IncompleteReadError:
                return None
            if opcode == OP_TEXT:
                return payload.decode("utf-8")
            if opcode == OP_PING:
                self._writer.write(encode_frame(OP_PONG, payload, mask=True))
                await self._writer.drain()
                continue
            if opcode == OP_CLOSE:
                return None
            if opcode == OP_PONG:
                continue
            raise WebSocketError(f"unexpected opcode {opcode:#x}")

    async def send_text(self, text: str) -> None:
        if self._writer is None:
            raise WebSocketError("not connected")
        self._writer.write(text_frame(text, mask=True))
        await self._writer.drain()

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.write(close_frame(mask=True))
                await self._writer.drain()
            except (ConnectionError, OSError):
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "WebSocketClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
