"""Session recording and canonical digests for served fleets.

Two jobs, both in service of the serve layer's determinism contract:

* :class:`SessionRecorder` — every admitted mutation batch is appended to
  per-cell traces (schema v1, one round = one integer timestamp), so a
  served session *is* a fleet scenario: feed ``recorder.scenario()`` to an
  offline :class:`~repro.fleet.replay.FleetReplayer` over an identically
  built fleet and the replay reproduces the served run byte-for-byte.

* :func:`state_digest` / :func:`fleet_digest` — canonical SHA-256 over the
  observable cluster state (nodes, health, failure order, assignments,
  per-node usage floats via exact JSON repr, plus the spillover ledger),
  the value the determinism gate compares between served and replayed
  fleets.  Digests read only public accessors, so they hold across process
  boundaries and engine internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Iterable

from repro.traces.schema import Trace, TraceEvent


class SessionRecorder:
    """Accumulates admitted mutations into per-cell schema-v1 traces.

    Round index ``r`` becomes event time ``float(r)``; within a round the
    events keep the canonical admission order (the trace sort is stable),
    so the recorded scenario replays each admitted batch as one step — the
    exact shape :meth:`FleetReplayer.run` folds.
    """

    def __init__(self, cell_names: Iterable[str], metadata: dict | None = None) -> None:
        self.cell_names = tuple(cell_names)
        self.metadata = dict(metadata or {})
        self._events: dict[str, list[TraceEvent]] = {name: [] for name in self.cell_names}
        self.rounds = 0
        self.mutations = 0

    def record_batch(self, batch: Iterable[tuple[str, TraceEvent]]) -> int:
        """Append one admitted batch; returns the round index it was given."""
        round_index = self.rounds
        for cell, event in batch:
            stamped = dataclasses.replace(event, time=float(round_index))
            self._events[cell].append(stamped)
            self.mutations += 1
        self.rounds += 1
        return round_index

    def scenario(self) -> dict[str, Trace]:
        """The recorded session as a fleet scenario (cells with events only)."""
        scenario: dict[str, Trace] = {}
        for name in self.cell_names:
            events = self._events[name]
            if events:
                scenario[name] = Trace(
                    events=list(events),
                    metadata=dict(self.metadata) | {"cell": name},
                )
        return scenario

    def traces_jsonl(self) -> dict[str, str]:
        """Canonical JSONL text per recorded cell (the ``/trace`` payload)."""
        return {name: trace.dumps() for name, trace in self.scenario().items()}


# -- canonical digests ----------------------------------------------------------


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def state_record(state) -> dict[str, object]:
    """Canonical JSON-able snapshot of one cluster state's observables.

    Node health, capacities, per-node usage floats (exact ``repr`` through
    JSON), the replica->node assignment map, and the failure *order* — the
    one piece of hidden sequencing that drives downstream byte order
    (:meth:`ClusterState.evict_from_failed_nodes` walks it).
    """
    nodes = [
        [name, node.failed, node.capacity.cpu, node.capacity.memory]
        for name, node in sorted(state.nodes.items())
    ]
    used = []
    for name in sorted(state.nodes):
        pair = state.used_on(name)
        used.append([name, pair.cpu, pair.memory])
    assignments = sorted(
        [[replica.app, replica.microservice, replica.replica, node]
         for replica, node in state.assignments.items()]
    )
    return {
        "nodes": nodes,
        "used": used,
        "assignments": assignments,
        "failure_order": list(state.failure_order()),
        "applications": sorted(state.applications),
    }


def state_digest(state) -> str:
    """SHA-256 hex digest of :func:`state_record`."""
    return hashlib.sha256(_canonical(state_record(state)).encode("utf-8")).hexdigest()


def fleet_digest(fleet) -> str:
    """One SHA-256 hex digest covering every cell state plus the ledger.

    Equal digests mean the fleets are observably identical: same per-cell
    node health and failure order, same assignments and usage bits, same
    active spillovers.  This is the value the served ``/digest`` endpoint
    returns and the offline-replay equivalence gate compares.
    """
    payload = {
        "cells": {cell.name: state_record(cell.state) for cell in fleet.cells},
        "spillovers": sorted(
            [
                [cell, app, entry.donor, list(entry.microservices)]
                for (cell, app), entry in fleet.spillovers.items()
            ]
        ),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()
