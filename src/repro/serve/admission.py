"""The admission batcher: concurrent writers, one deterministic round.

The correctness core of the serve layer.  Any number of HTTP handlers
enqueue mutations concurrently; a single round-driver coroutine drains the
queue, applies the whole batch in **canonical order** — sorted by
``(cell, canonical JSON of the event record)`` — runs exactly one fleet
reconcile round, and resolves every waiter with the round's outcome.
Because the applied order is a pure function of the batch *contents*, any
interleaving of clients that admits the same set of mutations produces
byte-identical fleet state and byte-identical session trace to a serial
script submitting them one round at a time.

Back-pressure is explicit: the queue is bounded, and a submit against a
full queue raises :class:`AdmissionFull` — the server answers 429 with a
``Retry-After`` hint instead of buffering unboundedly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.traces.schema import TraceEvent


class AdmissionFull(Exception):
    """The pending queue is at capacity; the client should retry later."""

    def __init__(self, limit: int, retry_after: float = 1.0) -> None:
        super().__init__(f"admission queue full ({limit} pending mutations)")
        self.limit = limit
        self.retry_after = retry_after


def canonical_key(cell: str, record: Mapping[str, object]) -> tuple[str, str]:
    """The batch sort key: applied order depends only on batch contents."""
    return (cell, json.dumps(record, sort_keys=True, separators=(",", ":")))


@dataclass
class PendingMutation:
    """One admitted-but-unapplied mutation waiting for its round."""

    cell: str
    event: TraceEvent
    record: dict[str, object]
    future: asyncio.Future = field(repr=False)

    @property
    def key(self) -> tuple[str, str]:
        return canonical_key(self.cell, self.record)


class AdmissionBatcher:
    """Bounded mutation queue drained in canonical batches.

    Writers call :meth:`submit` (synchronous — either the mutation is in
    the queue with a future attached, or :class:`AdmissionFull` is raised).
    The single round driver awaits :meth:`next_batch`, which blocks until
    at least one mutation is pending, then drains **everything** pending in
    canonical order.  Whatever accumulated while the previous round ran
    becomes the next round's batch — batch boundaries are a performance
    artifact; batch *order* never is.
    """

    def __init__(self, *, queue_limit: int = 1024, retry_after: float = 1.0) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.queue_limit = queue_limit
        self.retry_after = retry_after
        self._pending: list[PendingMutation] = []
        self._wakeup = asyncio.Event()
        self._closed = False
        #: Cumulative counters for /metrics and the load generator.
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(
        self, cell: str, event: TraceEvent, record: dict[str, object]
    ) -> asyncio.Future:
        """Enqueue one mutation; the future resolves after its round commits.

        Raises :class:`AdmissionFull` when the queue is at capacity and
        :class:`RuntimeError` after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("admission batcher is closed")
        if len(self._pending) >= self.queue_limit:
            self.rejected += 1
            raise AdmissionFull(self.queue_limit, self.retry_after)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(
            PendingMutation(cell=cell, event=event, record=record, future=future)
        )
        self.admitted += 1
        self._wakeup.set()
        return future

    async def next_batch(self) -> list[PendingMutation]:
        """Wait for pending mutations, drain them all in canonical order.

        Returns an empty list exactly once, after :meth:`close` — the round
        driver's signal to exit.
        """
        while not self._pending:
            if self._closed:
                return []
            self._wakeup.clear()
            await self._wakeup.wait()
        batch = sorted(self._pending, key=lambda m: m.key)
        self._pending.clear()
        return batch

    def close(self) -> None:
        """Stop accepting mutations and wake the driver so it can exit."""
        self._closed = True
        self._wakeup.set()

    def fail_pending(self, exc: BaseException) -> None:
        """Reject every queued mutation (server teardown path)."""
        for mutation in self._pending:
            if not mutation.future.done():
                mutation.future.set_exception(exc)
        self._pending.clear()
