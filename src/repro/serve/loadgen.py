"""Async open-loop load generator for a running control plane.

Open-loop means arrivals are scheduled by the clock, not by completions:
mutation ``i`` is *due* at ``start + i/rate`` whether or not earlier
requests have finished, and its recorded admission latency runs from that
due time to the server's committed response — so a server that falls
behind shows the backlog as latency (and eventually as 429s), exactly the
coordinated-omission-free measurement an admission-batcher needs.

The generated workload is deterministic in the seed: a round-robin walk
over the fleet's cells toggling node health (every node the generator
fails, it later recovers — tracked client-side, so served state stays
bounded), with an occasional ``load_change``.  Latency percentiles are
nearest-rank (p50/p90/p99/p999) over every admitted mutation; the report
also snapshots the server's ``/metrics`` for the round-latency view.
"""

from __future__ import annotations

import asyncio
import json
import random
import time as _time

from repro.serve.app import percentiles
from repro.serve.http1 import HttpConnection


def _workload(
    rng: random.Random,
    cell_nodes: dict[str, list[str]],
    count: int,
    *,
    load_every: int = 50,
) -> list[dict[str, object]]:
    """``count`` deterministic mutations over the given cells and nodes."""
    cells = sorted(cell_nodes)
    down: dict[str, set[str]] = {cell: set() for cell in cells}
    mutations: list[dict[str, object]] = []
    for index in range(count):
        cell = cells[index % len(cells)]
        if load_every and index % load_every == load_every - 1:
            event: dict[str, object] = {
                "record": "event",
                "kind": "load_change",
                "multiplier": round(0.5 + rng.random(), 3),
                "app": None,
            }
        else:
            failed = down[cell]
            # Recover when half the sampled pool is down, else fail another.
            pool = cell_nodes[cell]
            if failed and (len(failed) >= max(1, len(pool) // 2) or rng.random() < 0.4):
                node = rng.choice(sorted(failed))
                failed.discard(node)
                event = {"record": "event", "kind": "node_recovery", "nodes": [node]}
            else:
                candidates = [n for n in pool if n not in failed]
                if not candidates:
                    continue
                node = rng.choice(candidates)
                failed.add(node)
                event = {"record": "event", "kind": "node_failure", "nodes": [node]}
        mutations.append({"cell": cell, "event": event})
    return mutations


async def run_load(
    host: str,
    port: int,
    *,
    rate: float = 1000.0,
    duration: float = 5.0,
    connections: int = 8,
    batch: int = 1,
    seed: int = 0,
    nodes_per_cell: int = 16,
) -> dict[str, object]:
    """Drive the server open-loop at ``rate``/s for ``duration`` seconds.

    ``nodes_per_cell`` caps the node pool sampled per cell (smaller pools
    mean more churn per node, a harsher detector workload).  ``batch`` lets
    each worker coalesce up to that many *already-due* mutations into one
    ``POST /mutations`` request — amortising per-request HTTP cost without
    changing the open-loop schedule (latency is still measured per mutation
    from its own due time).  Returns the latency/throughput report as a
    JSON-able dict.
    """
    if rate <= 0 or duration <= 0 or connections < 1 or batch < 1:
        raise ValueError(
            "rate and duration must be positive, connections and batch >= 1"
        )
    probe = HttpConnection(host, port)
    config = await probe.get_json("/config")
    cell_nodes: dict[str, list[str]] = {}
    for cell in config["cells"]:
        listing = await probe.get_json(f"/cells/{cell}/nodes")
        names = [entry["node"] for entry in listing["nodes"]]
        cell_nodes[cell] = names[:nodes_per_cell]
    await probe.close()

    count = int(rate * duration)
    mutations = _workload(random.Random(seed), cell_nodes, count)
    interval = 1.0 / rate

    due: asyncio.Queue = asyncio.Queue()
    admission_seconds: list[float] = []
    outcomes = {"admitted": 0, "rejected_429": 0, "errors": 0}

    async def producer() -> None:
        start = _time.perf_counter()
        for index, mutation in enumerate(mutations):
            target = start + index * interval
            delay = target - _time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            due.put_nowait((target, mutation))
        for _ in range(connections):
            due.put_nowait(None)

    async def worker() -> None:
        async with HttpConnection(host, port) as connection:
            while True:
                item = await due.get()
                if item is None:
                    return
                group = [item]
                while len(group) < batch:
                    try:
                        extra = due.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is None:
                        # Not ours to consume: hand the stop signal back so
                        # every worker still sees exactly one.
                        due.put_nowait(None)
                        break
                    group.append(extra)
                if len(group) == 1:
                    body = json.dumps(group[0][1])
                else:
                    body = json.dumps({"mutations": [m for _, m in group]})
                try:
                    status, _headers, _body = await connection.request(
                        "POST", "/mutations", body=body
                    )
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    outcomes["errors"] += len(group)
                    continue
                done = _time.perf_counter()
                if status == 200:
                    for due_at, _mutation in group:
                        admission_seconds.append(done - due_at)
                    outcomes["admitted"] += len(group)
                elif status == 429:
                    outcomes["rejected_429"] += len(group)
                else:
                    outcomes["errors"] += len(group)

    started = _time.perf_counter()
    await asyncio.gather(producer(), *[worker() for _ in range(connections)])
    elapsed = _time.perf_counter() - started

    async with HttpConnection(host, port) as connection:
        server_metrics = await connection.get_json("/metrics")

    admitted = outcomes["admitted"]
    return {
        "offered": len(mutations),
        "offered_rate": rate,
        "duration_seconds": round(elapsed, 6),
        "admitted": admitted,
        "rejected_429": outcomes["rejected_429"],
        "errors": outcomes["errors"],
        "admitted_rate": round(admitted / elapsed, 3) if elapsed > 0 else 0.0,
        "connections": connections,
        "batch": batch,
        "seed": seed,
        "admission_seconds": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in percentiles(admission_seconds).items()
        },
        "server": {
            "rounds": server_metrics["rounds"],
            "mutations": server_metrics["mutations"],
            "round_seconds": {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in server_metrics["round_seconds"].items()
            },
            "dropped_events": server_metrics["dropped_events"],
        },
    }
