"""``python -m repro`` — the command-line entrypoint (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
