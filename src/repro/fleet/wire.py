"""Compact binary wire codec for fleet IPC payloads.

Everything the fleet's worker shards send or receive — trace events out,
:class:`~repro.fleet.summary.CellSummary` objects and
:class:`~repro.core.controller.ReconcileReport` bundles back — used to
travel as pickles.  Pickle is general but verbose: every summary re-spells
its field names, every ``ReplicaId`` re-spells its app and microservice
strings, and the framing alone costs tens of bytes per object.  This module
replaces it with a struct-packed format built for exactly the closed set of
types that cross the fleet's process boundary:

* one-byte type tags, LEB128 varints (zigzag for signed), ``<d`` doubles;
* **per-message string interning** — the first occurrence of a string is
  sent inline, every repeat is a varint back-reference, so the app/node
  names that dominate fleet payloads are paid for once per message;
* **typed records** for the hot domain objects (summaries, trace events,
  actions, plans, reports, spillover specs), encoded positionally with no
  field names on the wire;
* a **pickle escape frame** for anything outside the closed set (shipped
  cluster states during a resync, engine configs at pool start), so the
  codec never refuses a payload — unknown types just skip the compaction.

The format carries an explicit schema version (:data:`WIRE_VERSION`) and a
CRC-32 of the body in a seven-byte header; decoding a different version
raises :exc:`WireError` rather than mis-parsing, which is what lets a fleet
refuse a peer running an older wire schema instead of silently corrupting a
round.  The checksum makes *every* truncation or bit-flip of a frame —
header or body, at any byte offset — surface deterministically as
:exc:`WireError`, never as a hang, a crash, or a silently wrong decode;
the shard supervisor relies on this to treat a corrupt reply as a worker
fault it can recover from.

``dumps``/``loads`` round-trip every supported value exactly (object
types, tuple-vs-list shape, dict insertion order, float bits), which the
wire tests assert — byte-identity of serial vs parallel fleet output runs
through this property.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from repro.cluster.state import ReplicaId
from repro.core.controller import ReconcileReport
from repro.core.plan import (
    Action,
    ActionKind,
    ActivationPlan,
    RankedMicroservice,
    SchedulePlan,
    make_action,
)
from repro.obs.trace import SpanRecord
from repro.traces.schema import CapacityTarget, LoadChange, NodeFailure, NodeRecovery

from repro.fleet.spillover import DonorCapacity, MsSpec, SpilloverAssignment
from repro.fleet.summary import CellSummary

#: Wire schema version.  Bump when tags, record ids, record field lists or
#: the header layout change; decoders reject any other version outright.
#: v2 added the CRC-32 body checksum to the header.
#: v3 added record 14 (``SpanRecord``) so observability spans propagate
#: across shard IPC without falling back to the pickle escape frame.
WIRE_VERSION = 3

#: Two-byte magic prefixing every message (catches non-wire input early).
MAGIC = b"FW"

#: Header layout: 2-byte magic + 1-byte version + 4-byte little-endian
#: CRC-32 of the body.
HEADER_SIZE = 7

_pack_crc = struct.Struct("<I").pack
_unpack_crc = struct.Struct("<I").unpack_from


class WireError(ValueError):
    """Raised for unknown magic, version mismatch, or corrupt frames."""


# -- value tags ----------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3  # zigzag varint
_T_FLOAT = 4  # little-endian IEEE double
_T_STR_DEF = 5  # varint byte length + UTF-8; assigns the next intern index
_T_STR_REF = 6  # varint index into the message's intern table
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_SET = 11
_T_RECORD = 12  # varint record id + varint field count + field values
_T_PICKLE = 13  # varint length + pickle bytes (escape hatch)

_pack_double = struct.Struct("<d").pack
_unpack_double = struct.Struct("<d").unpack_from


# -- typed records -------------------------------------------------------------
#
# Record ids and field orders are part of schema v1: reordering or extending
# an entry requires a WIRE_VERSION bump.  ``to_values`` flattens an object
# into a value tuple, ``from_values`` rebuilds it; nested values recurse
# through the generic encoder, so records can contain records.

_SUMMARY_FIELDS = (
    "cell",
    "triggered",
    "failed_nodes",
    "recovered_nodes",
    "actions",
    "failed_count",
    "capacity_cpu",
    "healthy_cpu",
    "healthy_mem",
    "used_cpu",
    "used_mem",
    "free_cpu",
    "free_mem",
    "revenue",
    "reference_revenue",
    "app_count",
    "missing_critical",
)


def _summary_values(s: CellSummary) -> tuple:
    return tuple(getattr(s, name) for name in _SUMMARY_FIELDS)


_RECORDS: list[tuple[type, object, object]] = [
    # 0
    (ReplicaId, lambda o: tuple(o), lambda v: ReplicaId(v[0], v[1], v[2])),
    # 1
    (
        Action,
        lambda o: (o.kind.value, o.replica, o.target_node, o.source_node),
        lambda v: make_action(ActionKind(v[0]), v[1], v[2], v[3]),
    ),
    # 2
    (RankedMicroservice, lambda o: tuple(o), lambda v: RankedMicroservice(v[0], v[1], v[2])),
    # 3
    (
        ActivationPlan,
        lambda o: (o.ranked, o.activated, o.capacity, o.objective),
        lambda v: ActivationPlan(
            ranked=list(v[0]), activated=list(v[1]), capacity=v[2], objective=v[3]
        ),
    ),
    # 4
    (
        SchedulePlan,
        lambda o: (o.target_assignment, o.actions, o.unplaced),
        lambda v: SchedulePlan(
            target_assignment=v[0], actions=list(v[1]), unplaced=list(v[2])
        ),
    ),
    # 5
    (
        ReconcileReport,
        lambda o: (
            o.triggered,
            o.failed_nodes,
            o.recovered_nodes,
            o.plan,
            o.schedule,
            o.planning_seconds,
            o.actions_executed,
        ),
        lambda v: ReconcileReport(
            triggered=v[0],
            failed_nodes=list(v[1]),
            recovered_nodes=list(v[2]),
            plan=v[3],
            schedule=v[4],
            planning_seconds=v[5],
            actions_executed=v[6],
        ),
    ),
    # 6
    (CellSummary, _summary_values, lambda v: CellSummary(*v)),
    # 7
    (MsSpec, lambda o: tuple(o), lambda v: MsSpec(v[0], v[1], v[2], v[3], v[4], v[5])),
    # 8
    (
        SpilloverAssignment,
        lambda o: tuple(o),
        lambda v: SpilloverAssignment(v[0], v[1], v[2], v[3], tuple(v[4]), v[5], v[6]),
    ),
    # 9
    (DonorCapacity, lambda o: tuple(o), lambda v: DonorCapacity(v[0], v[1], v[2])),
    # 10
    (
        NodeFailure,
        lambda o: (o.time, o.nodes),
        lambda v: NodeFailure(time=v[0], nodes=tuple(v[1])),
    ),
    # 11
    (
        NodeRecovery,
        lambda o: (o.time, o.nodes),
        lambda v: NodeRecovery(time=v[0], nodes=tuple(v[1])),
    ),
    # 12
    (
        CapacityTarget,
        lambda o: (o.time, o.available_fraction),
        lambda v: CapacityTarget(time=v[0], available_fraction=v[1]),
    ),
    # 13
    (
        LoadChange,
        lambda o: (o.time, o.multiplier, o.app),
        lambda v: LoadChange(time=v[0], multiplier=v[1], app=v[2]),
    ),
    # 14 (v3): observability spans shipped back from worker shards
    (
        SpanRecord,
        lambda o: (o.name, o.span_id, o.parent_id, o.start, o.end, o.attrs),
        lambda v: SpanRecord(
            name=v[0],
            span_id=v[1],
            parent_id=v[2],
            start=v[3],
            end=v[4],
            attrs=dict(v[5]),
        ),
    ),
]

_ENCODERS: dict[type, tuple[int, object]] = {
    cls: (rid, to_values) for rid, (cls, to_values, _) in enumerate(_RECORDS)
}
_DECODERS: list[object] = [from_values for _, _, from_values in _RECORDS]


# -- encoding ------------------------------------------------------------------
def _write_varint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _encode(obj, buf: bytearray, interns: dict[str, int]) -> None:
    kind = type(obj)
    if kind is str:
        index = interns.get(obj)
        if index is None:
            interns[obj] = len(interns)
            raw = obj.encode("utf-8")
            buf.append(_T_STR_DEF)
            _write_varint(buf, len(raw))
            buf += raw
        else:
            buf.append(_T_STR_REF)
            _write_varint(buf, index)
    elif kind is float:
        buf.append(_T_FLOAT)
        buf += _pack_double(obj)
    elif kind is bool:
        buf.append(_T_TRUE if obj else _T_FALSE)
    elif kind is int:
        buf.append(_T_INT)
        _write_varint(buf, (obj << 1) if obj >= 0 else (((-obj) << 1) - 1))
    elif obj is None:
        buf.append(_T_NONE)
    elif kind is list or kind is tuple:
        buf.append(_T_LIST if kind is list else _T_TUPLE)
        _write_varint(buf, len(obj))
        for item in obj:
            _encode(item, buf, interns)
    elif kind is dict:
        buf.append(_T_DICT)
        _write_varint(buf, len(obj))
        for key, value in obj.items():
            _encode(key, buf, interns)
            _encode(value, buf, interns)
    elif kind is set:
        buf.append(_T_SET)
        _write_varint(buf, len(obj))
        for item in obj:
            _encode(item, buf, interns)
    elif kind is bytes:
        buf.append(_T_BYTES)
        _write_varint(buf, len(obj))
        buf += obj
    else:
        entry = _ENCODERS.get(kind)
        if entry is not None:
            rid, to_values = entry
            values = to_values(obj)
            buf.append(_T_RECORD)
            _write_varint(buf, rid)
            _write_varint(buf, len(values))
            for value in values:
                _encode(value, buf, interns)
        else:
            # Escape hatch: anything outside the closed set (shipped states,
            # engine configs) rides as an embedded pickle frame.
            raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            buf.append(_T_PICKLE)
            _write_varint(buf, len(raw))
            buf += raw


def dumps(obj) -> bytes:
    """Encode ``obj`` as one framed wire message (magic + version + crc + value)."""
    body = bytearray()
    _encode(obj, body, {})
    buf = bytearray(MAGIC)
    buf.append(WIRE_VERSION)
    buf += _pack_crc(zlib.crc32(body) & 0xFFFFFFFF)
    buf += body
    return bytes(buf)


# -- decoding ------------------------------------------------------------------
def _read_varint(data: bytes, i: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        if shift > 127:
            # A frame that passed the CRC never encodes varints this long;
            # bound the loop so even a checksum collision cannot spin it.
            raise WireError("varint overruns 128 bits")
        byte = data[i]
        i += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, i
        shift += 7


def _decode(data: bytes, i: int, interns: list[str]):
    tag = data[i]
    i += 1
    if tag == _T_STR_REF:
        index, i = _read_varint(data, i)
        return interns[index], i
    if tag == _T_STR_DEF:
        length, i = _read_varint(data, i)
        text = data[i : i + length]
        if len(text) != length:
            raise IndexError
        value = text.decode("utf-8")
        interns.append(value)
        return value, i + length
    if tag == _T_FLOAT:
        if i + 8 > len(data):
            raise IndexError
        return _unpack_double(data, i)[0], i + 8
    if tag == _T_INT:
        zz, i = _read_varint(data, i)
        return (-((zz + 1) >> 1) if zz & 1 else zz >> 1), i
    if tag == _T_NONE:
        return None, i
    if tag == _T_TRUE:
        return True, i
    if tag == _T_FALSE:
        return False, i
    if tag == _T_LIST or tag == _T_TUPLE or tag == _T_SET:
        count, i = _read_varint(data, i)
        items = []
        for _ in range(count):
            item, i = _decode(data, i, interns)
            items.append(item)
        if tag == _T_LIST:
            return items, i
        return (tuple(items) if tag == _T_TUPLE else set(items)), i
    if tag == _T_DICT:
        count, i = _read_varint(data, i)
        out: dict = {}
        for _ in range(count):
            key, i = _decode(data, i, interns)
            out[key], i = _decode(data, i, interns)
        return out, i
    if tag == _T_RECORD:
        rid, i = _read_varint(data, i)
        if rid >= len(_DECODERS):
            raise WireError(f"unknown wire record id {rid} (schema skew?)")
        count, i = _read_varint(data, i)
        values = []
        for _ in range(count):
            value, i = _decode(data, i, interns)
            values.append(value)
        return _DECODERS[rid](values), i
    if tag == _T_BYTES:
        length, i = _read_varint(data, i)
        raw = bytes(data[i : i + length])
        if len(raw) != length:
            raise IndexError
        return raw, i + length
    if tag == _T_PICKLE:
        length, i = _read_varint(data, i)
        raw = data[i : i + length]
        if len(raw) != length:
            raise IndexError
        try:
            return pickle.loads(raw), i + length
        except WireError:
            raise
        except Exception as exc:
            raise WireError(f"corrupt pickle escape frame: {exc!r}") from exc
    raise WireError(f"unknown wire tag {tag}")


def loads(data: bytes):
    """Decode one framed wire message produced by :func:`dumps`."""
    if data[:2] != MAGIC:
        raise WireError(f"bad wire magic {bytes(data[:2])!r} (expected {MAGIC!r})")
    if len(data) < 3:
        raise WireError("truncated wire message: missing version byte")
    version = data[2]
    if version != WIRE_VERSION:
        raise WireError(
            f"wire schema version {version} is not supported "
            f"(this build speaks version {WIRE_VERSION})"
        )
    if len(data) < HEADER_SIZE:
        raise WireError("truncated wire message: missing body checksum")
    data = bytes(data)
    expected = _unpack_crc(data, 3)[0]
    actual = zlib.crc32(data[HEADER_SIZE:]) & 0xFFFFFFFF
    if actual != expected:
        raise WireError(
            f"wire body checksum mismatch (crc32 {actual:#010x}, header says "
            f"{expected:#010x}): frame truncated or corrupted in flight"
        )
    try:
        value, offset = _decode(data, HEADER_SIZE, [])
    except (IndexError, struct.error) as exc:
        raise WireError(f"truncated or corrupt wire message: {exc!r}") from exc
    if offset != len(data):
        raise WireError(
            f"trailing garbage after wire message ({len(data) - offset} bytes)"
        )
    return value


# -- codec selection -----------------------------------------------------------
def _pickle_dumps(obj) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _pickle_loads(data: bytes):
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise WireError(f"corrupt pickle frame: {exc!r}") from exc


def resolve_codec(name: str):
    """``(dumps, loads)`` for a codec name — ``"wire"`` or ``"pickle"``.

    Both sides of a pipe resolve the same name, so the frames always match;
    the pickle codec is the escape hatch for payload types the wire schema
    does not cover natively (it costs bytes, not correctness — wire embeds
    pickle frames for unknown types anyway).  Either codec surfaces a
    damaged frame as :exc:`WireError`, so the shard pool's corrupt-reply
    recovery path is codec-agnostic.
    """
    if name == "wire":
        return dumps, loads
    if name == "pickle":
        return _pickle_dumps, _pickle_loads
    raise ValueError(f"unknown fleet codec {name!r} (choose 'wire' or 'pickle')")
