"""Persistent worker shards for the fleet: ship states once, then deltas.

:class:`ShardPool` is the one process-backed executor behind both parallel
fleet surfaces — :meth:`repro.fleet.engine.FleetEngine.reconcile` and
:class:`repro.fleet.replay.FleetReplayer`.  Each worker process *owns* a
round-robin shard of the fleet's cells (``cells[w::workers]``) for the
pool's whole lifetime: engines, backends and cluster states are shipped
exactly once, at start.  Afterwards only compact per-round payloads cross
the pipe, encoded by the :mod:`repro.fleet.wire` codec (or pickle, by
config):

* **replay protocol** — trace events out, summaries back (``step``), with
  optional multi-step batching (``batch`` / ``rewind``) and the spillover
  adjustment round (``adjust``);
* **reconcile protocol** — dirty-set-derived health deltas out, full
  reconcile reports and detector checkpoints back (``round``), with a
  full-state resync frame for mutations a delta cannot express.

Every parent→worker exchange is strictly request/reply, and the parent
gathers **all** shard replies before acting on any of them — a shard
process dying mid-round therefore surfaces as one clear
:exc:`ShardFailure` naming the lost cells, never as a hang or a partial
fold-back.  ``fault`` injects exactly that death deterministically for the
failure tests.

The pool keeps cumulative per-phase wall-clock in :attr:`phase_seconds`
(``ship`` = encode+send, ``wait`` = blocked on replies) so benchmarks can
attribute where parallel rounds spend their time.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Sequence

from repro.api.engine import PhoenixEngine
from repro.core.controller import StateBackend

from repro.fleet.engine import Cell, adjust_cells, step_cells
from repro.fleet.wire import resolve_codec


class ShardFailure(RuntimeError):
    """A worker shard died or errored mid-round; the round did not land."""


def _snapshot_state(state):
    """Cheap batch checkpoint: a ``share_nodes`` copy + the failed set.

    Every mid-batch mutation of :class:`~repro.cluster.node.Node` objects is
    a health flag flip through ``fail_nodes``/``recover_nodes`` (trace and
    capacity events; reconcile actions only touch assignment maps), so the
    snapshot can share node objects — skipping the O(nodes) re-allocation a
    full copy pays on every batch — and repair the flags from the recorded
    failed set if a rewind actually restores it.
    """
    return state.copy(share_nodes=True), frozenset(state.failure_order())


def _restore_state(snapshot):
    """Reinstate a :func:`_snapshot_state` checkpoint (repairs node health)."""
    state, failed = snapshot
    for name, node in state.nodes.items():
        node.failed = name in failed
    return state


def _shard_main(conn, payload: list, seed: int, codec: str, fault_after: int | None) -> None:
    """Worker process: owns a shard of cells for the pool's lifetime.

    Protocol: every parent message is a tuple whose first element is the
    command; every reply is ``("ok", data)`` or ``("error", message)``.
    The per-cell work is the shared :func:`repro.fleet.engine.step_cells` /
    :func:`repro.fleet.engine.adjust_cells` helpers and the cells' own
    ``engine.reconcile`` — the exact code the serial paths run, so results
    match the parent's byte for byte.

    ``fault_after`` (tests only) hard-kills the process on the Nth
    received command, simulating an external shard death.
    """
    dumps, loads = resolve_codec(codec)
    cells = []
    for name, state, config, known_failed, reference_revenue in payload:
        engine = PhoenixEngine(config)
        engine.known_failed = known_failed
        cells.append(Cell(name, engine, StateBackend(state), reference_revenue))
    # Last batch checkpoint: (states, detector checkpoints, step events,
    # force, with_events) — enough to rewind when the parent's fold finds a
    # spillover round mid-batch (see FleetReplayer).
    snapshot = None
    commands = 0
    try:
        while True:
            message = loads(conn.recv_bytes())
            commands += 1
            if fault_after is not None and commands >= fault_after:
                os._exit(13)
            command = message[0]
            if command == "stop":
                break
            if command == "step":
                _, events_by_cell, force, with_events = message
                snapshot = None
                summaries = step_cells(
                    cells, events_by_cell, seed, force, with_events=with_events
                )
                conn.send_bytes(dumps(("ok", summaries)))
            elif command == "batch":
                _, step_events, force, with_events = message
                snapshot = (
                    [_snapshot_state(cell.state) for cell in cells],
                    [cell.engine.known_failed for cell in cells],
                    step_events,
                    force,
                    with_events,
                )
                out = [
                    step_cells(cells, events, seed, force, with_events=with_events)
                    for events in step_events
                ]
                conn.send_bytes(dumps(("ok", out)))
            elif command == "rewind":
                # Roll the shard back to just after batch step ``keep - 1``:
                # restore the pre-batch checkpoint and re-run the first
                # ``keep`` steps.  Replay is deterministic (same states, same
                # events, same seed), and engine caches going cold against
                # the restored states cannot change output — incremental and
                # full recomputes are byte-identical by construction.
                keep = message[1]
                states, knowns, step_events, force, with_events = snapshot
                snapshot = None
                for cell, checkpoint, known in zip(cells, states, knowns):
                    cell.backend.state = _restore_state(checkpoint)
                    cell.engine.known_failed = known
                for events in step_events[:keep]:
                    step_cells(cells, events, seed, force, with_events=with_events)
                conn.send_bytes(dumps(("ok", None)))
            elif command == "adjust":
                _, removes, adds = message
                snapshot = None
                summaries, _reports, failed = adjust_cells(cells, removes, adds)
                conn.send_bytes(dumps(("ok", (summaries, failed))))
            elif command == "round":
                _, deltas, force = message
                snapshot = None
                replies = []
                for cell in cells:
                    delta = deltas[cell.name]
                    if delta[0] == "full":
                        # Resync: the parent's mutations were not expressible
                        # as a health delta; replace state and detector.
                        cell.backend.state = delta[1]
                        cell.engine.known_failed = delta[2]
                    else:
                        _, recover, fail, aggregates = delta
                        state = cell.state
                        if recover:
                            state.recover_nodes(recover)
                        if fail:
                            state.fail_nodes(fail)
                        # The diff reaches the parent's failed *set* through a
                        # possibly different op sequence; restore the float
                        # accumulators bit-for-bit (see health_aggregates).
                        state.set_health_aggregates(*aggregates)
                    report = cell.engine.reconcile(cell.backend, force=force)
                    replies.append((report, cell.engine.known_failed))
                conn.send_bytes(dumps(("ok", replies)))
            else:
                conn.send_bytes(dumps(("error", f"unknown command {command!r}")))
    except Exception as exc:  # surface worker failures to the parent
        import traceback

        try:
            conn.send_bytes(dumps(("error", f"{exc!r}\n{traceback.format_exc()}")))
        except Exception:
            pass
    finally:
        conn.close()


class ShardPool:
    """Persistent worker processes, each owning a round-robin cell shard.

    Parameters
    ----------
    cells:
        The fleet's cells, in fleet order.  States, engine configs and
        detector checkpoints ship to the workers once, here.
    seed:
        Seed for randomized ``capacity`` trace events (replay protocol).
    workers:
        Shard count; capped at the cell count by the caller.
    codec:
        Message encoding — ``"wire"`` (compact, default) or ``"pickle"``.
    fault:
        Test hook: ``(shard index, nth command)`` hard-kills that shard's
        process on its Nth received command (``os._exit``), driving the
        worker-death paths deterministically.
    """

    def __init__(
        self,
        cells: Sequence[Cell],
        *,
        seed: int = 0,
        workers: int,
        codec: str = "wire",
        fault: tuple[int, int] | None = None,
    ) -> None:
        import multiprocessing as mp

        self._dumps, self._loads = resolve_codec(codec)  # fail fast on bad names
        context = mp.get_context()
        self.codec = codec
        self.order = [cell.name for cell in cells]
        self.phase_seconds = {"ship": 0.0, "wait": 0.0}
        self.last_reply_bytes = 0
        self._workers = []
        for index in range(workers):
            shard = cells[index::workers]
            if not shard:
                continue
            parent_conn, child_conn = context.Pipe()
            payload = [
                (
                    cell.name,
                    cell.state,
                    cell.engine.config,
                    cell.engine.known_failed,
                    cell.reference_revenue,
                )
                for cell in shard
            ]
            fault_after = fault[1] if fault is not None and fault[0] == index else None
            process = context.Process(
                target=_shard_main,
                args=(child_conn, payload, seed, codec, fault_after),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn, [c.name for c in shard]))

    # -- plumbing --------------------------------------------------------------
    def _send_all(self, messages: list) -> None:
        """One encoded message per live shard, in shard order."""
        started = time.perf_counter()
        try:
            for (_process, conn, _names), message in zip(self._workers, messages):
                conn.send_bytes(self._dumps(message))
        except (BrokenPipeError, OSError) as exc:
            self._fail(f"shard pipe closed while sending: {exc!r}")
        finally:
            self.phase_seconds["ship"] += time.perf_counter() - started

    def _gather(self) -> list:
        """All shard replies, in shard order; raises before any fold-back.

        Collecting *every* reply before returning is what makes worker
        death atomic for the caller: either the whole round is available,
        or :exc:`ShardFailure` fires and no partial result escapes.
        """
        started = time.perf_counter()
        replies = []
        reply_bytes = 0
        try:
            for process, conn, names in self._workers:
                try:
                    raw = conn.recv_bytes()
                except (EOFError, OSError) as exc:
                    self._fail(
                        f"fleet shard worker died mid-round (cells {names}): {exc!r}"
                    )
                reply_bytes += len(raw)
                status, data = self._loads(raw)
                if status != "ok":
                    self._fail(f"fleet shard worker failed: {data}")
                replies.append(data)
        finally:
            self.phase_seconds["wait"] += time.perf_counter() - started
        self.last_reply_bytes = reply_bytes
        return replies

    def _fail(self, message: str) -> None:
        self.close()
        raise ShardFailure(message)

    # -- replay protocol -------------------------------------------------------
    def step(self, events_by_cell: Mapping[str, list], force: bool, with_events: bool):
        """One trace step on every shard; summaries merged to fleet order."""
        self._send_all(
            [
                ("step", {n: events_by_cell[n] for n in names if n in events_by_cell},
                 force, with_events)
                for _process, _conn, names in self._workers
            ]
        )
        by_cell = {}
        for reply in self._gather():
            for summary in reply:
                by_cell[summary.cell] = summary
        return [by_cell[name] for name in self.order]

    def step_batch(self, step_events: list, force: bool, with_events: bool):
        """K trace steps in one round trip; K summary lists, fleet order.

        Workers checkpoint their states before running the batch, so the
        caller may :meth:`rewind` if its per-step fold discovers a spillover
        round partway through.
        """
        self._send_all(
            [
                (
                    "batch",
                    [
                        {n: events[n] for n in names if n in events}
                        for events in step_events
                    ],
                    force,
                    with_events,
                )
                for _process, _conn, names in self._workers
            ]
        )
        merged = [dict() for _ in step_events]
        for reply in self._gather():
            for step_index, summaries in enumerate(reply):
                for summary in summaries:
                    merged[step_index][summary.cell] = summary
        return [[by_cell[name] for name in self.order] for by_cell in merged]

    def rewind(self, keep_steps: int) -> None:
        """Roll every shard back to just after batch step ``keep_steps - 1``."""
        self._send_all([("rewind", keep_steps)] * len(self._workers))
        self._gather()

    def adjust(self, removes: list, adds: list):
        """Spillover phase two on every shard; merged summaries + failures."""
        self._send_all([("adjust", removes, adds)] * len(self._workers))
        updated: dict = {}
        failed: list = []
        for reply in self._gather():
            summaries, shard_failed = reply
            updated.update(summaries)
            failed.extend(shard_failed)
        return updated, failed

    # -- reconcile protocol ----------------------------------------------------
    def round(self, deltas: Mapping[str, tuple], force: bool) -> list:
        """One reconcile round from per-cell deltas; replies in fleet order.

        ``deltas[cell]`` is either ``("delta", recover, fail, aggregates)``
        or ``("full", state, known_failed)``.  Returns one
        ``(report, known_failed)`` pair per cell.
        """
        self._send_all(
            [
                ("round", {n: deltas[n] for n in names}, force)
                for _process, _conn, names in self._workers
            ]
        )
        by_cell = {}
        for (_process, _conn, names), reply in zip(self._workers, self._gather()):
            for name, pair in zip(names, reply):
                by_cell[name] = pair
        return [by_cell[name] for name in self.order]

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        for process, conn, _names in self._workers:
            try:
                conn.send_bytes(self._dumps(("stop",)))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, _conn, _names in self._workers:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
        self._workers = []
