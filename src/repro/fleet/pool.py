"""Persistent worker shards for the fleet: ship states once, then deltas.

:class:`ShardPool` is the one process-backed executor behind both parallel
fleet surfaces — :meth:`repro.fleet.engine.FleetEngine.reconcile` and
:class:`repro.fleet.replay.FleetReplayer`.  Each worker process *owns* a
round-robin shard of the fleet's cells (``cells[w::workers]``) for the
pool's whole lifetime: engines, backends and cluster states are shipped
exactly once, at start.  Afterwards only compact per-round payloads cross
the pipe, encoded by the :mod:`repro.fleet.wire` codec (or pickle, by
config):

* **replay protocol** — trace events out, summaries back (``step``), with
  optional multi-step batching (``batch`` / ``rewind``) and the spillover
  adjustment round (``adjust``);
* **reconcile protocol** — dirty-set-derived health deltas out, full
  reconcile reports and detector checkpoints back (``round``), with a
  full-state resync frame for mutations a delta cannot express.

Every parent→worker exchange is strictly request/reply, and the parent
gathers **all** shard replies before acting on any of them — no partial
result ever folds back.  What happens when a worker faults depends on the
pool's :class:`~repro.fleet.config.SupervisorConfig`:

* **supervised** (the default through :class:`~repro.fleet.config.FleetConfig`)
  — the :class:`ShardSupervisor` detects dead workers (pipe EOF), hung
  workers (per-reply deadlines via ``Connection.poll``) and corrupt reply
  frames (:exc:`~repro.fleet.wire.WireError`), restarts the shard with
  bounded retry + exponential backoff + seeded jitter, re-ships only that
  shard's state, and replays the in-flight command so the fold is
  byte-identical to a fault-free run.  A shard that crash-loops past
  ``max_restarts`` consecutive failures is *degraded* instead of failing
  the call: its cells re-home to an in-process server immediately and are
  redistributed to surviving workers at the next dispatch
  (:class:`~repro.fleet.events.ShardDegraded`).
* **unsupervised** (``supervisor=None``) — any worker fault surfaces as
  one clear :exc:`ShardFailure` naming the lost cells, never as a hang or
  a partial fold-back (legacy fail-fast semantics).

Restart correctness rests on one asymmetry between the two protocols.  In
the reconcile protocol the parent's cell states are *authoritative* before
every round (deltas are derived from them; worker actions are mirrored back
onto them only after the full gather), so a restarted worker is re-seeded
from the parent's current cells and the in-flight round is re-sent with
no-op deltas.  In the replay protocol the parent's states are frozen at
pool start, so each shard keeps a journal of completed commands; a restart
re-seeds from the shard's restart baseline and replays the journal
worker-side (``restore``) before re-sending the in-flight command.  The
journal is kept bounded: past :attr:`ShardPool.JOURNAL_COMPACT_THRESHOLD`
commands the parent pulls a ``snapshot`` of the worker's state, makes it
the new baseline, and truncates the journal.  Either way the
re-executed work runs the exact same code over the exact same inputs as a
fault-free round.

``fault`` injects worker faults deterministically for the failure tests —
either the legacy ``(shard, nth-command)`` kill tuple or a composable
:class:`~repro.chaos.infra.FaultPlan` (kill / hang / corrupt-frame, per
incarnation).

The pool keeps cumulative per-phase wall-clock in :attr:`phase_seconds`
(``ship`` = encode+send, ``wait`` = blocked on replies, including any
recovery work) so benchmarks can attribute where parallel rounds spend
their time.
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from typing import Callable, Mapping, Sequence

from repro import obs
from repro.api.engine import PhoenixEngine
from repro.core.controller import StateBackend

from repro.fleet.config import SupervisorConfig
from repro.fleet.engine import Cell, adjust_cells, step_cells
from repro.fleet.events import ShardDegraded, ShardRestarted
from repro.fleet.wire import WireError, resolve_codec


class ShardFailure(RuntimeError):
    """A worker shard failed unrecoverably; the round did not land."""


class _ShardDown(Exception):
    """Internal: one shard faulted (died / hung / corrupt frame)."""


class _UnknownCommand(Exception):
    """Internal: a worker received a command outside the protocol."""


def _snapshot_state(state):
    """Cheap batch checkpoint: a ``share_nodes`` copy + the failed set.

    Every mid-batch mutation of :class:`~repro.cluster.node.Node` objects is
    a health flag flip through ``fail_nodes``/``recover_nodes`` (trace and
    capacity events; reconcile actions only touch assignment maps), so the
    snapshot can share node objects — skipping the O(nodes) re-allocation a
    full copy pays on every batch — and repair the flags from the recorded
    failed set if a rewind actually restores it.
    """
    return state.copy(share_nodes=True), frozenset(state.failure_order())


def _restore_state(snapshot):
    """Reinstate a :func:`_snapshot_state` checkpoint (repairs node health)."""
    state, failed = snapshot
    for name, node in state.nodes.items():
        node.failed = name in failed
    return state


def _build_cells(payload: Sequence[tuple]) -> list[Cell]:
    """Materialize cells from a shipped payload (worker and local shards)."""
    cells = []
    for name, state, config, known_failed, reference_revenue in payload:
        engine = PhoenixEngine(config)
        engine.known_failed = known_failed
        cells.append(Cell(name, engine, StateBackend(state), reference_revenue))
    return cells


def _cell_payload(cell: Cell, *, copy_state: bool = False) -> tuple:
    """One cell's shippable tuple; ``copy_state`` for in-process servers."""
    state = cell.state.copy() if copy_state else cell.state
    return (
        cell.name,
        state,
        cell.engine.config,
        cell.engine.known_failed,
        cell.reference_revenue,
    )


class _ShardServer:
    """The command executor a shard runs over its cells.

    One implementation serves three homes: worker processes
    (:func:`_shard_main`), journal replay during a restart (``restore``),
    and in-process degraded shards in the parent.  Running the exact same
    handler everywhere is what keeps degraded and restarted rounds
    byte-identical to fault-free ones.
    """

    __slots__ = ("cells", "seed", "snapshot")

    def __init__(self, payload: Sequence[tuple], seed: int) -> None:
        self.cells = _build_cells(payload)
        self.seed = seed
        # Last batch checkpoint: (states, detector checkpoints, step events,
        # force, with_events) — enough to rewind when the parent's fold finds
        # a spillover round mid-batch (see FleetReplayer).
        self.snapshot = None

    def handle(self, message: tuple):
        command = message[0]
        if command == "step":
            _, events_by_cell, force, with_events = message
            self.snapshot = None
            return step_cells(
                self.cells, events_by_cell, self.seed, force, with_events=with_events
            )
        if command == "batch":
            _, step_events, force, with_events = message
            self.snapshot = (
                [_snapshot_state(cell.state) for cell in self.cells],
                [cell.engine.known_failed for cell in self.cells],
                step_events,
                force,
                with_events,
            )
            return [
                step_cells(self.cells, events, self.seed, force, with_events=with_events)
                for events in step_events
            ]
        if command == "rewind":
            # Roll the shard back to just after batch step ``keep - 1``:
            # restore the pre-batch checkpoint and re-run the first ``keep``
            # steps.  Replay is deterministic (same states, same events, same
            # seed), and engine caches going cold against the restored states
            # cannot change output — incremental and full recomputes are
            # byte-identical by construction.
            keep = message[1]
            states, knowns, step_events, force, with_events = self.snapshot
            self.snapshot = None
            for cell, checkpoint, known in zip(self.cells, states, knowns):
                cell.backend.state = _restore_state(checkpoint)
                cell.engine.known_failed = known
            for events in step_events[:keep]:
                step_cells(self.cells, events, self.seed, force, with_events=with_events)
            return None
        if command == "adjust":
            _, removes, adds = message
            self.snapshot = None
            summaries, _reports, failed = adjust_cells(self.cells, removes, adds)
            return (summaries, failed)
        if command == "round":
            _, deltas, force = message
            self.snapshot = None
            replies = []
            for cell in self.cells:
                delta = deltas[cell.name]
                if delta[0] == "full":
                    # Resync: the parent's mutations were not expressible as
                    # a health delta; replace state and detector.
                    cell.backend.state = delta[1]
                    cell.engine.known_failed = delta[2]
                else:
                    _, recover, fail, aggregates = delta
                    state = cell.state
                    if recover:
                        state.recover_nodes(recover)
                    if fail:
                        state.fail_nodes(fail)
                    # The diff reaches the parent's failed *set* through a
                    # possibly different op sequence; restore the float
                    # accumulators bit-for-bit (see health_aggregates).
                    state.set_health_aggregates(*aggregates)
                report = cell.engine.reconcile(cell.backend, force=force)
                replies.append((report, cell.engine.known_failed))
            return replies
        if command == "adopt":
            # Take ownership of cells re-homed from a degraded shard.  The
            # batch snapshot (if any) predates these cells and is only ever
            # consumed by an immediately-following rewind, which the pool
            # never interleaves with an adoption.
            self.cells.extend(_build_cells(message[1]))
            return None
        if command == "snapshot":
            # Journal compaction: ship the shard's current logical state
            # back to the parent, which makes it the new restart baseline
            # and truncates the replay journal (read-only here — encoding
            # the reply is itself the state copy).
            return [_cell_payload(cell) for cell in self.cells]
        raise _UnknownCommand(f"unknown command {message[0]!r}")


_HANG_SECONDS = 3600.0


def _traced_handle(server: _ShardServer, message: tuple, parent_id: str, prefix: str):
    """Run one command under the worker's tracer, parented to the caller.

    The worker enables its default tracer under the parent-chosen id
    prefix (``w<shard>i<incarnation>.`` — deterministic across restarts),
    attaches the parent span id from the wire, and wraps the command in a
    ``shard.<command>`` span; spans the instrumented engine code emits
    inside nest underneath it.  Returns the handler's data plus every
    finished span, for shipping home in the reply.
    """
    tracer = obs.tracer()
    tracer.enable(prefix=prefix)
    with tracer.attach(parent_id):
        with tracer.span("shard." + message[0]):
            data = server.handle(message)
    return data, tuple(tracer.drain())


def _shard_main(conn, payload: list, seed: int, codec: str, faults) -> None:
    """Worker process: owns a shard of cells for the pool's lifetime.

    Protocol: every parent message is a tuple whose first element is the
    command; every reply is ``("ok", data)`` or ``("error", message)``.
    When the parent traces, a command arrives wrapped as ``("span",
    parent_id, id_prefix, inner)`` and the reply grows a third element —
    the worker's finished spans (see :func:`_traced_handle`); an untraced
    command is handled exactly as before, so observability off keeps the
    wire bytes identical.  The per-cell work is the shared
    :class:`_ShardServer` — the exact code the serial paths and degraded
    in-process shards run, so results match the parent's byte for byte.

    ``faults`` (tests only) is a list of ``(kind, nth, mode)`` tuples for
    this incarnation: ``kill`` hard-exits on the Nth received message,
    ``hang`` ignores SIGTERM and sleeps past any deadline, ``corrupt``
    damages the Nth reply frame after executing the command.
    """
    dumps, loads = resolve_codec(codec)
    server = _ShardServer(payload, seed)
    fault_at = {nth: (kind, mode) for kind, nth, mode in faults or ()}
    commands = 0
    try:
        while True:
            message = loads(conn.recv_bytes())
            commands += 1
            fault = fault_at.get(commands)
            if fault is not None:
                kind = fault[0]
                if kind == "kill":
                    os._exit(13)
                if kind == "hang":
                    import signal

                    # A genuinely wedged worker does not die politely; make
                    # the simulated one just as stubborn so the supervisor's
                    # terminate→kill escalation is actually exercised.
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    time.sleep(_HANG_SECONDS)
                    os._exit(3)
            command = message[0]
            span_wrap = None
            if command == "span":
                span_wrap = (message[1], message[2])
                message = message[3]
                command = message[0]
            if command == "stop":
                break
            try:
                if command == "restore":
                    # Journal replay after a restart: re-execute completed
                    # commands without individual replies, then ack once.
                    for entry in message[1]:
                        server.handle(entry)
                    reply = ("ok", None)
                elif span_wrap is not None:
                    data, spans = _traced_handle(server, message, *span_wrap)
                    reply = ("ok", data, spans)
                else:
                    reply = ("ok", server.handle(message))
            except _UnknownCommand as exc:
                reply = ("error", str(exc))
            out = dumps(reply)
            if fault is not None and fault[0] == "corrupt":
                out = _corrupt_frame(out, fault[1])
            conn.send_bytes(out)
    except Exception as exc:  # surface worker failures to the parent
        import traceback

        try:
            conn.send_bytes(dumps(("error", f"{exc!r}\n{traceback.format_exc()}")))
        except Exception:
            pass
    finally:
        conn.close()


def _corrupt_frame(frame: bytes, mode: str) -> bytes:
    """Deterministically damage an encoded reply frame (fault injection)."""
    if mode == "truncate":
        return frame[: max(1, len(frame) // 2)]
    damaged = bytearray(frame)
    damaged[len(damaged) // 2] ^= 0x40
    return bytes(damaged)


class _LegacyFault:
    """Adapter for the original ``(shard, nth-command)`` kill tuple."""

    def __init__(self, shard: int, nth: int) -> None:
        self.shard = shard
        self.nth = nth

    def for_shard(self, shard: int, incarnation: int) -> list[tuple]:
        if shard != self.shard:
            return []
        return [("kill", self.nth, "")]


def _resolve_fault(fault):
    if fault is None:
        return None
    if hasattr(fault, "for_shard"):
        return fault
    shard, nth = fault
    return _LegacyFault(shard, nth)


class _Shard:
    """One shard: a worker process, or an in-process server once degraded."""

    __slots__ = (
        "index",
        "names",
        "process",
        "conn",
        "incarnation",
        "failures",
        "journal",
        "initial_payload",
        "server",
    )

    def __init__(self, index: int, names: list[str], initial_payload: list) -> None:
        self.index = index
        self.names = names
        self.process = None
        self.conn = None
        self.incarnation = 0
        self.failures = 0
        # Completed replay-protocol commands since the last compaction
        # snapshot, for journal-based restarts.  ``None`` when journaling
        # is pointless or invalid (unsupervised pool, reconcile protocol,
        # degradation).
        self.journal: list | None = []
        self.initial_payload = initial_payload
        self.server: _ShardServer | None = None

    @property
    def remote(self) -> bool:
        return self.server is None


class ShardSupervisor:
    """Restart/degrade policy for a :class:`ShardPool`'s worker shards.

    Owns the consecutive-failure accounting, the exponential backoff with
    seeded jitter, the two restart strategies (parent-state resync for the
    reconcile protocol, journal replay for the replay protocol) and the
    degradation path that re-homes a crash-looping shard's cells in-process.
    Purely a policy object: all process plumbing stays in the pool.
    """

    def __init__(self, pool: "ShardPool", config: SupervisorConfig) -> None:
        self.pool = pool
        self.config = config
        self._rng = random.Random(config.seed)

    def backoff(self, attempt: int) -> None:
        registry = obs.registry()
        if registry.enabled:
            registry.counter("fleet.shard_backoffs").inc()
        base = self.config.backoff_base
        if base <= 0:
            return
        delay = min(self.config.backoff_cap, base * (2 ** (attempt - 1)))
        # Jitter in [0.5, 1.5) from a seeded RNG: deterministic schedule,
        # de-synchronized restarts.  Timing never influences results.
        time.sleep(delay * (0.5 + self._rng.random()))

    def recover(self, shard: _Shard, build, resync, reason: str):
        """Handle one shard fault; returns ``("pending", None)`` if the
        restarted worker's reply should be awaited, or ``("done", data)``
        when the shard was degraded and the in-flight command already ran
        in-process."""
        pool = self.pool
        while True:
            shard.failures += 1
            if shard.failures > self.config.max_restarts:
                inflight = resync(shard.names) if resync is not None else build(shard.names)
                self.degrade(shard, reason)
                return ("done", pool._local_call(shard, inflight))
            self.backoff(shard.failures)
            shard.incarnation += 1
            pool._emit(
                ShardRestarted(
                    shard=shard.index,
                    attempt=shard.failures,
                    cells=tuple(shard.names),
                    reason=reason,
                )
            )
            try:
                self._respawn(shard, reconcile=resync is not None)
                message = resync(shard.names) if resync is not None else build(shard.names)
                pool._send(shard, message)
                return ("pending", None)
            except _ShardDown as exc:
                reason = str(exc)
                continue

    def _respawn(self, shard: _Shard, *, reconcile: bool) -> None:
        """Start a fresh worker and bring it to the pre-command state."""
        pool = self.pool
        if reconcile:
            # Reconcile protocol: the parent's cells are authoritative before
            # every round, so re-ship them as the new incarnation's payload.
            payload = [_cell_payload(pool._cells[name]) for name in shard.names]
            pool._spawn(shard, payload)
            return
        if shard.journal is None:
            pool._fail(
                f"fleet shard worker died with no recovery journal "
                f"(cells {shard.names})"
            )
        pool._spawn(shard, shard.initial_payload)
        if shard.journal:
            pool._send(shard, ("restore", list(shard.journal)))
            status, _data = pool._await_reply(shard)
            if status != "ok":
                raise _ShardDown("shard failed while replaying its journal")

    def _local_server(self, shard: _Shard) -> _ShardServer:
        """An in-process server holding this shard's current logical state.

        Reconcile protocol: copies of the parent's (authoritative) cells.
        Replay protocol: the initial payload re-copied, with the shard's
        journal replayed over it — the same reconstruction a restarted
        worker performs, just in the parent's process.
        """
        pool = self.pool
        if pool._protocol == "reconcile":
            payload = [
                _cell_payload(pool._cells[name], copy_state=True)
                for name in shard.names
            ]
            return _ShardServer(payload, pool._seed)
        if shard.journal is None:
            pool._fail(
                f"fleet shard worker died with no recovery journal "
                f"(cells {shard.names})"
            )
        payload = [
            (name, state.copy(), config, known, ref)
            for name, state, config, known, ref in shard.initial_payload
        ]
        server = _ShardServer(payload, pool._seed)
        for entry in shard.journal:
            server.handle(entry)
        return server

    def degrade(self, shard: _Shard, reason: str) -> None:
        """Re-home a crash-looping shard's cells in-process.

        The server is the same class workers run, over equivalent state, so
        every subsequent reply is byte-identical to a fault-free worker's.
        """
        server = self._local_server(shard)
        shard.server = server
        shard.journal = None
        shard.process = None
        if shard.conn is not None:
            shard.conn.close()
            shard.conn = None
        self.pool._emit(
            ShardDegraded(shard=shard.index, cells=tuple(shard.names), reason=reason)
        )


class ShardPool:
    """Persistent worker processes, each owning a round-robin cell shard.

    Parameters
    ----------
    cells:
        The fleet's cells, in fleet order.  States, engine configs and
        detector checkpoints ship to the workers once, here.  The pool
        keeps a reference: under supervision, restarted reconcile-protocol
        shards are re-seeded from the parent's current (authoritative)
        cell states.
    seed:
        Seed for randomized ``capacity`` trace events (replay protocol).
    workers:
        Shard count; capped at the cell count by the caller.
    codec:
        Message encoding — ``"wire"`` (compact, default) or ``"pickle"``.
    fault:
        Test hook — the legacy ``(shard index, nth command)`` kill tuple,
        or any object with ``for_shard(shard, incarnation)`` returning
        ``(kind, nth, mode)`` worker-fault tuples (see
        :class:`~repro.chaos.infra.FaultPlan`).
    supervisor:
        :class:`~repro.fleet.config.SupervisorConfig` enabling the
        self-healing restart/degrade machinery, or ``None`` for legacy
        fail-fast :exc:`ShardFailure` semantics.
    on_event:
        Optional callback receiving :class:`~repro.fleet.events.ShardRestarted`
        and :class:`~repro.fleet.events.ShardDegraded` as they happen
        (the fleet wires its event bus here).
    """

    #: ``close()`` escalation deadlines, seconds (class attrs so tests can
    #: shrink them): cooperative join after "stop", then SIGTERM, then
    #: SIGKILL for workers that ignore both.
    STOP_JOIN_TIMEOUT = 10.0
    TERMINATE_JOIN_TIMEOUT = 5.0
    KILL_JOIN_TIMEOUT = 5.0
    #: Replay-journal compaction threshold, in journaled commands: once a
    #: shard's journal grows past this, the parent pulls a state snapshot
    #: from the worker, makes it the new restart baseline, and truncates
    #: the journal — bounding parent memory at O(threshold) commands per
    #: shard for arbitrarily long replay sessions (class attr so tests
    #: can shrink it).
    JOURNAL_COMPACT_THRESHOLD = 64

    def __init__(
        self,
        cells: Sequence[Cell],
        *,
        seed: int = 0,
        workers: int,
        codec: str = "wire",
        fault=None,
        supervisor: SupervisorConfig | None = None,
        on_event: Callable | None = None,
    ) -> None:
        import multiprocessing as mp

        self._dumps, self._loads = resolve_codec(codec)  # fail fast on bad names
        self._context = mp.get_context()
        self.codec = codec
        self.order = [cell.name for cell in cells]
        self.phase_seconds = {"ship": 0.0, "wait": 0.0}
        self.last_reply_bytes = 0
        #: Shard indexes whose worker needed SIGTERM/SIGKILL at close.
        self.force_killed: list[int] = []
        self._cells = {cell.name: cell for cell in cells}
        self._seed = seed
        self._protocol = "replay"
        self._fault = _resolve_fault(fault)
        self._on_event = on_event
        self.supervisor = (
            ShardSupervisor(self, supervisor) if supervisor is not None else None
        )
        self._shards: list[_Shard] = []
        for index in range(workers):
            shard_cells = cells[index::workers]
            if not shard_cells:
                continue
            payload = [_cell_payload(cell) for cell in shard_cells]
            shard = _Shard(index, [c.name for c in shard_cells], payload)
            if self.supervisor is None:
                # Unsupervised pools never restart a worker, so journaling
                # replay commands would only accumulate memory.
                shard.journal = None
            self._spawn(shard, payload)
            self._shards.append(shard)

    # -- plumbing --------------------------------------------------------------
    def _emit(self, event) -> None:
        registry = obs.registry()
        if registry.enabled:
            # PR 9's supervision events double as metrics: one counter per
            # event kind, labelled by shard, so restart storms show up in
            # /metrics without anyone subscribing to the bus.
            if isinstance(event, ShardRestarted):
                registry.counter("fleet.shard_restarts", shard=event.shard).inc()
            elif isinstance(event, ShardDegraded):
                registry.counter("fleet.shard_degraded", shard=event.shard).inc()
        if self._on_event is not None:
            self._on_event(event)

    def _spawn(self, shard: _Shard, payload: list) -> None:
        parent_conn, child_conn = self._context.Pipe()
        faults = (
            self._fault.for_shard(shard.index, shard.incarnation)
            if self._fault is not None
            else []
        )
        process = self._context.Process(
            target=_shard_main,
            args=(child_conn, payload, self._seed, self.codec, faults),
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn

    def _send(self, shard: _Shard, message: tuple) -> None:
        try:
            shard.conn.send_bytes(self._dumps(message))
        except (BrokenPipeError, OSError) as exc:
            raise _ShardDown(
                f"fleet shard worker died mid-round (cells {shard.names}): {exc!r}"
            ) from exc

    def _await_reply(self, shard: _Shard) -> tuple:
        """One decoded reply from a worker, subject to the supervisor's
        per-reply deadline.  Raises :class:`_ShardDown` on death (EOF),
        hang (deadline) or a corrupt frame — the worker is already killed
        when that happens, so a restart can follow immediately."""
        timeout = (
            self.supervisor.config.round_timeout if self.supervisor is not None else None
        )
        if timeout is not None and not shard.conn.poll(timeout):
            self._kill_worker(shard)
            raise _ShardDown(
                f"fleet shard worker hung past the {timeout:g}s deadline "
                f"(cells {shard.names})"
            )
        try:
            raw = shard.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise _ShardDown(
                f"fleet shard worker died mid-round (cells {shard.names}): {exc!r}"
            ) from exc
        self.last_reply_bytes += len(raw)
        try:
            reply = self._loads(raw)
            if len(reply) == 3 and reply[0] == "ok":
                # Traced reply: the third element is the worker's finished
                # spans; fold them into the parent's tree and hand callers
                # the usual (status, data) shape.
                if reply[2]:
                    obs.tracer().adopt(reply[2])
                return reply[0], reply[1]
            return reply
        except WireError as exc:
            self._kill_worker(shard)
            raise _ShardDown(
                f"fleet shard worker sent a corrupt reply frame "
                f"(cells {shard.names}): {exc}"
            ) from exc

    def _kill_worker(self, shard: _Shard) -> None:
        process = shard.process
        if process is None:
            return
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def _local_call(self, shard: _Shard, message: tuple):
        try:
            return shard.server.handle(message)
        except _UnknownCommand as exc:
            self._fail(f"fleet shard worker failed: {exc}")
        except ShardFailure:
            raise
        except Exception as exc:
            self._fail(f"fleet shard worker failed: {exc!r}")

    def _fail(self, message: str) -> None:
        self.close()
        raise ShardFailure(message)

    def _maybe_adopt(self) -> None:
        """Re-home degraded shards' cells onto surviving workers.

        Runs at dispatch time (never between a batch and its rewind, which
        is the one command pair that depends on worker-side snapshots).
        Failures during adoption restart the target worker but do not retry
        the hand-off this round — the cells simply stay in-process until the
        next dispatch.
        """
        for shard in [s for s in self._shards if not s.remote and s.names]:
            remote = [s for s in self._shards if s.remote]
            if not remote:
                break
            target = remote[shard.index % len(remote)]
            payload = [_cell_payload(cell) for cell in shard.server.cells]
            message = ("adopt", payload)
            try:
                self._send(target, message)
                status, _data = self._await_reply(target)
                if status != "ok":
                    self._fail(f"fleet shard worker failed: {_data}")
            except _ShardDown as exc:
                self._restart_in_place(target, str(exc))
                continue
            target.failures = 0
            if target.journal is not None:
                target.journal.append(message)
            target.names.extend(shard.names)
            shard.names = []
            shard.server = None
        self._shards = [s for s in self._shards if s.names]

    def _maybe_compact(self) -> None:
        """Truncate oversized replay journals against a fresh worker snapshot.

        Runs at dispatch time, next to :meth:`_maybe_adopt` (so it can
        never slip between a batch and its rewind — the one command pair
        that depends on worker-side snapshots).  The snapshot reply is the
        same shippable payload a spawn uses; once it lands, the journal
        entries it subsumes are dropped and a later restart replays only
        commands issued after it.  A worker that faults during the snapshot
        is restarted in place (journal intact) and simply keeps its journal
        until the next compaction opportunity.
        """
        for shard in self._shards:
            if (
                not shard.remote
                or shard.journal is None
                or len(shard.journal) < self.JOURNAL_COMPACT_THRESHOLD
            ):
                continue
            try:
                self._send(shard, ("snapshot",))
                status, data = self._await_reply(shard)
                if status != "ok":
                    self._fail(f"fleet shard worker failed: {data}")
            except _ShardDown as exc:
                self._restart_in_place(shard, str(exc))
                continue
            shard.failures = 0
            shard.initial_payload = data
            shard.journal = []

    def _restart_in_place(self, shard: _Shard, reason: str) -> None:
        """Bring a worker back to its pre-command state with no in-flight
        command to re-send (used when an adoption hand-off fails)."""
        supervisor = self.supervisor
        while True:
            shard.failures += 1
            if shard.failures > supervisor.config.max_restarts:
                supervisor.degrade(shard, reason)
                return
            supervisor.backoff(shard.failures)
            shard.incarnation += 1
            self._emit(
                ShardRestarted(
                    shard=shard.index,
                    attempt=shard.failures,
                    cells=tuple(shard.names),
                    reason=reason,
                )
            )
            try:
                supervisor._respawn(shard, reconcile=self._protocol == "reconcile")
                return
            except _ShardDown as exc:
                reason = str(exc)

    # -- command execution -----------------------------------------------------
    def _run(
        self,
        build: Callable[[list[str]], tuple],
        *,
        journal: bool,
        resync: Callable[[list[str]], tuple] | None = None,
        adoptable: bool = True,
    ) -> dict:
        """Execute one command across every shard; replies keyed by shard index.

        ``build(names)`` produces the command message for a shard owning
        ``names`` (called again on restarts, so ownership changes stay
        coherent).  ``resync(names)`` — reconcile protocol only — produces
        the no-op variant re-sent after a restart re-shipped parent state.
        ``journal`` marks replay-protocol commands that must be journaled
        for journal-based restarts.
        """
        self._protocol = "reconcile" if resync is not None else "replay"
        if self.supervisor is not None and adoptable:
            self._maybe_adopt()
            self._maybe_compact()
        self.last_reply_bytes = 0
        registry = obs.registry()
        tracer = obs.tracer()
        sent: dict[int, tuple] = {}
        down: dict[int, str] = {}
        started = time.perf_counter()
        with tracer.span("fleet.ship"):
            for shard in self._shards:
                if not shard.remote:
                    continue
                message = build(shard.names)
                sent[shard.index] = message
                if tracer.enabled:
                    # Wrap the command so the worker parents its spans under
                    # ours.  Only the inner message is journaled/re-sent —
                    # recovery replay stays byte-identical to the untraced
                    # protocol.
                    message = (
                        "span",
                        tracer.current_id(),
                        f"w{shard.index}i{shard.incarnation}.",
                        message,
                    )
                try:
                    self._send(shard, message)
                except _ShardDown as exc:
                    down[shard.index] = str(exc)
        elapsed = time.perf_counter() - started
        self.phase_seconds["ship"] += elapsed
        if registry.enabled:
            registry.histogram("fleet.ship_seconds").observe(elapsed)
        replies: dict[int, object] = {}
        for shard in self._shards:
            if shard.remote:
                continue
            replies[shard.index] = self._local_call(shard, build(shard.names))
        started = time.perf_counter()
        try:
            with tracer.span("fleet.compute"):
                queue = deque(shard for shard in self._shards if shard.remote)
                while queue:
                    shard = queue.popleft()
                    try:
                        if shard.index in down:
                            raise _ShardDown(down.pop(shard.index))
                        status, data = self._await_reply(shard)
                    except _ShardDown as exc:
                        if self.supervisor is None:
                            self._fail(str(exc))
                        outcome, local_data = self.supervisor.recover(
                            shard, build, resync, str(exc)
                        )
                        if outcome == "pending":
                            sent[shard.index] = (
                                resync(shard.names)
                                if resync is not None
                                else build(shard.names)
                            )
                            queue.append(shard)
                        else:
                            replies[shard.index] = local_data
                        continue
                    if status != "ok":
                        self._fail(f"fleet shard worker failed: {data}")
                    shard.failures = 0
                    if journal and shard.journal is not None:
                        shard.journal.append(sent[shard.index])
                    replies[shard.index] = data
        finally:
            elapsed = time.perf_counter() - started
            self.phase_seconds["wait"] += elapsed
            if registry.enabled:
                registry.histogram("fleet.wait_seconds").observe(elapsed)
                registry.counter("fleet.reply_bytes").inc(self.last_reply_bytes)
        return replies

    def _shard_replies(self, replies: dict) -> list:
        """(names, reply) pairs in shard order for positional merges."""
        return [
            (shard.names, replies[shard.index])
            for shard in self._shards
            if shard.index in replies
        ]

    # -- replay protocol -------------------------------------------------------
    def step(self, events_by_cell: Mapping[str, list], force: bool, with_events: bool):
        """One trace step on every shard; summaries merged to fleet order."""
        replies = self._run(
            lambda names: (
                "step",
                {n: events_by_cell[n] for n in names if n in events_by_cell},
                force,
                with_events,
            ),
            journal=True,
        )
        by_cell = {}
        for _names, reply in self._shard_replies(replies):
            for summary in reply:
                by_cell[summary.cell] = summary
        return [by_cell[name] for name in self.order]

    def step_batch(self, step_events: list, force: bool, with_events: bool):
        """K trace steps in one round trip; K summary lists, fleet order.

        Workers checkpoint their states before running the batch, so the
        caller may :meth:`rewind` if its per-step fold discovers a spillover
        round partway through.
        """
        replies = self._run(
            lambda names: (
                "batch",
                [{n: events[n] for n in names if n in events} for events in step_events],
                force,
                with_events,
            ),
            journal=True,
        )
        merged = [dict() for _ in step_events]
        for _names, reply in self._shard_replies(replies):
            for step_index, summaries in enumerate(reply):
                for summary in summaries:
                    merged[step_index][summary.cell] = summary
        return [[by_cell[name] for name in self.order] for by_cell in merged]

    def rewind(self, keep_steps: int) -> None:
        """Roll every shard back to just after batch step ``keep_steps - 1``."""
        self._run(
            lambda names: ("rewind", keep_steps),
            journal=True,
            adoptable=False,
        )

    def adjust(self, removes: list, adds: list):
        """Spillover phase two on every shard; merged summaries + failures."""
        replies = self._run(
            lambda names: ("adjust", removes, adds),
            journal=True,
        )
        updated: dict = {}
        failed: list = []
        for _names, reply in self._shard_replies(replies):
            summaries, shard_failed = reply
            updated.update(summaries)
            failed.extend(shard_failed)
        return updated, failed

    # -- reconcile protocol ----------------------------------------------------
    def round(self, deltas: Mapping[str, tuple], force: bool) -> list:
        """One reconcile round from per-cell deltas; replies in fleet order.

        ``deltas[cell]`` is either ``("delta", recover, fail, aggregates)``
        or ``("full", state, known_failed)``.  Returns one
        ``(report, known_failed)`` pair per cell.
        """
        # The reconcile protocol restarts from parent state, which makes any
        # replay journal from an earlier protocol useless; drop it.
        for shard in self._shards:
            shard.journal = None

        def resync(names: list[str]) -> tuple:
            # A restarted worker was just re-seeded with the parent's current
            # states, which already include this round's health mutations —
            # re-send the round with empty deltas and the states' own
            # aggregates so the worker recomputes from identical inputs.
            return (
                "round",
                {
                    n: ("delta", (), (), self._cells[n].state.health_aggregates())
                    for n in names
                },
                force,
            )

        replies = self._run(
            lambda names: ("round", {n: deltas[n] for n in names}, force),
            journal=False,
            resync=resync,
        )
        by_cell = {}
        for names, reply in self._shard_replies(replies):
            for name, pair in zip(names, reply):
                by_cell[name] = pair
        return [by_cell[name] for name in self.order]

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker, escalating join → terminate → kill.

        Shards whose worker ignored the cooperative stop (and, for the
        truly wedged, SIGTERM too) are force-killed and reported in
        :attr:`force_killed`.
        """
        self.force_killed = []
        shards = [s for s in self._shards if s.remote and s.process is not None]
        for shard in shards:
            try:
                shard.conn.send_bytes(self._dumps(("stop",)))
            except (BrokenPipeError, OSError):
                pass
            shard.conn.close()
        for shard in shards:
            process = shard.process
            process.join(timeout=self.STOP_JOIN_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self.TERMINATE_JOIN_TIMEOUT)
            if process.is_alive():
                process.kill()
                process.join(timeout=self.KILL_JOIN_TIMEOUT)
                self.force_killed.append(shard.index)
        self._shards = []
