"""Spillover policies: where does residual critical demand go?

When a cell's surviving capacity cannot satisfy its critical set, the fleet
asks a :class:`SpilloverPolicy` to place the *residual demand* — the
C1-tagged microservices the cell could not keep running — onto donor cells.
The stock :class:`PackedSpillover` answers with a second, fleet-level
plan→pack round: every donor cell becomes a synthetic **node** whose
capacity is the cell's free healthy capacity, every residual application
becomes a synthetic one-microservice application carrying its aggregate
demand, and the stock :class:`~repro.api.stages.Ranker` /
:class:`~repro.api.stages.Packer` stages run over that cell-as-node state —
the same Algorithm-1/2 machinery that places containers on nodes decides
which cells host which refugees, under the same operator objective.

Policies only *plan*; the fleet applies assignments in a second phase
(register the clone application on the donor, then one forced engine round)
so that no cross-cell action can ever overshoot a donor's capacity — the
donor's own engine enforces it.
"""

from __future__ import annotations

from typing import NamedTuple, Protocol, Sequence, runtime_checkable

from repro.api.config import EngineConfig
from repro.api.engine import PhoenixEngine
from repro.cluster.application import Application
from repro.cluster.microservice import Microservice
from repro.cluster.node import Node
from repro.cluster.resources import Resources
from repro.cluster.state import ClusterState, ReplicaId
from repro.criticality import CriticalityTag

from repro.fleet.summary import clone_name


class MsSpec(NamedTuple):
    """Picklable description of one microservice of a residual application."""

    name: str
    cpu: float
    memory: float
    replicas: int
    criticality: int
    stateful: bool = False


class DonorCapacity(NamedTuple):
    """One donor cell's free healthy capacity, as seen by the policy."""

    cell: str
    free_cpu: float
    free_mem: float


class ResidualDemand(NamedTuple):
    """One application's uncovered critical demand in one cell."""

    cell: str
    app: str
    price_per_unit: float
    microservices: tuple[MsSpec, ...]

    @property
    def cpu(self) -> float:
        return sum(ms.cpu * ms.replicas for ms in self.microservices)

    @property
    def memory(self) -> float:
        return sum(ms.memory * ms.replicas for ms in self.microservices)


class SpilloverAssignment(NamedTuple):
    """A planned migration: one residual application to one donor cell."""

    source_cell: str
    app: str
    donor_cell: str
    price_per_unit: float
    microservices: tuple[MsSpec, ...]
    cpu: float
    memory: float


@runtime_checkable
class SpilloverPolicy(Protocol):
    """Plans donor placements for residual critical demand.

    Implementations must be deterministic functions of their inputs — the
    fleet calls them with identical inputs from the serial and parallel
    paths and requires identical plans back.
    """

    name: str

    def plan(
        self,
        donors: Sequence[DonorCapacity],
        residuals: Sequence[ResidualDemand],
    ) -> list[SpilloverAssignment]: ...


class NoSpillover:
    """Cells are strictly isolated; residual demand stays where it is."""

    name = "none"

    def plan(self, donors, residuals) -> list[SpilloverAssignment]:
        return []


class PackedSpillover:
    """Stock policy: a fleet-level plan→pack round over a cell-as-node state.

    Builds a synthetic :class:`ClusterState` (donor cells as nodes, residual
    applications as single aggregate microservices), runs the stock engine
    pipeline on it, and reads donor assignments off the packed target.
    Whole applications move: each residual lands in exactly one donor, which
    keeps the clone lifecycle (register / release) atomic per application.
    Residuals the fleet-level round cannot activate or place stay home —
    the cell simply remains degraded and is re-planned when its residual
    set changes.
    """

    name = "packed"

    def __init__(self, objective="revenue", implementation: str = "fast") -> None:
        # One pipeline per plan() call would be correct too; the engine is
        # cheap, but the config is validated once here, fail-fast.
        self._config = EngineConfig(
            objective=objective, implementation=implementation, incremental=False
        )

    def plan(
        self,
        donors: Sequence[DonorCapacity],
        residuals: Sequence[ResidualDemand],
    ) -> list[SpilloverAssignment]:
        if not donors or not residuals:
            return []
        nodes = [
            Node(donor.cell, Resources(donor.free_cpu, donor.free_mem))
            for donor in donors
        ]
        apps = []
        labels: list[tuple[ResidualDemand, str]] = []
        for residual in residuals:
            label = f"{residual.cell}:{residual.app}"
            aggregate = Microservice(
                name="residual",
                resources=Resources(residual.cpu, residual.memory),
                criticality=CriticalityTag(
                    min(ms.criticality for ms in residual.microservices)
                ),
                replicas=1,
            )
            apps.append(
                Application.from_microservices(
                    label, [aggregate], price_per_unit=residual.price_per_unit
                )
            )
            labels.append((residual, label))
        synthetic = ClusterState(nodes=nodes, applications=apps)
        engine = PhoenixEngine(self._config)
        _, schedule = engine.pipeline.compute(synthetic)
        assignments: list[SpilloverAssignment] = []
        for residual, label in labels:
            donor = schedule.target_assignment.get(ReplicaId(label, "residual", 0))
            if donor is None:
                continue
            assignments.append(
                SpilloverAssignment(
                    source_cell=residual.cell,
                    app=residual.app,
                    donor_cell=donor,
                    price_per_unit=residual.price_per_unit,
                    microservices=residual.microservices,
                    cpu=residual.cpu,
                    memory=residual.memory,
                )
            )
        return assignments


def build_clone_application(assignment: SpilloverAssignment) -> Application:
    """The donor-side clone application for one planned spillover.

    Carries the *actual* residual microservices (original per-replica
    resources, replica counts and criticality tags), so the donor's own
    planner ranks and places them exactly like native tenants.
    """
    microservices = [
        Microservice(
            name=ms.name,
            resources=Resources(ms.cpu, ms.memory),
            criticality=CriticalityTag(ms.criticality),
            replicas=ms.replicas,
            stateful=ms.stateful,
        )
        for ms in assignment.microservices
    ]
    return Application.from_microservices(
        clone_name(assignment.app, assignment.source_cell),
        microservices,
        price_per_unit=assignment.price_per_unit,
    )


#: Policy spellings accepted by :func:`resolve_spillover`.
SPILLOVER_POLICIES = ("packed", "none")


def resolve_spillover(spec, objective="revenue", implementation: str = "fast"):
    """Turn a spillover spec (instance or name) into a policy instance."""
    if isinstance(spec, str):
        lowered = spec.lower()
        if lowered == "packed":
            return PackedSpillover(objective=objective, implementation=implementation)
        if lowered == "none":
            return NoSpillover()
        raise ValueError(
            f"unknown spillover policy {spec!r}; expected one of "
            f"{sorted(SPILLOVER_POLICIES)} or a SpilloverPolicy instance"
        )
    if isinstance(spec, SpilloverPolicy):
        return spec
    raise TypeError(
        f"spillover must be a SpilloverPolicy or a name, got {type(spec).__name__}"
    )
