"""Fleet configuration: one declarative description of a federated fleet.

:class:`FleetConfig` extends :class:`~repro.api.config.EngineConfig` — every
engine-level knob (objective, implementation, packing flags, incremental
reconciliation) applies fleet-wide as the per-cell default — and adds the
federation surface: how many cells, how nodes and applications partition
onto them, which spillover policy covers cross-cell residual demand, and
per-cell overrides for heterogeneous fleets (e.g. one cell on the golden
reference stages, another on a fairness objective).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.api.config import EngineConfig
from repro.traces.fleet import default_fleet_cells

from repro.fleet.partition import resolve_partitioner


def default_cell_names(cells: int) -> tuple[str, ...]:
    """``cell-0`` … ``cell-N-1`` — the naming the whole fleet layer uses.

    Delegates to :func:`repro.traces.fleet.default_fleet_cells`, so fleets
    and the scenarios generated for them can never disagree on the default
    cell naming.
    """
    return tuple(default_fleet_cells(cells))


#: EngineConfig field names a per-cell override may set.
_ENGINE_FIELDS = tuple(f.name for f in fields(EngineConfig))


@dataclass
class FleetConfig(EngineConfig):
    """Declarative description of a :class:`~repro.fleet.engine.FleetEngine`.

    Parameters (on top of every :class:`EngineConfig` field)
    ----------
    cells:
        Number of failure domains the fleet federates.
    cell_names:
        Explicit cell names; defaults to ``cell-0`` … ``cell-N-1``.
    partitioner:
        How nodes/applications map onto cells when a fleet is built from one
        whole-cluster state — a :class:`~repro.fleet.partition.Partitioner`
        instance or one of ``"hash"`` / ``"rack"``.
    partition_seed:
        Seed for the stable partition hash (byte-identical mapping across
        runs and processes for the same seed).
    spillover:
        Cross-cell capacity policy — a
        :class:`~repro.fleet.spillover.SpilloverPolicy` instance, ``"packed"``
        (stock: fleet-level plan→pack over a cell-as-node state) or
        ``"none"`` (cells are strictly isolated).
    workers:
        Default worker count for :meth:`FleetEngine.reconcile` and
        :class:`~repro.fleet.replay.FleetReplayer`; ``1`` = serial.
        Parallel rounds are byte-identical to serial ones.
    executor:
        How parallel per-cell work runs — ``"process"`` (persistent worker
        shards across an IPC boundary, the default) or ``"thread"``
        (a thread pool over the fleet's own cells: no serialization at all,
        but Python-level planning shares the GIL, so it only wins when the
        per-cell work releases it or the fleet is small enough that process
        overhead dominates).
    codec:
        IPC payload encoding for the process executor — ``"wire"`` (the
        compact :mod:`repro.fleet.wire` codec, default) or ``"pickle"``.
    batch_steps:
        Replay-only: how many trace steps to ship per IPC round trip in
        :class:`~repro.fleet.replay.FleetReplayer`.  ``0`` (default)
        auto-tunes the batch from observed payload sizes; ``1`` disables
        batching; ``N`` caps batches at N.  Metrics are byte-identical for
        every value — a mid-batch spillover round rewinds the overrun.
    cell_overrides:
        Mapping of cell name (or index) to a dict of :class:`EngineConfig`
        field overrides for that cell only.
    """

    cells: int = 1
    cell_names: tuple[str, ...] | None = None
    partitioner: object = "hash"
    partition_seed: int = 0
    spillover: object = "packed"
    workers: int = 1
    executor: str = "process"
    codec: str = "wire"
    batch_steps: int = 0
    cell_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        if self.codec not in ("wire", "pickle"):
            raise ValueError(f"codec must be 'wire' or 'pickle', got {self.codec!r}")
        if self.batch_steps < 0:
            raise ValueError("batch_steps must be >= 0 (0 = auto-tune)")
        if self.cell_names is not None:
            self.cell_names = tuple(self.cell_names)
            if len(self.cell_names) != self.cells:
                raise ValueError(
                    f"cell_names has {len(self.cell_names)} entries for {self.cells} cells"
                )
            if len(set(self.cell_names)) != self.cells:
                raise ValueError("cell_names must be unique")
        # Fail fast on bad specs (instances pass through untouched).
        resolve_partitioner(self.partitioner, seed=self.partition_seed)
        for key, overrides in self.cell_overrides.items():
            unknown = set(overrides) - set(_ENGINE_FIELDS)
            if unknown:
                raise ValueError(
                    f"cell_overrides[{key!r}] names unknown EngineConfig "
                    f"fields: {sorted(unknown)}"
                )

    def resolved_cell_names(self) -> tuple[str, ...]:
        """The cell names this config describes."""
        if self.cell_names is not None:
            return self.cell_names
        return default_cell_names(self.cells)

    def resolved_partitioner(self):
        return resolve_partitioner(self.partitioner, seed=self.partition_seed)

    def engine_config_for(self, cell: str | int) -> EngineConfig:
        """The per-cell :class:`EngineConfig`: fleet defaults + overrides.

        ``cell`` may be a cell name or index; overrides keyed either way
        apply (name wins when both are present).
        """
        base = {name: getattr(self, name) for name in _ENGINE_FIELDS}
        names = self.resolved_cell_names()
        if isinstance(cell, int):
            index, name = cell, names[cell]
        else:
            name = cell
            index = names.index(cell)
        for key in (index, name):
            overrides = self.cell_overrides.get(key)
            if overrides:
                base.update(overrides)
        return EngineConfig(**base)
