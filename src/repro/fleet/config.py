"""Fleet configuration: one declarative description of a federated fleet.

:class:`FleetConfig` extends :class:`~repro.api.config.EngineConfig` — every
engine-level knob (objective, implementation, packing flags, incremental
reconciliation) applies fleet-wide as the per-cell default — and adds the
federation surface: how many cells, how nodes and applications partition
onto them, which spillover policy covers cross-cell residual demand, and
per-cell overrides for heterogeneous fleets (e.g. one cell on the golden
reference stages, another on a fairness objective).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.api.config import EngineConfig
from repro.traces.fleet import default_fleet_cells

from repro.fleet.partition import resolve_partitioner


@dataclass(frozen=True)
class SupervisorConfig:
    """How a :class:`~repro.fleet.pool.ShardPool` supervises its workers.

    Parameters
    ----------
    round_timeout:
        Per-reply deadline in seconds.  A worker that has not produced its
        reply within the deadline is treated as hung: it is killed and the
        shard goes through the restart path.  ``None`` disables the
        deadline (a hung worker then blocks forever, as an unsupervised
        pool would).
    max_restarts:
        Consecutive failures tolerated per shard before its cells are
        redistributed to surviving workers (graceful degradation).  The
        counter resets on every successful reply, so only crash *loops*
        degrade a shard.
    backoff_base / backoff_cap:
        Exponential restart backoff: attempt ``k`` sleeps
        ``min(cap, base * 2**(k-1))`` scaled by seeded jitter in
        ``[0.5, 1.5)``.  ``base=0`` disables sleeping entirely (tests).
    seed:
        Seed for the jitter RNG.  Backoff affects only wall-clock timing,
        never results, so supervised runs stay byte-identical regardless.
    """

    round_timeout: float | None = 300.0
    max_restarts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive (or None)")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be >= 0")


def default_cell_names(cells: int) -> tuple[str, ...]:
    """``cell-0`` … ``cell-N-1`` — the naming the whole fleet layer uses.

    Delegates to :func:`repro.traces.fleet.default_fleet_cells`, so fleets
    and the scenarios generated for them can never disagree on the default
    cell naming.
    """
    return tuple(default_fleet_cells(cells))


#: EngineConfig field names a per-cell override may set.
_ENGINE_FIELDS = tuple(f.name for f in fields(EngineConfig))


@dataclass
class FleetConfig(EngineConfig):
    """Declarative description of a :class:`~repro.fleet.engine.FleetEngine`.

    Parameters (on top of every :class:`EngineConfig` field)
    ----------
    cells:
        Number of failure domains the fleet federates.
    cell_names:
        Explicit cell names; defaults to ``cell-0`` … ``cell-N-1``.
    partitioner:
        How nodes/applications map onto cells when a fleet is built from one
        whole-cluster state — a :class:`~repro.fleet.partition.Partitioner`
        instance or one of ``"hash"`` / ``"rack"``.
    partition_seed:
        Seed for the stable partition hash (byte-identical mapping across
        runs and processes for the same seed).
    spillover:
        Cross-cell capacity policy — a
        :class:`~repro.fleet.spillover.SpilloverPolicy` instance, ``"packed"``
        (stock: fleet-level plan→pack over a cell-as-node state) or
        ``"none"`` (cells are strictly isolated).
    workers:
        Default worker count for :meth:`FleetEngine.reconcile` and
        :class:`~repro.fleet.replay.FleetReplayer`; ``1`` = serial.
        Parallel rounds are byte-identical to serial ones.
    executor:
        How parallel per-cell work runs — ``"process"`` (persistent worker
        shards across an IPC boundary, the default) or ``"thread"``
        (a thread pool over the fleet's own cells: no serialization at all,
        but Python-level planning shares the GIL, so it only wins when the
        per-cell work releases it or the fleet is small enough that process
        overhead dominates).
    codec:
        IPC payload encoding for the process executor — ``"wire"`` (the
        compact :mod:`repro.fleet.wire` codec, default) or ``"pickle"``.
    batch_steps:
        Replay-only: how many trace steps to ship per IPC round trip in
        :class:`~repro.fleet.replay.FleetReplayer`.  ``0`` (default)
        auto-tunes the batch from observed payload sizes; ``1`` disables
        batching; ``N`` caps batches at N.  Metrics are byte-identical for
        every value — a mid-batch spillover round rewinds the overrun.
    cell_overrides:
        Mapping of cell name (or index) to a dict of :class:`EngineConfig`
        field overrides for that cell only.
    supervise:
        Whether process-executor shard workers run under the
        self-healing supervisor (dead/hung/corrupt workers restart with
        backoff, crash loops degrade to surviving workers).  ``False``
        restores fail-fast semantics: any worker fault raises
        :class:`~repro.fleet.pool.ShardFailure` with state untouched.
    shard_timeout:
        Supervisor per-reply deadline in seconds (see
        :class:`SupervisorConfig.round_timeout`).
    max_shard_restarts:
        Consecutive restarts per shard before degradation (see
        :class:`SupervisorConfig.max_restarts`).
    shard_backoff:
        Base of the exponential restart backoff, seconds; ``0`` disables
        sleeping between restarts.
    """

    cells: int = 1
    cell_names: tuple[str, ...] | None = None
    partitioner: object = "hash"
    partition_seed: int = 0
    spillover: object = "packed"
    workers: int = 1
    executor: str = "process"
    codec: str = "wire"
    batch_steps: int = 0
    cell_overrides: dict = field(default_factory=dict)
    supervise: bool = True
    shard_timeout: float = 300.0
    max_shard_restarts: int = 3
    shard_backoff: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        if self.codec not in ("wire", "pickle"):
            raise ValueError(f"codec must be 'wire' or 'pickle', got {self.codec!r}")
        if self.batch_steps < 0:
            raise ValueError("batch_steps must be >= 0 (0 = auto-tune)")
        if self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        if self.max_shard_restarts < 0:
            raise ValueError("max_shard_restarts must be >= 0")
        if self.shard_backoff < 0:
            raise ValueError("shard_backoff must be >= 0")
        if self.cell_names is not None:
            self.cell_names = tuple(self.cell_names)
            if len(self.cell_names) != self.cells:
                raise ValueError(
                    f"cell_names has {len(self.cell_names)} entries for {self.cells} cells"
                )
            if len(set(self.cell_names)) != self.cells:
                raise ValueError("cell_names must be unique")
        # Fail fast on bad specs (instances pass through untouched).
        resolve_partitioner(self.partitioner, seed=self.partition_seed)
        for key, overrides in self.cell_overrides.items():
            unknown = set(overrides) - set(_ENGINE_FIELDS)
            if unknown:
                raise ValueError(
                    f"cell_overrides[{key!r}] names unknown EngineConfig "
                    f"fields: {sorted(unknown)}"
                )

    def supervisor_config(self) -> SupervisorConfig | None:
        """The shard-supervision policy this config describes (None = off)."""
        if not self.supervise:
            return None
        return SupervisorConfig(
            round_timeout=self.shard_timeout,
            max_restarts=self.max_shard_restarts,
            backoff_base=self.shard_backoff,
            seed=self.partition_seed,
        )

    def resolved_cell_names(self) -> tuple[str, ...]:
        """The cell names this config describes."""
        if self.cell_names is not None:
            return self.cell_names
        return default_cell_names(self.cells)

    def resolved_partitioner(self):
        return resolve_partitioner(self.partitioner, seed=self.partition_seed)

    def engine_config_for(self, cell: str | int) -> EngineConfig:
        """The per-cell :class:`EngineConfig`: fleet defaults + overrides.

        ``cell`` may be a cell name or index; overrides keyed either way
        apply (name wins when both are present).
        """
        base = {name: getattr(self, name) for name in _ENGINE_FIELDS}
        names = self.resolved_cell_names()
        if isinstance(cell, int):
            index, name = cell, names[cell]
        else:
            name = cell
            index = names.index(cell)
        for key in (index, name):
            overrides = self.cell_overrides.get(key)
            if overrides:
                base.update(overrides)
        return EngineConfig(**base)
